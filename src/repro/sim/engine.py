"""The simulation event loop and clock."""

from __future__ import annotations

import heapq
import time
from typing import Generator, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import Event, Timeout
from repro.sim.process import Process
from repro.telemetry.registry import get_registry

#: Priority for events scheduled by ordinary user actions.
NORMAL_PRIORITY = 1
#: Priority for kernel-internal events that must run before user events
#: scheduled at the same instant (e.g. resource bookkeeping).
URGENT_PRIORITY = 0

#: Telemetry publication period, in processed events.  Power of two so
#: the hot loop's check is a single mask; the amortized cost per event
#: is a couple of integer operations.
_PUBLISH_MASK = 4096 - 1

_HeapItem = Tuple[float, int, int, Event]


class Environment:
    """A discrete-event simulation environment.

    The environment owns the simulated clock (:attr:`now`) and the event
    heap.  Events scheduled for the same instant are processed in
    (priority, insertion order), which makes runs fully deterministic.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List[_HeapItem] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Lifetime count of events processed by :meth:`step`.
        self.events_dispatched = 0
        #: Largest heap depth seen (telemetry: scheduling pressure).
        self.queue_depth_peak = 0
        self._events_published = 0

    def __repr__(self) -> str:
        return "<Environment t={:.6f} pending={}>".format(self._now, len(self._heap))

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event creation helpers ----------------------------------------

    def event(self) -> Event:
        """Create an untriggered :class:`Event` bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create a :class:`Timeout` that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new simulated :class:`Process` from a generator."""
        return Process(self, generator)

    def call_later(self, delay: float, fn, *args: object) -> Event:
        """Invoke ``fn(*args)`` after ``delay`` seconds of simulated time.

        Lighter than spawning a process; used for fire-and-forget actions
        such as delivering a frame after propagation delay.
        """
        event = Event(self)
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _evt: fn(*args))
        self.schedule(event, delay=delay)
        return event

    # -- scheduling -----------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL_PRIORITY
    ) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay={})".format(delay))
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event from the heap."""
        if not self._heap:
            raise SimulationError("no events scheduled")
        depth = len(self._heap)
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth
        self.events_dispatched += 1
        if not (self.events_dispatched & _PUBLISH_MASK):
            self._publish_telemetry()
        when, _priority, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError("event processed twice: {!r}".format(event))
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False):
            # An unhandled failure with nobody waiting is a programming
            # error; surface it instead of silently dropping it.
            raise event._value  # type: ignore[misc]

    def run(self, until: object = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the heap drains; a number — run until that
            simulated time; an :class:`Event` — run until it is processed
            and return its value.
        """
        stop_at: Optional[float] = None
        wait_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            wait_event = until
            if wait_event.processed:
                return wait_event.value
            wait_event.callbacks.append(self._stop_on_event)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    "until={} is in the past (now={})".format(stop_at, self._now)
                )
        sim_start = self._now
        wall_start = time.perf_counter()
        try:
            try:
                while self._heap:
                    if stop_at is not None and self.peek() > stop_at:
                        self._now = stop_at
                        return None
                    self.step()
            except StopSimulation as stop:
                return stop.value
            if wait_event is not None and not wait_event.processed:
                raise SimulationError(
                    "run(until=event) finished before the event triggered"
                )
            if stop_at is not None:
                self._now = stop_at
            return None
        finally:
            self._note_run_speed(sim_start, wall_start)

    def _note_run_speed(self, sim_start: float, wall_start: float) -> None:
        """Publish the virtual-vs-wall time ratio of the finished run."""
        wall_elapsed = time.perf_counter() - wall_start
        sim_elapsed = self._now - sim_start
        if wall_elapsed <= 0 or sim_elapsed <= 0:
            return
        get_registry().gauge("repro.sim.virtual_wall_ratio").set(
            sim_elapsed / wall_elapsed
        )
        self._publish_telemetry()

    def _publish_telemetry(self) -> None:
        """Sync the cheap in-object counters into the metric registry.

        Runs every ``_PUBLISH_MASK + 1`` processed events (and at the end
        of each :meth:`run`), so the per-event hot path stays at plain
        integer arithmetic while snapshots remain fresh.
        """
        registry = get_registry()
        delta = self.events_dispatched - self._events_published
        if delta:
            registry.counter("repro.sim.events_dispatched").inc(delta)
            self._events_published = self.events_dispatched
        registry.gauge("repro.sim.queue_depth").set(len(self._heap))
        peak = registry.gauge("repro.sim.queue_depth_peak")
        if self.queue_depth_peak > peak.value:
            peak.set(self.queue_depth_peak)
        registry.tick()

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        if not event._ok:
            setattr(event, "_defused", True)
            raise event._value  # type: ignore[misc]
        raise StopSimulation(event._value)
