"""The simulation event loop and clock."""

from __future__ import annotations

import heapq
from typing import Generator, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import Event, Timeout
from repro.sim.process import Process

#: Priority for events scheduled by ordinary user actions.
NORMAL_PRIORITY = 1
#: Priority for kernel-internal events that must run before user events
#: scheduled at the same instant (e.g. resource bookkeeping).
URGENT_PRIORITY = 0

_HeapItem = Tuple[float, int, int, Event]


class Environment:
    """A discrete-event simulation environment.

    The environment owns the simulated clock (:attr:`now`) and the event
    heap.  Events scheduled for the same instant are processed in
    (priority, insertion order), which makes runs fully deterministic.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List[_HeapItem] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    def __repr__(self) -> str:
        return "<Environment t={:.6f} pending={}>".format(self._now, len(self._heap))

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event creation helpers ----------------------------------------

    def event(self) -> Event:
        """Create an untriggered :class:`Event` bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create a :class:`Timeout` that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new simulated :class:`Process` from a generator."""
        return Process(self, generator)

    def call_later(self, delay: float, fn, *args: object) -> Event:
        """Invoke ``fn(*args)`` after ``delay`` seconds of simulated time.

        Lighter than spawning a process; used for fire-and-forget actions
        such as delivering a frame after propagation delay.
        """
        event = Event(self)
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _evt: fn(*args))
        self.schedule(event, delay=delay)
        return event

    # -- scheduling -----------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL_PRIORITY
    ) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay={})".format(delay))
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event from the heap."""
        if not self._heap:
            raise SimulationError("no events scheduled")
        when, _priority, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError("event processed twice: {!r}".format(event))
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False):
            # An unhandled failure with nobody waiting is a programming
            # error; surface it instead of silently dropping it.
            raise event._value  # type: ignore[misc]

    def run(self, until: object = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the heap drains; a number — run until that
            simulated time; an :class:`Event` — run until it is processed
            and return its value.
        """
        stop_at: Optional[float] = None
        wait_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            wait_event = until
            if wait_event.processed:
                return wait_event.value
            wait_event.callbacks.append(self._stop_on_event)
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    "until={} is in the past (now={})".format(stop_at, self._now)
                )
        try:
            while self._heap:
                if stop_at is not None and self.peek() > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            return stop.value
        if wait_event is not None and not wait_event.processed:
            raise SimulationError(
                "run(until=event) finished before the event triggered"
            )
        if stop_at is not None:
            self._now = stop_at
        return None

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        if not event._ok:
            setattr(event, "_defused", True)
            raise event._value  # type: ignore[misc]
        raise StopSimulation(event._value)
