"""The simulation event loop and clock."""

from __future__ import annotations

import heapq
import time
from typing import Callable, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import NORMAL_PRIORITY, URGENT_PRIORITY, Event, Timeout
from repro.sim.process import Process, ProcessGenerator
from repro.telemetry.registry import get_registry

__all__ = [
    "Environment",
    "NORMAL_PRIORITY",
    "URGENT_PRIORITY",
]

#: Telemetry publication period, in processed events.  Power of two so
#: the hot loop's check is a single mask; the amortized cost per event
#: is a couple of integer operations.
_PUBLISH_MASK = 4096 - 1


class _ScheduledCallback:
    """A heap item that invokes ``fn(*args)`` when popped.

    :meth:`Environment.call_later` used to allocate an :class:`Event`, a
    callbacks list, and a closure per call; this two-slot record replaces
    all three.  It cannot fail, cannot be waited on, and carries no value
    — the engine just calls it and moves on.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., object], args: Tuple[object, ...]) -> None:
        self.fn = fn
        self.args = args

    def __repr__(self) -> str:
        return "<_ScheduledCallback {}>".format(
            getattr(self.fn, "__qualname__", self.fn)
        )


_HeapItem = Tuple[float, int, int, object]


class Environment:
    """A discrete-event simulation environment.

    The environment owns the simulated clock (:attr:`now`) and the event
    heap.  Events scheduled for the same instant are processed in
    (priority, insertion order), which makes runs fully deterministic.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "_active_process",
        "events_dispatched",
        "queue_depth_peak",
        "_events_published",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: List[_HeapItem] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Lifetime count of events processed by :meth:`step` / :meth:`run`.
        self.events_dispatched = 0
        #: Largest heap depth seen (telemetry: scheduling pressure).
        self.queue_depth_peak = 0
        self._events_published = 0

    def __repr__(self) -> str:
        return "<Environment t={:.6f} pending={}>".format(self._now, len(self._heap))

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event creation helpers ----------------------------------------

    def event(self) -> Event:
        """Create an untriggered :class:`Event` bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create a :class:`Timeout` that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new simulated :class:`Process` from a generator."""
        return Process(self, generator)

    def call_later(self, delay: float, fn: Callable[..., object], *args: object) -> None:
        """Invoke ``fn(*args)`` after ``delay`` seconds of simulated time.

        Lighter than spawning a process; used for fire-and-forget actions
        such as delivering a frame after propagation delay.  The scheduled
        call is anonymous — it cannot be waited on or cancelled.
        """
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay={})".format(delay))
        self._seq += 1
        heapq.heappush(
            self._heap,
            (self._now + delay, NORMAL_PRIORITY, self._seq, _ScheduledCallback(fn, args)),
        )

    def call_at(self, when: float, fn: Callable[..., object], *args: object) -> None:
        """Invoke ``fn(*args)`` at absolute simulated time ``when``.

        Unlike :meth:`call_later`, the fire time is taken verbatim — no
        ``now + delay`` float round-trip — which lets callers that
        precomputed an exact event time (e.g. a resource rescheduling a
        slice boundary) hit it bit-for-bit.
        """
        if when < self._now:
            raise SimulationError(
                "cannot schedule into the past (when={}, now={})".format(when, self._now)
            )
        self._seq += 1
        heapq.heappush(
            self._heap, (when, NORMAL_PRIORITY, self._seq, _ScheduledCallback(fn, args))
        )

    # -- scheduling -----------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL_PRIORITY
    ) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay={})".format(delay))
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event from the heap."""
        if not self._heap:
            raise SimulationError("no events scheduled")
        depth = len(self._heap)
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth
        self.events_dispatched += 1
        if not (self.events_dispatched & _PUBLISH_MASK):
            self._publish_telemetry()
        item = heapq.heappop(self._heap)
        self._now = item[0]
        popped = item[3]
        if type(popped) is _ScheduledCallback:
            popped.fn(*popped.args)
            return
        # Heap items are only ever Events or _ScheduledCallbacks; the
        # annotation re-narrows what the heterogeneous heap tuple erased.
        event: Event = popped  # type: ignore[assignment]
        callbacks = event.callbacks
        if callbacks is None:
            raise SimulationError("event processed twice: {!r}".format(event))
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure with nobody waiting is a programming
            # error; surface it instead of silently dropping it.
            raise event._value  # type: ignore[misc]

    def run(self, until: object = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` — run until the heap drains; a number — run until that
            simulated time; an :class:`Event` — run until it is processed
            and return its value.
        """
        stop_at: Optional[float] = None
        wait_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            wait_event = until
            wait_callbacks = wait_event.callbacks
            if wait_callbacks is None:  # already processed
                return wait_event.value
            wait_callbacks.append(self._stop_on_event)
        else:
            stop_at = float(until)  # type: ignore[arg-type]
            if stop_at < self._now:
                raise SimulationError(
                    "until={} is in the past (now={})".format(stop_at, self._now)
                )
        sim_start = self._now
        wall_start = time.perf_counter()
        # The dispatch loop below is `step()` unrolled with everything
        # bound to locals: one heap pop, one type check, and the callback
        # call(s) per event.  Counters sync back on exit and at every
        # telemetry publication point.
        heap = self._heap
        pop = heapq.heappop
        dispatched = self.events_dispatched
        peak = self.queue_depth_peak
        try:
            try:
                while heap:
                    if stop_at is not None and heap[0][0] > stop_at:
                        self._now = stop_at
                        return None
                    depth = len(heap)
                    if depth > peak:
                        peak = depth
                    dispatched += 1
                    item = pop(heap)
                    self._now = item[0]
                    if not (dispatched & _PUBLISH_MASK):
                        self.events_dispatched = dispatched
                        self.queue_depth_peak = peak
                        self._publish_telemetry()
                    popped = item[3]
                    if type(popped) is _ScheduledCallback:
                        # Fast path: call_later timers are the single most
                        # common heap item in cluster runs.
                        popped.fn(*popped.args)
                        continue
                    event: Event = popped  # type: ignore[assignment]
                    callbacks = event.callbacks
                    if callbacks is None:
                        raise SimulationError(
                            "event processed twice: {!r}".format(event)
                        )
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value  # type: ignore[misc]
            except StopSimulation as stop:
                return stop.value
            if wait_event is not None and not wait_event.processed:
                raise SimulationError(
                    "run(until=event) finished before the event triggered"
                )
            if stop_at is not None:
                self._now = stop_at
            return None
        finally:
            self.events_dispatched = dispatched
            self.queue_depth_peak = peak
            self._note_run_speed(sim_start, wall_start)

    def _note_run_speed(self, sim_start: float, wall_start: float) -> None:
        """Publish the virtual-vs-wall time ratio of the finished run."""
        wall_elapsed = time.perf_counter() - wall_start
        sim_elapsed = self._now - sim_start
        if wall_elapsed <= 0 or sim_elapsed <= 0:
            return
        get_registry().gauge("repro.sim.virtual_wall_ratio").set(
            sim_elapsed / wall_elapsed
        )
        self._publish_telemetry()

    def _publish_telemetry(self) -> None:
        """Sync the cheap in-object counters into the metric registry.

        Runs every ``_PUBLISH_MASK + 1`` processed events (and at the end
        of each :meth:`run`), so the per-event hot path stays at plain
        integer arithmetic while snapshots remain fresh.
        """
        registry = get_registry()
        delta = self.events_dispatched - self._events_published
        if delta:
            registry.counter("repro.sim.events_dispatched").inc(delta)
            self._events_published = self.events_dispatched
        registry.gauge("repro.sim.queue_depth").set(len(self._heap))
        peak = registry.gauge("repro.sim.queue_depth_peak")
        if self.queue_depth_peak > peak.value:
            peak.set(self.queue_depth_peak)
        registry.tick()

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        if not event._ok:
            event._defused = True
            raise event._value  # type: ignore[misc]
        raise StopSimulation(event._value)
