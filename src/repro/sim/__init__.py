"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine simulation engine in the style
of SimPy, purpose-built for the Gage reproduction.  The engine provides:

- :class:`~repro.sim.engine.Environment` — the event loop and simulated clock.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AnyOf`, :class:`~repro.sim.events.AllOf` —
  the primitive occurrences processes wait on.
- :class:`~repro.sim.process.Process` — generator-based simulated processes
  with interrupt support.
- :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.PriorityResource`,
  :class:`~repro.sim.resources.Container`,
  :class:`~repro.sim.resources.Store` — contention primitives.
- :class:`~repro.sim.rng.RandomStreams` — named, independently seeded
  random streams for reproducible experiments.

Determinism: events scheduled for the same simulated time are processed in
(priority, insertion-order) order, so two runs with the same seeds produce
identical traces.
"""

from repro.sim.engine import Environment, NORMAL_PRIORITY, URGENT_PRIORITY
from repro.sim.errors import Interrupt, SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "NORMAL_PRIORITY",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "URGENT_PRIORITY",
]
