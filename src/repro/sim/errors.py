"""Exception types raised by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early.

    User code may raise it from inside a process to stop the whole
    simulation; the value carried becomes the return value of ``run``.
    """

    def __init__(self, value: object = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies ``cause``, an arbitrary object that the
    interrupted process can inspect to decide how to react.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]
