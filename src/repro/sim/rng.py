"""Named, independently seeded random streams.

Experiments need reproducibility *and* independence: changing how many
random numbers one component draws must not perturb another component's
stream.  :class:`RandomStreams` hands each named consumer its own
:class:`random.Random` seeded deterministically from (master seed, name).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of deterministic, mutually independent random streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (master seed, name) pair always yields a generator that
        produces the same sequence.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                "{}:{}".format(self._seed, name).encode()
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(
            "fork:{}:{}".format(self._seed, name).encode()
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
