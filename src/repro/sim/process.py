"""Generator-coroutine simulated processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Union, cast

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

#: The generator protocol processes implement.  The yield type is
#: deliberately ``object`` rather than ``Event``: yielding a non-event is
#: a guarded *runtime* error path (``_resume`` throws ``SimulationError``
#: into the offender), and declaring ``Event`` here would let the compiled
#: build short-circuit that path with a checked-cast ``TypeError`` instead.
ProcessGenerator = Generator[object, object, object]


class _Trigger:
    """A minimal resume token quacking like a processed :class:`Event`.

    :meth:`Process._resume` only reads ``_ok`` / ``_value`` (and marks
    ``_defused`` on failures), so bootstrap and same-instant resumptions
    don't need a real heap-scheduled Event — a three-slot record delivered
    via ``call_later`` carries the same information at a fraction of the
    allocation cost.
    """

    __slots__ = ("_ok", "_value", "_defused")

    def __init__(self, ok: bool, value: object) -> None:
        self._ok = ok
        self._value = value
        self._defused = False


#: Shared bootstrap token: every process starts by being sent ``None``,
#: and the success path never mutates the trigger, so one instance serves
#: all processes.
_BOOTSTRAP = _Trigger(True, None)


class Process(Event):
    """A simulated process driven by a Python generator.

    The generator yields :class:`Event` instances; the process sleeps until
    each yielded event is processed and is resumed with the event's value
    (or has the event's exception thrown into it on failure).  The process
    is itself an event that succeeds with the generator's return value,
    so processes can wait on one another.

    Use :meth:`interrupt` to throw an :class:`Interrupt` into a process
    that is waiting on an event.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                "Process requires a generator, got {!r}".format(type(generator))
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off execution at the current instant.
        env.call_later(0.0, self._resume, _BOOTSTRAP)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", "process")
        return "<Process {} {}>".format(
            name, "alive" if self.is_alive else "finished"
        )

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event this process is currently suspended on, if any."""
        return self._waiting_on

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The process must be alive.  If the process is waiting on an event,
        it is detached from it first; the event itself is not cancelled and
        may still occur (its value is simply discarded by this process).
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self.env.call_later(0.0, self._resume, _Trigger(False, Interrupt(cause)))

    # -- internal -------------------------------------------------------

    def _resume(self, trigger: Union[Event, _Trigger]) -> None:
        self._waiting_on = None
        env = self.env
        previous = env._active_process
        env._active_process = self
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                trigger._defused = True
                target = self._generator.throw(cast(BaseException, trigger._value))
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            env._active_process = previous
        if not isinstance(target, Event):
            message = "process yielded a non-event: {!r}".format(target)
            try:
                self._generator.throw(SimulationError(message))
            except StopIteration as stop:
                self.succeed(getattr(stop, "value", None))
            except BaseException as exc:
                self.fail(exc)
            return
        if target.callbacks is None:
            # The event already happened; resume immediately (this keeps
            # `yield already_done_event` legal, matching SimPy semantics).
            if not target._ok:
                target._defused = True
            env.call_later(0.0, self._resume, _Trigger(bool(target._ok), target._value))
        else:
            self._waiting_on = target
            # A waiter exists, so a failure of `target` is handled by being
            # thrown into this process rather than crashing the event loop.
            target._defused = True
            target.callbacks.append(self._resume)
