"""Generator-coroutine simulated processes."""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Process(Event):
    """A simulated process driven by a Python generator.

    The generator yields :class:`Event` instances; the process sleeps until
    each yielded event is processed and is resumed with the event's value
    (or has the event's exception thrown into it on failure).  The process
    is itself an event that succeeds with the generator's return value,
    so processes can wait on one another.

    Use :meth:`interrupt` to throw an :class:`Interrupt` into a process
    that is waiting on an event.
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                "Process requires a generator, got {!r}".format(type(generator))
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off execution at the current instant.
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        env.schedule(bootstrap, delay=0.0)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", "process")
        return "<Process {} {}>".format(
            name, "alive" if self.is_alive else "finished"
        )

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event this process is currently suspended on, if any."""
        return self._waiting_on

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The process must be alive.  If the process is waiting on an event,
        it is detached from it first; the event itself is not cancelled and
        may still occur (its value is simply discarded by this process).
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        waited = self._waiting_on
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        carrier = Event(self.env)
        carrier._ok = False
        carrier._value = Interrupt(cause)
        setattr(carrier, "_defused", True)
        carrier.callbacks.append(self._resume)
        self.env.schedule(carrier, delay=0.0)

    # -- internal -------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        previous = self.env._active_process
        self.env._active_process = self
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                setattr(trigger, "_defused", True)
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.env._active_process = previous
        if not isinstance(target, Event):
            message = "process yielded a non-event: {!r}".format(target)
            try:
                self._generator.throw(SimulationError(message))
            except StopIteration as stop:
                self.succeed(getattr(stop, "value", None))
            except BaseException as exc:
                self.fail(exc)
            return
        if target.processed:
            # The event already happened; resume immediately (this keeps
            # `yield already_done_event` legal, matching SimPy semantics).
            carrier = Event(self.env)
            carrier._ok = target._ok
            carrier._value = target._value
            if not target._ok:
                setattr(carrier, "_defused", True)
                setattr(target, "_defused", True)
            carrier.callbacks.append(self._resume)
            self.env.schedule(carrier, delay=0.0)
        else:
            self._waiting_on = target
            # A waiter exists, so a failure of `target` is handled by being
            # thrown into this process rather than crashing the event loop.
            setattr(target, "_defused", True)
            target.callbacks.append(self._resume)
