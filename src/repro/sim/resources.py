"""Contention primitives: resources, containers, and stores.

These model the three kinds of sharing the cluster simulation needs:

- :class:`Resource` — a server with integer capacity (e.g. a disk channel,
  a worker-process slot); requests queue FIFO.
- :class:`PriorityResource` — like :class:`Resource` but the queue orders
  by (priority, arrival); used where QoS classes contend directly.
- :class:`Container` — a homogeneous quantity (e.g. bytes of buffer-cache
  budget) with put/get of amounts.
- :class:`Store` — a queue of distinct Python objects (e.g. packets in a
  NIC transmit queue); supports bounded capacity.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, List

from repro.sim.events import URGENT_PRIORITY, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... hold the resource ...
        # released on exit
    """

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._order = resource._next_order()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """A server with fixed integer capacity and a FIFO wait queue."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got {}".format(capacity))
        self.env = env
        self._capacity = int(capacity)
        self._users: List[Request] = []
        self._queue: List[Request] = []
        self._order = 0

    def __repr__(self) -> str:
        return "<{} users={}/{} queued={}>".format(
            type(self).__name__, len(self._users), self._capacity, len(self._queue)
        )

    def _next_order(self) -> int:
        self._order += 1
        return self._order

    @property
    def capacity(self) -> int:
        """Maximum number of simultaneous holders."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim one unit of capacity; the returned event fires when granted."""
        req = Request(self, priority)
        self._queue.append(req)
        self._dispatch()
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit of capacity."""
        if request in self._users:
            self._users.remove(request)
            self._dispatch()
        else:
            self._cancel(request)

    def _cancel(self, request: Request) -> None:
        if request in self._queue:
            self._queue.remove(request)

    def _select(self) -> Request:
        return self._queue[0]

    def _dispatch(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            req = self._select()
            self._queue.remove(req)
            self._users.append(req)
            req._ok = True
            req._value = req
            self.env.schedule(req, delay=0.0, priority=URGENT_PRIORITY)


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue orders by (priority, arrival).

    Lower ``priority`` values are served first.
    """

    def _select(self) -> Request:
        return min(self._queue, key=lambda r: (r.priority, r._order))


class Container:
    """A homogeneous divisible quantity with blocking put/get."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = math.inf,
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self._capacity = float(capacity)
        self._level = float(init)
        self._getters: List[tuple] = []
        self._putters: List[tuple] = []
        self._order = 0

    @property
    def level(self) -> float:
        """Amount currently stored."""
        return self._level

    @property
    def capacity(self) -> float:
        """Maximum amount storable."""
        return self._capacity

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks (event pends) while it would overflow."""
        if amount <= 0:
            raise ValueError("put amount must be positive")
        event = Event(self.env)
        self._order += 1
        self._putters.append((self._order, amount, event))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while insufficient quantity stored."""
        if amount <= 0:
            raise ValueError("get amount must be positive")
        event = Event(self.env)
        self._order += 1
        self._getters.append((self._order, amount, event))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                order, amount, event = self._putters[0]
                if self._level + amount <= self._capacity:
                    self._putters.pop(0)
                    self._level += amount
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                order, amount, event = self._getters[0]
                if amount <= self._level:
                    self._getters.pop(0)
                    self._level -= amount
                    event.succeed(amount)
                    progressed = True


class Store:
    """A FIFO queue of distinct objects with optional bounded capacity."""

    def __init__(self, env: "Environment", capacity: float = math.inf) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self._items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List[tuple] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> float:
        """Maximum number of stored items."""
        return self._capacity

    @property
    def items(self) -> List[Any]:
        """The stored items, oldest first (read-only view by convention)."""
        return self._items

    def put(self, item: Any) -> Event:
        """Append ``item``; pends while the store is full."""
        event = Event(self.env)
        self._putters.append((item, event))
        self._dispatch()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if len(self._items) + len(self._putters) >= self._capacity:
            return False
        self.put(item)
        return True

    def get(self) -> Event:
        """Remove and return the oldest item; pends while empty."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        while self._putters and len(self._items) < self._capacity:
            item, event = self._putters.pop(0)
            self._items.append(item)
            event.succeed(item)
        while self._getters and self._items:
            event = self._getters.pop(0)
            event.succeed(self._items.pop(0))
        # Draining items may have freed space for more putters.
        while self._putters and len(self._items) < self._capacity:
            item, event = self._putters.pop(0)
            self._items.append(item)
            event.succeed(item)
            while self._getters and self._items:
                getter = self._getters.pop(0)
                getter.succeed(self._items.pop(0))
