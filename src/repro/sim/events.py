"""Primitive simulation events.

An :class:`Event` is a one-shot occurrence on the simulated timeline.
Processes wait on events by yielding them; arbitrary callbacks may also be
attached.  Events move through three states:

1. *untriggered* — created but not yet scheduled;
2. *triggered* — scheduled on the environment's event heap with a value
   (success) or an exception (failure);
3. *processed* — the environment popped it from the heap and invoked every
   callback.

Events are ``__slots__`` classes and the triggering paths push onto the
environment's heap directly: millions of them are created per simulated
run, so per-instance dict allocation and an extra scheduling call both
show up in end-to-end wall clock.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker for typing only
    from mypy_extensions import mypyc_attr

    from repro.sim.engine import Environment
else:
    # mypyc consumes the decorator at compile time; the pure-Python build
    # only needs *a* callable of the same shape, so installs without
    # mypy_extensions (it is not a runtime dependency) keep working.
    try:
        from mypy_extensions import mypyc_attr
    except ImportError:

        def mypyc_attr(*attrs, **kwattrs):
            return lambda cls: cls


Callback = Callable[["Event"], None]

#: Priority for events scheduled by ordinary user actions.
NORMAL_PRIORITY = 1
#: Priority for kernel-internal events that must run before user events
#: scheduled at the same instant (e.g. resource bookkeeping).
URGENT_PRIORITY = 0

_PENDING = object()


@mypyc_attr(allow_interpreted_subclasses=True)
class Event:
    """A one-shot occurrence that processes can wait for.

    Interpreted code subclasses this (e.g. ``repro.sim.resources.Request``),
    so the compiled build must keep the class open to non-native subclasses.

    Parameters
    ----------
    env:
        The environment this event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callback]] = []
        self._value: object = _PENDING
        self._ok: Optional[bool] = None
        #: True once some waiter takes responsibility for a failure, so
        #: the engine must not raise it as unhandled.
        self._defused = False

    def __repr__(self) -> str:
        state = (
            "untriggered"
            if not self.triggered
            else ("processed" if self.processed else "triggered")
        )
        return "<{} {} at t={:.6f}>".format(
            type(self).__name__, state, self.env.now
        )

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (``callbacks`` is discarded)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded; raises if untriggered."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> object:
        """The success value or failure exception carried by the event."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ---------------------------------------------------

    def succeed(self, value: object = None, delay: float = 0.0) -> "Event":
        """Schedule the event to occur successfully after ``delay``."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered: {!r}".format(self))
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay={})".format(delay))
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        heappush(env._heap, (env._now + delay, NORMAL_PRIORITY, env._seq, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule the event to occur as a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError("event already triggered: {!r}".format(self))
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay={})".format(delay))
        self._ok = False
        self._value = exception
        env = self.env
        env._seq += 1
        heappush(env._heap, (env._now + delay, NORMAL_PRIORITY, env._seq, self))
        return self

    # -- composition --------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])


class Timeout(Event):
    """An event that occurs a fixed delay after its creation.

    Created via :meth:`Environment.timeout`; triggers immediately on
    construction, so it cannot be failed or re-triggered.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError("negative timeout delay: {}".format(delay))
        # Inlined Event.__init__ plus scheduling: a Timeout is born
        # triggered, and this constructor dominates the engine's
        # allocation profile.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._delay = delay
        env._seq += 1
        heappush(env._heap, (env._now + delay, NORMAL_PRIORITY, env._seq, self))

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
            if event.callbacks is None:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        if self.triggered:
            # The condition already fired, but it still "owns" this
            # constituent: a late failure (e.g. an aborted connection
            # after an AnyOf timeout won) must not crash the event loop.
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            # The condition consumes the failure; stop the engine from
            # treating the source event as an unhandled error.
            event._defused = True
            self.fail(event._value)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        self._check(event)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> Dict[Event, object]:
        """Map of already-occurred constituent events to their values.

        Only *processed* events count: a :class:`Timeout` is triggered from
        birth, but it has not yet happened until the engine processes it.
        """
        return {
            event: event._value for event in self._events if event.processed
        }


class AnyOf(_Condition):
    """Triggers as soon as any constituent event succeeds."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once every constituent event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env, events)
        if not self.triggered and self._remaining == 0:
            self.succeed({})

    def _check(self, event: Event) -> None:
        if self._remaining == 0:
            self.succeed(self._collect())
