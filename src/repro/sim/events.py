"""Primitive simulation events.

An :class:`Event` is a one-shot occurrence on the simulated timeline.
Processes wait on events by yielding them; arbitrary callbacks may also be
attached.  Events move through three states:

1. *untriggered* — created but not yet scheduled;
2. *triggered* — scheduled on the environment's event heap with a value
   (success) or an exception (failure);
3. *processed* — the environment popped it from the heap and invoked every
   callback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker for typing only
    from repro.sim.engine import Environment

Callback = Callable[["Event"], None]

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    Parameters
    ----------
    env:
        The environment this event belongs to.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callback]] = []
        self._value: object = _PENDING
        self._ok: Optional[bool] = None

    def __repr__(self) -> str:
        state = (
            "untriggered"
            if not self.triggered
            else ("processed" if self.processed else "triggered")
        )
        return "<{} {} at t={:.6f}>".format(
            type(self).__name__, state, self.env.now
        )

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (``callbacks`` is discarded)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded; raises if untriggered."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> object:
        """The success value or failure exception carried by the event."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ---------------------------------------------------

    def succeed(self, value: object = None, delay: float = 0.0) -> "Event":
        """Schedule the event to occur successfully after ``delay``."""
        if self.triggered:
            raise SimulationError("event already triggered: {!r}".format(self))
        self._ok = True
        self._value = value
        self.env.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule the event to occur as a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError("event already triggered: {!r}".format(self))
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay=delay)
        return self

    # -- composition --------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])


class Timeout(Event):
    """An event that occurs a fixed delay after its creation.

    Created via :meth:`Environment.timeout`; triggers immediately on
    construction, so it cannot be failed or re-triggered.
    """

    def __init__(self, env: "Environment", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError("negative timeout delay: {}".format(delay))
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
            if event.processed:
                self._observe(event)
            else:
                event.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        if self.triggered:
            # The condition already fired, but it still "owns" this
            # constituent: a late failure (e.g. an aborted connection
            # after an AnyOf timeout won) must not crash the event loop.
            if not event._ok:
                setattr(event, "_defused", True)
            return
        if not event._ok:
            # The condition consumes the failure; stop the engine from
            # treating the source event as an unhandled error.
            setattr(event, "_defused", True)
            self.fail(event._value)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        self._check(event)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        """Map of already-occurred constituent events to their values.

        Only *processed* events count: a :class:`Timeout` is triggered from
        birth, but it has not yet happened until the engine processes it.
        """
        return {
            event: event._value for event in self._events if event.processed
        }


class AnyOf(_Condition):
    """Triggers as soon as any constituent event succeeds."""

    def _check(self, event: Event) -> None:
        self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once every constituent event has succeeded."""

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env, events)
        if not self.triggered and self._remaining == 0:
            self.succeed({})

    def _check(self, event: Event) -> None:
        if self._remaining == 0:
            self.succeed(self._collect())
