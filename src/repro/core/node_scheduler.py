"""The "which RPN" decision: load balancing across back-end nodes (§3.4).

"Gage attempts to maximize the system utilization efficiency by balancing
the load on the RPNs, in other words, dispatching a request to the RPN
with the least load."  The load measure is each RPN's *estimated
outstanding load* — the summed predicted usage of requests dispatched
there and not yet reported complete (§3.5).

The ``locality`` policy implements §3.6's content-aware dispatching:
"URL pages in the same proximity should be serviced by the same RPN to
exploit access locality" — requests hash by (host, directory) to a
preferred node, falling back to least-load when it lacks headroom, so
each node's buffer cache holds a stable slice of the document tree.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.core.config import (
    NODES_LEAST_LOAD,
    NODES_LOCALITY,
    NODES_RANDOM,
    NODES_ROUND_ROBIN,
)
from repro.core.grps import ResourceVector


def locality_key(request: object) -> Optional[str]:
    """The proximity key of a request: its host plus directory.

    Accepts either a raw request object (anything with ``host``/``path``)
    or the RDN's queue items that wrap one in a ``request`` attribute.
    Returns None when no URL structure is available, in which case the
    locality policy degrades to least-load.
    """
    inner = getattr(request, "request", request)
    host = getattr(inner, "host", None)
    path = getattr(inner, "path", None)
    if host is None or path is None:
        return None
    directory = path.rsplit("/", 1)[0] if "/" in path else ""
    return "{}|{}".format(host, directory or "/")


@dataclass
class RPNStatus:
    """The RDN's view of one back-end node."""

    rpn_id: str
    #: Resource delivered per second of wall time (1 CPU ⇒ cpu_s=1.0, etc.)
    capacity_per_s: ResourceVector
    #: Summed predicted usage of dispatched, not-yet-reported requests.
    outstanding: ResourceVector = field(default_factory=lambda: ResourceVector.ZERO)
    dispatched: int = 0
    #: Health state: a down node receives no dispatches and contributes
    #: no capacity to the spare pool until re-admitted.
    up: bool = True
    #: When the failure detector marked the node down (None while up).
    down_since: Optional[float] = None
    #: How many times this node has been declared dead over the run.
    failures: int = 0

    def load_seconds(self) -> float:
        """Outstanding work expressed as seconds of the busiest resource."""
        return self.outstanding.dominant_fraction_of(self.capacity_per_s)

    def has_headroom(self, predicted: ResourceVector, window_s: float) -> bool:
        """Can this node take one more request of ``predicted`` usage
        without exceeding ``window_s`` seconds of queued work?"""
        after = self.outstanding + predicted
        return after.dominant_fraction_of(self.capacity_per_s) <= window_s


class NodeScheduler:
    """Selects the servicing RPN for each dispatched request."""

    def __init__(
        self,
        policy: str = NODES_LEAST_LOAD,
        window_s: float = 0.25,
        rng: Optional[random.Random] = None,
    ) -> None:
        if policy not in (
            NODES_LEAST_LOAD,
            NODES_ROUND_ROBIN,
            NODES_RANDOM,
            NODES_LOCALITY,
        ):
            raise ValueError("unknown node policy: {!r}".format(policy))
        self.policy = policy
        self.window_s = float(window_s)
        self._rng = rng or random.Random(0)
        self._nodes: Dict[str, RPNStatus] = {}
        self._rr_index = 0
        #: Memoized :meth:`total_capacity_per_s`; capacities change only
        #: on node add / health transitions, but the spare-pool math reads
        #: the total every scheduling cycle.
        self._capacity_cache: Optional[ResourceVector] = None

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, rpn_id: str, capacity_per_s: ResourceVector) -> RPNStatus:
        """Register a back-end node."""
        if rpn_id in self._nodes:
            raise RuntimeError("node {!r} already registered".format(rpn_id))
        status = RPNStatus(rpn_id, capacity_per_s)
        self._nodes[rpn_id] = status
        self._capacity_cache = None
        return status

    def node(self, rpn_id: str) -> RPNStatus:
        """The status record for one node."""
        return self._nodes[rpn_id]

    def get(self, rpn_id: str) -> Optional[RPNStatus]:
        """The status record for one node, or None if unregistered."""
        return self._nodes.get(rpn_id)

    def nodes(self) -> List[RPNStatus]:
        """All nodes in registration order."""
        return list(self._nodes.values())

    def up_nodes(self) -> List[RPNStatus]:
        """Nodes currently considered alive, in registration order."""
        return [status for status in self._nodes.values() if status.up]

    def total_capacity_per_s(self) -> ResourceVector:
        """Cluster-wide capacity per second, *surviving nodes only*.

        A dead node's capacity leaving this sum is what re-distributes
        its share: the spare pool (capacity minus reservations) shrinks,
        and the spare pass splits what remains among the still-backlogged
        subscribers in reservation proportion — the same path that
        distributes spare in the healthy cluster.
        """
        total = self._capacity_cache
        if total is None:
            total = ResourceVector.ZERO
            for status in self._nodes.values():
                if status.up:
                    total = total + status.capacity_per_s
            self._capacity_cache = total
        return total

    # -- health transitions --------------------------------------------------

    def mark_down(self, rpn_id: str, at_s: float = 0.0) -> None:
        """Take a node out of rotation and forget its outstanding load."""
        status = self._nodes[rpn_id]
        if not status.up:
            return
        status.up = False
        status.down_since = at_s
        status.failures += 1
        self._capacity_cache = None
        # The predictions behind this load are backed out by the caller
        # (RDNAccounting.forget_rpn); keeping them here would poison the
        # load ranking on re-admission.
        status.outstanding = ResourceVector.ZERO

    def mark_up(self, rpn_id: str) -> None:
        """Re-admit a recovered node with a drained (empty) load state."""
        status = self._nodes[rpn_id]
        status.up = True
        status.down_since = None
        status.outstanding = ResourceVector.ZERO
        self._capacity_cache = None

    # -- selection -----------------------------------------------------------

    def pick(
        self,
        predicted: ResourceVector,
        request: object = None,
        exclude: Optional[FrozenSet[str]] = None,
        allowed: Optional[FrozenSet[str]] = None,
    ) -> Optional[str]:
        """Choose the RPN for a request with ``predicted`` usage.

        ``request`` is consulted only by the ``locality`` policy (the
        §3.6 content-aware optimization).  ``exclude`` names nodes that
        must not be chosen — the hedging layer passes the nodes already
        holding a copy, so a clone always lands elsewhere.  ``allowed``,
        when not None, restricts the choice to that set — the placement
        layer passes the subscriber's embedded primary, so dispatch
        follows the embedding (an empty set means no node may serve the
        subscriber).  Returns None when no eligible node has headroom
        (cluster saturated); the request stays queued for a later
        scheduling cycle.
        """
        if self.policy == NODES_LEAST_LOAD:
            # Single pass, no eligibility list: the default policy runs on
            # every dispatch attempt of every scheduling cycle.  Ties keep
            # the earliest (registration-order) node, exactly like
            # ``min(eligible, key=...)`` over the filtered list did.
            window = self.window_s
            best = None
            best_load = 0.0
            for status in self._nodes.values():
                if not status.up:
                    continue
                if exclude is not None and status.rpn_id in exclude:
                    continue
                if allowed is not None and status.rpn_id not in allowed:
                    continue
                capacity = status.capacity_per_s
                after = status.outstanding + predicted
                if after.dominant_fraction_of(capacity) > window:
                    continue
                load = status.outstanding.dominant_fraction_of(capacity)
                if best is None or load < best_load:
                    best = status
                    best_load = load
            return None if best is None else best.rpn_id
        eligible = [
            status
            for status in self._nodes.values()
            if status.up
            and (exclude is None or status.rpn_id not in exclude)
            and (allowed is None or status.rpn_id in allowed)
            and status.has_headroom(predicted, self.window_s)
        ]
        if not eligible:
            return None
        if self.policy == NODES_LOCALITY:
            preferred = self._preferred_node(request)
            if preferred is not None and preferred in eligible:
                return preferred.rpn_id
            chosen = min(eligible, key=lambda s: s.load_seconds())
        elif self.policy == NODES_ROUND_ROBIN:
            ordered = list(self._nodes.values())
            for offset in range(len(ordered)):
                candidate = ordered[(self._rr_index + offset) % len(ordered)]
                if candidate in eligible:
                    self._rr_index = (self._rr_index + offset + 1) % len(ordered)
                    chosen = candidate
                    break
        else:
            chosen = self._rng.choice(eligible)
        return chosen.rpn_id

    def _preferred_node(self, request: object) -> Optional[RPNStatus]:
        """The stable hash-preferred node for a request's proximity key."""
        key = locality_key(request) if request is not None else None
        if key is None or not self._nodes:
            return None
        digest = hashlib.sha256(key.encode()).digest()
        ordered = list(self._nodes.values())
        return ordered[int.from_bytes(digest[:4], "big") % len(ordered)]

    # -- bookkeeping -----------------------------------------------------------

    def on_dispatch(self, rpn_id: str, predicted: ResourceVector) -> None:
        """Record a dispatch: outstanding load grows by the prediction."""
        status = self._nodes[rpn_id]
        status.outstanding = status.outstanding + predicted
        status.dispatched += 1

    def on_feedback(self, rpn_id: str, backed_out: ResourceVector) -> None:
        """Shrink outstanding load by the predictions of completed work."""
        status = self._nodes[rpn_id]
        status.outstanding = (status.outstanding - backed_out).clamped_min(0.0)
