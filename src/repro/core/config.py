"""Configuration of a Gage deployment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.grps import GENERIC_REQUEST, ResourceVector

#: Spare-resource allocation policies (§4.1 / ablation A1).
SPARE_BY_RESERVATION = "reservation"
SPARE_BY_INPUT_LOAD = "input_load"
SPARE_NONE = "none"

#: Usage-prediction policies (ablation A2).
ESTIMATE_EWMA = "ewma"
ESTIMATE_LAST = "last"
ESTIMATE_STATIC = "static"

#: Node-selection policies (ablation A3; ``locality`` is §3.6's
#: content-aware dispatching).
NODES_LEAST_LOAD = "least_load"
NODES_ROUND_ROBIN = "round_robin"
NODES_RANDOM = "random"
NODES_LOCALITY = "locality"

#: Hedging policies (tail-latency extension; not part of the paper).
HEDGE_OFF = "off"
HEDGE_FIXED = "fixed"
HEDGE_P95 = "p95"

#: Placement / admission-control policies (online virtual-cluster
#: embedding — an extension beyond the paper, off by default).
PLACEMENT_OFF = "off"
PLACEMENT_UTILIZATION = "utilization"
PLACEMENT_PROFIT = "profit"

#: How death promotion picks among a subscriber's live backups:
#: ``least_loaded`` re-balances (minimum committed utilization wins),
#: ``first`` keeps the historic first-live-backup order.
PLACEMENT_PROMOTE_LEAST_LOADED = "least_loaded"
PLACEMENT_PROMOTE_FIRST = "first"


@dataclass
class GageConfig:
    """All tunables of the Gage layer, with the paper's defaults.

    Attributes
    ----------
    scheduling_cycle_s:
        The request scheduler's polling period — "set to be 10 msec for
        responsiveness" (§3.4).
    accounting_cycle_s:
        How often each RPN feeds resource usage back to the RDN (§3.5);
        the x-axis family of Figure 3.
    generic_request:
        The resource cost defining one generic request (§3.1).
    credit_cap_cycles:
        A queue's positive balance is capped at this many cycles of its
        refill, bounding the burst an idle subscriber can accumulate.
    dispatch_window_s:
        How many seconds of *predicted* work may be outstanding on one
        RPN before the node scheduler declares it full; this is the
        cluster-saturation throttle.  ``None`` (the default) derives it
        as ``max(0.25, 2.5 × accounting_cycle_s)`` — the window must
        cover at least one feedback round-trip or dispatch stalls between
        accounting messages.
    spare_policy, estimator_policy, node_policy:
        The design choices evaluated by ablations A1-A3.
    estimator_alpha:
        EWMA weight of the newest usage sample.
    heartbeat_miss_limit:
        The failure detector's ``K``: an RPN that has previously reported
        accounting messages and then stays silent for more than ``K``
        accounting cycles is declared dead — its outstanding requests are
        re-enqueued and its capacity leaves the spare pool.  ``None``
        disables detection.
    delegate_timeout_s:
        How long the primary RDN waits for a secondary's
        ``HandshakeComplete`` before emulating the handshake itself.
    secondary_failure_limit:
        Consecutive delegation timeouts after which a secondary RDN is
        removed from the delegation rotation until revived.
    proxy_connect_timeout_s, proxy_response_timeout_s:
        Real-socket front end: bounds on backend connect and
        response-head wait, so a dead or hung backend can never wedge a
        client forever.
    proxy_retry_backoff_s:
        Base delay before retrying a failed dispatch on an alternate
        healthy backend (doubled per attempt).
    proxy_failure_threshold:
        Consecutive backend failures after which the proxy ejects the
        backend from rotation and starts probing it.
    proxy_probe_interval_s:
        How often an ejected backend is probed for re-admission.
    proxy_pool_size:
        Idle keep-alive connections kept per backend for reuse across
        dispatches (0 disables pooling).
    proxy_pool_idle_s:
        How long a pooled backend connection may sit idle before being
        discarded.
    proxy_keepalive_idle_s:
        How long the front end waits for the next request on an idle
        keep-alive client connection before closing it.
    proxy_worker_miss_limit:
        Multi-worker front end: consecutive accounting cycles a worker
        process may miss reporting on the control channel before the
        supervisor declares it dead, reclaims its credit, and restarts
        it.
    hedge_policy:
        Tail-latency hedging (an extension beyond the paper, off by
        default so paper-fidelity runs are untouched): ``"off"`` never
        clones; ``"fixed"`` clones a still-unfinished request to a
        second node after ``hedge_delay_s``; ``"p95"`` adapts the delay
        to the observed p95 completion latency, falling back to
        ``hedge_delay_s`` until enough samples accumulate.
    hedge_delay_s:
        Fixed hedge delay, and the adaptive policy's fallback while its
        latency histogram is still empty.
    hedge_max_clones:
        Upper bound on extra copies per request (1 = classic hedged
        request: at most one clone).
    proxy_retry_budget:
        Token-bucket capacity bounding proxy retries: each retry spends
        a token, the bucket refills at ``proxy_retry_budget_refill_per_s``,
        and an empty bucket suppresses the retry (counted by
        ``repro.proxy.retry_budget_exhausted``) so retries plus hedges
        cannot storm a degraded backend.  ``None`` leaves retries
        unbudgeted.
    proxy_retry_budget_refill_per_s:
        Retry tokens restored per second, up to the budget cap.
    proxy_request_deadline_s:
        Per-request deadline measured from admission: a request that is
        still queued when it expires is answered 504 without dialing a
        backend, and backend waits never extend past the remaining
        deadline.  ``None`` disables deadlines.
    proxy_event_loop:
        Which event loop the proxy's worker processes and CLI entry
        points run on: ``"auto"`` (uvloop when importable, else the
        stdlib loop), ``"uvloop"`` (required — fail if missing), or
        ``"asyncio"`` (stdlib always).  See
        :mod:`repro.proxy.loop_policy`.
    """

    scheduling_cycle_s: float = 0.010
    accounting_cycle_s: float = 0.100
    generic_request: ResourceVector = field(default_factory=lambda: GENERIC_REQUEST)
    credit_cap_cycles: float = 4.0
    dispatch_window_s: Optional[float] = None
    spare_policy: str = SPARE_BY_RESERVATION
    estimator_policy: str = ESTIMATE_EWMA
    node_policy: str = NODES_LEAST_LOAD
    estimator_alpha: float = 0.25
    #: How long after observing a connection's FIN/RST its state (the
    #: RDN's connection-table entry, the LSM's splice rule) lingers so
    #: retransmitted teardown packets still route; then it is reclaimed.
    conntable_linger_s: float = 2.0
    heartbeat_miss_limit: Optional[int] = 3
    delegate_timeout_s: float = 0.25
    secondary_failure_limit: int = 2
    proxy_connect_timeout_s: float = 1.0
    proxy_response_timeout_s: float = 5.0
    proxy_retry_backoff_s: float = 0.05
    proxy_failure_threshold: int = 3
    proxy_probe_interval_s: float = 0.5
    proxy_pool_size: int = 8
    proxy_pool_idle_s: float = 30.0
    proxy_keepalive_idle_s: float = 15.0
    proxy_worker_miss_limit: int = 3
    hedge_policy: str = HEDGE_OFF
    hedge_delay_s: float = 0.050
    hedge_max_clones: int = 1
    proxy_retry_budget: Optional[int] = None
    proxy_retry_budget_refill_per_s: float = 1.0
    proxy_request_deadline_s: Optional[float] = None
    proxy_event_loop: str = "auto"
    #: Online placement with admission control (extension, §Placement in
    #: the docs): ``"off"`` admits everything and leaves dispatch
    #: unrestricted (the paper's model); ``"utilization"`` packs
    #: best-fit; ``"profit"`` spreads and rejects marginal placements on
    #: nearly-full nodes.  When on, a subscriber is embedded on one
    #: primary RPN plus ``placement_k_backup`` backup RPNs whose
    #: capacity is reserved ahead of failures.
    placement_policy: str = PLACEMENT_OFF
    placement_k_backup: int = 1
    #: Death-promotion choice among live backups: ``"least_loaded"``
    #: promotes onto the backup with the lowest committed utilization
    #: (heterogeneous clusters keep their balance across repeated
    #: deaths); ``"first"`` is the historic first-live-backup order.
    placement_promote_policy: str = PLACEMENT_PROMOTE_LEAST_LOADED

    def __post_init__(self) -> None:
        if self.scheduling_cycle_s <= 0:
            raise ValueError("scheduling cycle must be positive")
        if self.accounting_cycle_s <= 0:
            raise ValueError("accounting cycle must be positive")
        if self.credit_cap_cycles < 1:
            raise ValueError("credit cap must be at least one cycle")
        if self.dispatch_window_s is None:
            self.dispatch_window_s = max(0.25, 2.5 * self.accounting_cycle_s)
        if self.dispatch_window_s <= 0:
            raise ValueError("dispatch window must be positive")
        if self.spare_policy not in (SPARE_BY_RESERVATION, SPARE_BY_INPUT_LOAD, SPARE_NONE):
            raise ValueError("unknown spare policy: {!r}".format(self.spare_policy))
        if self.estimator_policy not in (ESTIMATE_EWMA, ESTIMATE_LAST, ESTIMATE_STATIC):
            raise ValueError("unknown estimator policy: {!r}".format(self.estimator_policy))
        if self.node_policy not in (
            NODES_LEAST_LOAD,
            NODES_ROUND_ROBIN,
            NODES_RANDOM,
            NODES_LOCALITY,
        ):
            raise ValueError("unknown node policy: {!r}".format(self.node_policy))
        if not 0 < self.estimator_alpha <= 1:
            raise ValueError("estimator alpha must lie in (0, 1]")
        if self.conntable_linger_s < 0:
            raise ValueError("linger must be non-negative")
        if self.heartbeat_miss_limit is not None and self.heartbeat_miss_limit < 1:
            raise ValueError("heartbeat miss limit must be at least 1 (or None)")
        if self.delegate_timeout_s <= 0:
            raise ValueError("delegate timeout must be positive")
        if self.secondary_failure_limit < 1:
            raise ValueError("secondary failure limit must be at least 1")
        if self.proxy_connect_timeout_s <= 0 or self.proxy_response_timeout_s <= 0:
            raise ValueError("proxy timeouts must be positive")
        if self.proxy_retry_backoff_s < 0:
            raise ValueError("retry backoff must be non-negative")
        if self.proxy_failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if self.proxy_probe_interval_s <= 0:
            raise ValueError("probe interval must be positive")
        if self.proxy_pool_size < 0:
            raise ValueError("pool size must be non-negative")
        if self.proxy_pool_idle_s <= 0:
            raise ValueError("pool idle timeout must be positive")
        if self.proxy_keepalive_idle_s <= 0:
            raise ValueError("keep-alive idle timeout must be positive")
        if self.proxy_worker_miss_limit < 1:
            raise ValueError("worker miss limit must be at least 1")
        if self.hedge_policy not in (HEDGE_OFF, HEDGE_FIXED, HEDGE_P95):
            raise ValueError("unknown hedge policy: {!r}".format(self.hedge_policy))
        if self.hedge_delay_s <= 0:
            raise ValueError("hedge delay must be positive")
        if self.hedge_max_clones < 1:
            raise ValueError("hedge max clones must be at least 1")
        if self.proxy_retry_budget is not None and self.proxy_retry_budget < 0:
            raise ValueError("retry budget must be non-negative (or None)")
        if self.proxy_retry_budget_refill_per_s < 0:
            raise ValueError("retry budget refill rate must be non-negative")
        if self.proxy_request_deadline_s is not None and self.proxy_request_deadline_s <= 0:
            raise ValueError("request deadline must be positive (or None)")
        if self.placement_policy not in (
            PLACEMENT_OFF,
            PLACEMENT_UTILIZATION,
            PLACEMENT_PROFIT,
        ):
            raise ValueError(
                "unknown placement policy: {!r}".format(self.placement_policy)
            )
        if self.placement_k_backup < 0:
            raise ValueError("placement k_backup must be non-negative")
        if self.placement_promote_policy not in (
            PLACEMENT_PROMOTE_LEAST_LOADED,
            PLACEMENT_PROMOTE_FIRST,
        ):
            raise ValueError(
                "unknown promote policy: {!r}".format(self.placement_promote_policy)
            )
        if self.proxy_event_loop not in ("auto", "uvloop", "asyncio"):
            raise ValueError(
                "proxy_event_loop must be 'auto', 'uvloop', or 'asyncio'"
            )
