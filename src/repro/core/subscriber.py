"""Service subscribers, their QoS reservations, and the identity table.

Beyond the :class:`Subscriber` value object this module holds the
:class:`SubscriberTable` — the control plane's name-interning layer.  At
production scale (10⁵–10⁶ subscribers) every per-request string hash and
per-subscriber dict is a tax paid on the hot path; the table interns each
name to a dense integer id at registration time so queues, ledgers, and
accounts can live in flat arrays indexed by id.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.core.grps import GENERIC_REQUEST, ResourceVector


@dataclass(frozen=True)
class Subscriber:
    """One hosting customer with a GRPS reservation.

    Attributes
    ----------
    name:
        The subscriber's identity — for the web service this is the
        host-name part of the URL (§3.3, §3.6).
    reservation_grps:
        Guaranteed generic URL requests per second (§3.1).
    queue_capacity:
        Maximum requests buffered in this subscriber's RDN queue before
        arriving requests are dropped.
    delay_target_s:
        Optional queueing-delay bound — the paper's §3.1 names response
        time as an open QoS metric; this extension realizes it through
        delay-bounded admission: by Little's law, a queue drained at the
        reserved rate bounds its queueing delay at ``target`` once its
        depth is capped at ``reservation × target``.  Excess requests are
        rejected immediately (fail fast) instead of queueing past the
        bound.
    """

    name: str
    reservation_grps: float
    queue_capacity: int = 2048
    delay_target_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.reservation_grps < 0:
            raise ValueError("reservation must be non-negative")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if self.delay_target_s is not None and self.delay_target_s <= 0:
            raise ValueError("delay target must be positive")

    @property
    def effective_queue_capacity(self) -> int:
        """The admission bound actually enforced on the queue.

        With a delay target this is ``min(queue_capacity,
        ceil(reservation × target))`` (at least 1); otherwise just
        ``queue_capacity``.
        """
        if self.delay_target_s is None:
            return self.queue_capacity
        bound = max(1, math.ceil(self.reservation_grps * self.delay_target_s))
        return min(self.queue_capacity, bound)

    def reservation_vector(
        self, generic: ResourceVector = GENERIC_REQUEST
    ) -> ResourceVector:
        """Per-second resource entitlement of this reservation."""
        return generic.scaled(self.reservation_grps)


class SubscriberTable:
    """Interns subscriber names to dense integer ids.

    Ids are allocated in registration order and reused (LIFO) after a
    release, so the id space stays dense under churn — the property that
    lets every component keep per-subscriber state in a flat list
    indexed by id instead of a name-keyed dict.  One table instance is
    shared by the queues, the accounting, and the classifier of one
    control-plane stack, so a name maps to the *same* id everywhere.

    Without churn, id order equals registration order — which is what
    keeps the array-backed visit order byte-identical to the historical
    dict-insertion order (the golden digest pins this).  After a release
    the freed id may be handed to a later registration, so id order and
    registration order can diverge; no fixed-seed behavior is pinned
    under churn.
    """

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        #: id → name; ``None`` marks a released (reusable) slot.
        self._names: List[Optional[str]] = []
        self._free: List[int] = []

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def __repr__(self) -> str:
        return "<SubscriberTable {} interned, {} slots>".format(
            len(self._ids), len(self._names)
        )

    def intern(self, name: str) -> int:
        """The id for ``name``, allocating one on first sight."""
        sid = self._ids.get(name)
        if sid is not None:
            return sid
        if self._free:
            sid = self._free.pop()
            self._names[sid] = name
        else:
            sid = len(self._names)
            self._names.append(name)
        self._ids[name] = sid
        return sid

    def id_of(self, name: str) -> int:
        """The id for an interned name (KeyError if unknown)."""
        return self._ids[name]

    def get_id(self, name: str) -> Optional[int]:
        """The id for ``name``, or None if it was never interned."""
        return self._ids.get(name)

    def name_of(self, sid: int) -> str:
        """The name behind an id (KeyError if released or never allocated)."""
        if 0 <= sid < len(self._names):
            name = self._names[sid]
            if name is not None:
                return name
        raise KeyError(sid)

    def release(self, name: str) -> Optional[int]:
        """Free a name's id for reuse; returns the freed id (None if unknown).

        Idempotent so shared-table teardown paths need no coordination:
        the first release wins, later ones are no-ops.
        """
        sid = self._ids.pop(name, None)
        if sid is None:
            return None
        self._names[sid] = None
        self._free.append(sid)
        return sid

    def capacity(self) -> int:
        """Number of id slots ever allocated (dense array length)."""
        return len(self._names)

    def ids(self) -> Iterator[int]:
        """All live ids, in ascending id order."""
        for sid, name in enumerate(self._names):
            if name is not None:
                yield sid

    def names(self) -> Iterator[str]:
        """All interned names, in ascending id order."""
        for name in self._names:
            if name is not None:
                yield name
