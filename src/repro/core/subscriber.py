"""Service subscribers and their QoS reservations."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.grps import GENERIC_REQUEST, ResourceVector


@dataclass(frozen=True)
class Subscriber:
    """One hosting customer with a GRPS reservation.

    Attributes
    ----------
    name:
        The subscriber's identity — for the web service this is the
        host-name part of the URL (§3.3, §3.6).
    reservation_grps:
        Guaranteed generic URL requests per second (§3.1).
    queue_capacity:
        Maximum requests buffered in this subscriber's RDN queue before
        arriving requests are dropped.
    delay_target_s:
        Optional queueing-delay bound — the paper's §3.1 names response
        time as an open QoS metric; this extension realizes it through
        delay-bounded admission: by Little's law, a queue drained at the
        reserved rate bounds its queueing delay at ``target`` once its
        depth is capped at ``reservation × target``.  Excess requests are
        rejected immediately (fail fast) instead of queueing past the
        bound.
    """

    name: str
    reservation_grps: float
    queue_capacity: int = 2048
    delay_target_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.reservation_grps < 0:
            raise ValueError("reservation must be non-negative")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if self.delay_target_s is not None and self.delay_target_s <= 0:
            raise ValueError("delay target must be positive")

    @property
    def effective_queue_capacity(self) -> int:
        """The admission bound actually enforced on the queue.

        With a delay target this is ``min(queue_capacity,
        ceil(reservation × target))`` (at least 1); otherwise just
        ``queue_capacity``.
        """
        if self.delay_target_s is None:
            return self.queue_capacity
        bound = max(1, math.ceil(self.reservation_grps * self.delay_target_s))
        return min(self.queue_capacity, bound)

    def reservation_vector(
        self, generic: ResourceVector = GENERIC_REQUEST
    ) -> ResourceVector:
        """Per-second resource entitlement of this reservation."""
        return generic.scaled(self.reservation_grps)
