"""RDN-side balances and estimated-usage bookkeeping (§3.5).

For each subscriber the RDN maintains:

- the current **balance** — credits accumulate each scheduling cycle from
  the reservation; predicted usage is deducted at dispatch; when an
  accounting message reveals the *measured* usage of completed requests,
  the prediction is backed out and replaced by the measurement;
- the **estimated resource usage array** — per RPN, the summed predicted
  usage of requests dispatched there and not yet reported complete.

Scale notes: accounts live in a flat list indexed by the interned
subscriber id (shared :class:`~repro.core.subscriber.SubscriberTable`),
and the collection keeps a **dirty id set** — every balance mutation
that is *not* the scheduler's own refill (credit, dispatch, cancel,
feedback, node death, or any by-name account lookup that might mutate)
marks the subscriber dirty, which is the signal the lazy scheduler uses
to wake a settled subscriber.  The refill itself must not mark, or no
subscriber would ever settle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.feedback import AccountingMessage
from repro.core.grps import ResourceVector
from repro.core.subscriber import Subscriber, SubscriberTable
from repro.telemetry.registry import get_registry


@dataclass
class SubscriberAccount:
    """The RDN's per-subscriber QoS state."""

    subscriber: Subscriber
    balance: ResourceVector = field(default_factory=lambda: ResourceVector.ZERO)
    #: Dense interned id; -1 until registered with RDNAccounting.
    sid: int = -1
    #: Per-RPN sum of predicted usage of in-flight requests.
    estimated: Dict[str, ResourceVector] = field(default_factory=dict)
    #: Per-RPN FIFO of individual dispatch-time predictions, so feedback
    #: can back out exactly the predictions of completed requests.
    pending: Dict[str, Deque[ResourceVector]] = field(default_factory=dict)
    dispatched: int = 0
    reported_complete: int = 0
    measured_usage_total: ResourceVector = field(
        default_factory=lambda: ResourceVector.ZERO
    )

    def estimated_total(self) -> ResourceVector:
        """In-flight predicted usage across all RPNs."""
        total = ResourceVector.ZERO
        for vec in self.estimated.values():
            total = total + vec
        return total


class RDNAccounting:
    """All subscriber accounts plus the feedback-application logic.

    ``partition`` names the subscribers this instance accounts for;
    registering one outside it raises (``None`` = unpartitioned).
    ``table`` is the shared id table; pass the queues' table so the
    scheduler can address accounts by dense id.
    """

    def __init__(
        self,
        partition: Optional[Iterable[str]] = None,
        table: Optional[SubscriberTable] = None,
    ) -> None:
        self._accounts: Dict[str, SubscriberAccount] = {}
        self._owns_table = table is None
        self.table = table if table is not None else SubscriberTable()
        #: id → account; None marks an unregistered (or foreign-id) slot.
        self._by_id: List[Optional[SubscriberAccount]] = []
        #: Ids whose balance may have changed outside the refill path
        #: since the scheduler last drained the set.
        self._dirty: Set[int] = set()
        self.partition: Optional[Set[str]] = (
            None if partition is None else set(partition)
        )
        #: (time, subscriber, usage) samples, for deviation analysis.
        self.usage_log: List[Tuple[float, str, ResourceVector]] = []
        self.keep_usage_log = True
        #: Conservation ledger: every prediction charged at dispatch is
        #: eventually backed out by feedback, refunded by cancellation,
        #: or restored by a node death — or is still pending.  See
        #: :meth:`conservation_delta`.
        self.total_charged = ResourceVector.ZERO
        self.total_backed_out = ResourceVector.ZERO
        self.total_refunded = ResourceVector.ZERO
        self.total_forgotten = ResourceVector.ZERO
        registry = get_registry()
        self._tm_messages = registry.counter("repro.core.accounting_messages")
        self._tm_completions = registry.counter("repro.core.completions_reported")

    def __len__(self) -> int:
        return len(self._accounts)

    def register(self, subscriber: Subscriber) -> SubscriberAccount:
        """Create the account for a new subscriber."""
        if subscriber.name in self._accounts:
            raise RuntimeError("account {!r} already exists".format(subscriber.name))
        if self.partition is not None and subscriber.name not in self.partition:
            raise ValueError(
                "subscriber {!r} outside this accounting partition".format(
                    subscriber.name
                )
            )
        account = SubscriberAccount(subscriber)
        sid = self.table.intern(subscriber.name)
        account.sid = sid
        self._accounts[subscriber.name] = account
        while len(self._by_id) <= sid:
            self._by_id.append(None)
        self._by_id[sid] = account
        self._dirty.add(sid)
        return account

    def unregister(self, name: str) -> Optional[SubscriberAccount]:
        """Retire a subscriber's account (churn).

        Any predictions still pending against RPNs are folded into
        ``total_forgotten`` so the conservation invariant
        (Σcharged == Σbacked_out + Σrefunded + Σforgotten + Σpending)
        survives the departure.  The id is released for reuse only when
        this instance owns its table.
        """
        account = self._accounts.pop(name, None)
        if account is None:
            return None
        for queue in account.pending.values():
            for predicted in queue:
                self.total_forgotten = self.total_forgotten + predicted
        account.pending.clear()
        account.estimated.clear()
        self._by_id[account.sid] = None
        self._dirty.discard(account.sid)
        if self.partition is not None:
            self.partition.discard(name)
        if self._owns_table:
            self.table.release(name)
        return account

    def extend_partition(self, name: str) -> None:
        """Admit one more name into this instance's partition (churn)."""
        if self.partition is not None:
            self.partition.add(name)

    def account(self, name: str) -> SubscriberAccount:
        """Look up an account (KeyError if unknown).

        The caller may mutate the returned account, so its subscriber is
        conservatively marked dirty (woken for the next lazy cycle).
        """
        account = self._accounts[name]
        self._dirty.add(account.sid)
        return account

    def account_by_id(self, sid: int) -> Optional[SubscriberAccount]:
        """Dense-id lookup for the scheduler's hot path (no dirty mark)."""
        if 0 <= sid < len(self._by_id):
            return self._by_id[sid]
        return None

    def get(self, name: str) -> Optional[SubscriberAccount]:
        """Look up an account, or None."""
        account = self._accounts.get(name)
        if account is not None:
            self._dirty.add(account.sid)
        return account

    def accounts(self) -> List[SubscriberAccount]:
        """All accounts in visit (ascending-id) order."""
        out: List[SubscriberAccount] = []
        for account in self._by_id:
            if account is not None:
                self._dirty.add(account.sid)
                out.append(account)
        return out

    def drain_dirty(self) -> List[int]:
        """Ids mutated outside the refill path since the last drain."""
        if not self._dirty:
            return []
        out = list(self._dirty)
        self._dirty.clear()
        return out

    # -- scheduler-side operations ----------------------------------------

    def refill(self, name: str, credit: ResourceVector, cap: ResourceVector) -> None:
        """Add one cycle's credit; accrual stops at ``cap``.

        Two invariants matter here:

        - negative balances (debt from past overuse) are *not* forgiven —
          the credit always pays debt down;
        - a balance already above the cap (restored there by a feedback
          correction after an over-predicted dispatch) is *kept*, not
          clipped — the cap limits how much an idle queue can hoard, but
          destroying correction-restored balance would systematically
          underdeliver against the reservation on noisy workloads.

        Deliberately does **not** mark the subscriber dirty: the refill
        is the scheduler's own act, and a subscriber whose refill is a
        fixed point (at cap, or zero reservation) must be allowed to
        settle out of the per-cycle walk.
        """
        self.refill_account(self._accounts[name], credit, cap)

    def refill_by_id(
        self, sid: int, credit: ResourceVector, cap: ResourceVector
    ) -> None:
        """Dense-id refill for the scheduler's hot path."""
        account = self._by_id[sid]
        if account is not None:
            self.refill_account(account, credit, cap)

    @staticmethod
    def refill_account(
        account: SubscriberAccount, credit: ResourceVector, cap: ResourceVector
    ) -> None:
        """Refill an already-resolved account (no lookup, no dirty mark)."""
        def refill_component(balance: float, add: float, limit: float) -> float:
            if balance >= limit:
                return balance  # above cap: keep, but accrue no further
            return min(balance + add, limit)

        balance = account.balance
        account.balance = ResourceVector(
            refill_component(balance.cpu_s, credit.cpu_s, cap.cpu_s),
            refill_component(balance.disk_s, credit.disk_s, cap.disk_s),
            refill_component(balance.net_bytes, credit.net_bytes, cap.net_bytes),
        )

    def credit(self, name: str, amount: ResourceVector) -> None:
        """Add uncapped credit (used to fund spare-pass dispatches)."""
        account = self._accounts[name]
        account.balance = account.balance + amount
        self._dirty.add(account.sid)

    def on_dispatch(self, name: str, rpn_id: str, predicted: ResourceVector) -> None:
        """Charge a dispatch: balance down, estimated array up."""
        account = self._accounts[name]
        account.balance = account.balance - predicted
        account.estimated[rpn_id] = (
            account.estimated.get(rpn_id, ResourceVector.ZERO) + predicted
        )
        account.pending.setdefault(rpn_id, deque()).append(predicted)
        account.dispatched += 1
        self.total_charged = self.total_charged + predicted
        self._dirty.add(account.sid)

    def on_cancel(self, name: str, rpn_id: str, predicted: ResourceVector) -> bool:
        """Refund the prediction of a cancelled (hedge-loser) dispatch.

        The newest matching prediction in the (subscriber, RPN) pending
        FIFO is removed and its value restored to the balance — the
        cancelled request will never appear in that RPN's completion
        counts, so leaving the prediction queued would misalign the
        count-based back-out forever.  Searching from the *right* keeps
        feedback for already-completed older requests matched with their
        own (older) predictions.  Returns ``False`` when there is
        nothing to refund — the node died first and ``forget_rpn``
        already restored everything (refund and forget are idempotent
        with each other), or feedback already consumed the queue.
        """
        account = self._accounts.get(name)
        if account is None:
            return False
        queue = account.pending.get(rpn_id)
        if not queue:
            return False
        index = len(queue) - 1
        while index >= 0 and queue[index] != predicted:
            index -= 1
        if index < 0:
            # The exact vector is gone (already backed out by a racing
            # feedback message); drop the newest so the count alignment
            # of future feedback stays intact.
            index = len(queue) - 1
        removed = queue[index]
        del queue[index]
        account.balance = account.balance + removed
        element = account.estimated.get(rpn_id, ResourceVector.ZERO)
        account.estimated[rpn_id] = (element - removed).clamped_min(0.0)
        self.total_refunded = self.total_refunded + removed
        self._dirty.add(account.sid)
        return True

    # -- feedback-side operations -------------------------------------------

    def apply_message(self, message: AccountingMessage) -> Dict[str, ResourceVector]:
        """Apply one RPN accounting message.

        For every reported subscriber: back out the dispatch-time
        predictions of the completed requests, charge the measured usage
        instead, and shrink the estimated-usage array element.

        Returns per-subscriber predicted usage that was backed out, which
        the node scheduler uses to shrink the RPN's outstanding load.
        """
        backed_out: Dict[str, ResourceVector] = {}
        self._tm_messages.inc()
        for name, report in message.per_subscriber.items():
            account = self._accounts.get(name)
            if account is None:
                continue
            removed = self._pop_predictions(account, message.rpn_id, report.completed)
            # Replace prediction with measurement: the net balance effect
            # of each completed request becomes exactly its measured usage.
            account.balance = account.balance + removed - report.usage
            element = account.estimated.get(message.rpn_id, ResourceVector.ZERO)
            account.estimated[message.rpn_id] = (element - removed).clamped_min(0.0)
            account.reported_complete += report.completed
            self._tm_completions.inc(report.completed)
            account.measured_usage_total = account.measured_usage_total + report.usage
            self.total_backed_out = self.total_backed_out + removed
            backed_out[name] = removed
            self._dirty.add(account.sid)
            if self.keep_usage_log:
                self.usage_log.append((message.cycle_end_s, name, report.usage))
        return backed_out

    def forget_rpn(self, rpn_id: str) -> Dict[str, ResourceVector]:
        """Back out every in-flight prediction charged against one RPN.

        Called when the failure detector declares the node dead: the
        dispatched requests will never be reported complete by it, so
        their predicted usage is restored to the balances (the requests
        themselves are re-enqueued by the RDN and will be charged again
        at re-dispatch).  Returns the per-subscriber restored usage.
        """
        restored: Dict[str, ResourceVector] = {}
        for account in self._by_id:
            if account is None:
                continue
            queue = account.pending.pop(rpn_id, None)
            account.estimated.pop(rpn_id, None)
            if not queue:
                continue
            total = ResourceVector.ZERO
            for predicted in queue:
                total = total + predicted
            account.balance = account.balance + total
            self.total_forgotten = self.total_forgotten + total
            self._dirty.add(account.sid)
            restored[account.subscriber.name] = total
        return restored

    # -- conservation -------------------------------------------------------

    def pending_total(self) -> ResourceVector:
        """Predictions charged but not yet backed out/refunded/forgotten."""
        total = ResourceVector.ZERO
        for account in self._accounts.values():
            for queue in account.pending.values():
                for predicted in queue:
                    total = total + predicted
        return total

    def conservation_delta(self) -> ResourceVector:
        """How far the credit ledger is from exact conservation.

        Every charge must be accounted for exactly once:

            Σcharged == Σbacked_out + Σrefunded + Σforgotten + Σpending

        The returned vector is the left side minus the right side; it is
        zero (up to float summation noise) whenever the invariant holds,
        with hedging and cancellation on or off — and across subscriber
        churn, since :meth:`unregister` folds a departing subscriber's
        pending predictions into ``total_forgotten``.
        """
        settled = (
            self.total_backed_out
            + self.total_refunded
            + self.total_forgotten
            + self.pending_total()
        )
        return self.total_charged - settled

    @staticmethod
    def _pop_predictions(
        account: SubscriberAccount, rpn_id: str, count: int
    ) -> ResourceVector:
        """Remove up to ``count`` oldest predictions for (subscriber, RPN)."""
        queue = account.pending.get(rpn_id)
        total = ResourceVector.ZERO
        if queue is None:
            return total
        for _ in range(min(count, len(queue))):
            total = total + queue.popleft()
        return total
