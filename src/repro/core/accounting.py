"""RDN-side balances and estimated-usage bookkeeping (§3.5).

For each subscriber the RDN maintains:

- the current **balance** — credits accumulate each scheduling cycle from
  the reservation; predicted usage is deducted at dispatch; when an
  accounting message reveals the *measured* usage of completed requests,
  the prediction is backed out and replaced by the measurement;
- the **estimated resource usage array** — per RPN, the summed predicted
  usage of requests dispatched there and not yet reported complete.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.feedback import AccountingMessage
from repro.core.grps import ResourceVector
from repro.core.subscriber import Subscriber
from repro.telemetry.registry import get_registry


@dataclass
class SubscriberAccount:
    """The RDN's per-subscriber QoS state."""

    subscriber: Subscriber
    balance: ResourceVector = field(default_factory=lambda: ResourceVector.ZERO)
    #: Per-RPN sum of predicted usage of in-flight requests.
    estimated: Dict[str, ResourceVector] = field(default_factory=dict)
    #: Per-RPN FIFO of individual dispatch-time predictions, so feedback
    #: can back out exactly the predictions of completed requests.
    pending: Dict[str, Deque[ResourceVector]] = field(default_factory=dict)
    dispatched: int = 0
    reported_complete: int = 0
    measured_usage_total: ResourceVector = field(
        default_factory=lambda: ResourceVector.ZERO
    )

    def estimated_total(self) -> ResourceVector:
        """In-flight predicted usage across all RPNs."""
        total = ResourceVector.ZERO
        for vec in self.estimated.values():
            total = total + vec
        return total


class RDNAccounting:
    """All subscriber accounts plus the feedback-application logic.

    ``partition`` names the subscribers this instance accounts for;
    registering one outside it raises (``None`` = unpartitioned).
    """

    def __init__(self, partition: Optional[Iterable[str]] = None) -> None:
        self._accounts: Dict[str, SubscriberAccount] = {}
        self.partition: Optional[frozenset] = (
            None if partition is None else frozenset(partition)
        )
        #: (time, subscriber, usage) samples, for deviation analysis.
        self.usage_log: List[Tuple[float, str, ResourceVector]] = []
        self.keep_usage_log = True
        #: Conservation ledger: every prediction charged at dispatch is
        #: eventually backed out by feedback, refunded by cancellation,
        #: or restored by a node death — or is still pending.  See
        #: :meth:`conservation_delta`.
        self.total_charged = ResourceVector.ZERO
        self.total_backed_out = ResourceVector.ZERO
        self.total_refunded = ResourceVector.ZERO
        self.total_forgotten = ResourceVector.ZERO
        registry = get_registry()
        self._tm_messages = registry.counter("repro.core.accounting_messages")
        self._tm_completions = registry.counter("repro.core.completions_reported")

    def __len__(self) -> int:
        return len(self._accounts)

    def register(self, subscriber: Subscriber) -> SubscriberAccount:
        """Create the account for a new subscriber."""
        if subscriber.name in self._accounts:
            raise RuntimeError("account {!r} already exists".format(subscriber.name))
        if self.partition is not None and subscriber.name not in self.partition:
            raise ValueError(
                "subscriber {!r} outside this accounting partition".format(
                    subscriber.name
                )
            )
        account = SubscriberAccount(subscriber)
        self._accounts[subscriber.name] = account
        return account

    def account(self, name: str) -> SubscriberAccount:
        """Look up an account (KeyError if unknown)."""
        return self._accounts[name]

    def get(self, name: str) -> Optional[SubscriberAccount]:
        """Look up an account, or None."""
        return self._accounts.get(name)

    def accounts(self) -> List[SubscriberAccount]:
        """All accounts in registration order."""
        return list(self._accounts.values())

    # -- scheduler-side operations ----------------------------------------

    def refill(self, name: str, credit: ResourceVector, cap: ResourceVector) -> None:
        """Add one cycle's credit; accrual stops at ``cap``.

        Two invariants matter here:

        - negative balances (debt from past overuse) are *not* forgiven —
          the credit always pays debt down;
        - a balance already above the cap (restored there by a feedback
          correction after an over-predicted dispatch) is *kept*, not
          clipped — the cap limits how much an idle queue can hoard, but
          destroying correction-restored balance would systematically
          underdeliver against the reservation on noisy workloads.
        """
        account = self._accounts[name]

        def refill_component(balance: float, add: float, limit: float) -> float:
            if balance >= limit:
                return balance  # above cap: keep, but accrue no further
            return min(balance + add, limit)

        balance = account.balance
        account.balance = ResourceVector(
            refill_component(balance.cpu_s, credit.cpu_s, cap.cpu_s),
            refill_component(balance.disk_s, credit.disk_s, cap.disk_s),
            refill_component(balance.net_bytes, credit.net_bytes, cap.net_bytes),
        )

    def credit(self, name: str, amount: ResourceVector) -> None:
        """Add uncapped credit (used to fund spare-pass dispatches)."""
        account = self._accounts[name]
        account.balance = account.balance + amount

    def on_dispatch(self, name: str, rpn_id: str, predicted: ResourceVector) -> None:
        """Charge a dispatch: balance down, estimated array up."""
        account = self._accounts[name]
        account.balance = account.balance - predicted
        account.estimated[rpn_id] = (
            account.estimated.get(rpn_id, ResourceVector.ZERO) + predicted
        )
        account.pending.setdefault(rpn_id, deque()).append(predicted)
        account.dispatched += 1
        self.total_charged = self.total_charged + predicted

    def on_cancel(self, name: str, rpn_id: str, predicted: ResourceVector) -> bool:
        """Refund the prediction of a cancelled (hedge-loser) dispatch.

        The newest matching prediction in the (subscriber, RPN) pending
        FIFO is removed and its value restored to the balance — the
        cancelled request will never appear in that RPN's completion
        counts, so leaving the prediction queued would misalign the
        count-based back-out forever.  Searching from the *right* keeps
        feedback for already-completed older requests matched with their
        own (older) predictions.  Returns ``False`` when there is
        nothing to refund — the node died first and ``forget_rpn``
        already restored everything (refund and forget are idempotent
        with each other), or feedback already consumed the queue.
        """
        account = self._accounts.get(name)
        if account is None:
            return False
        queue = account.pending.get(rpn_id)
        if not queue:
            return False
        index = len(queue) - 1
        while index >= 0 and queue[index] != predicted:
            index -= 1
        if index < 0:
            # The exact vector is gone (already backed out by a racing
            # feedback message); drop the newest so the count alignment
            # of future feedback stays intact.
            index = len(queue) - 1
        removed = queue[index]
        del queue[index]
        account.balance = account.balance + removed
        element = account.estimated.get(rpn_id, ResourceVector.ZERO)
        account.estimated[rpn_id] = (element - removed).clamped_min(0.0)
        self.total_refunded = self.total_refunded + removed
        return True

    # -- feedback-side operations -------------------------------------------

    def apply_message(self, message: AccountingMessage) -> Dict[str, ResourceVector]:
        """Apply one RPN accounting message.

        For every reported subscriber: back out the dispatch-time
        predictions of the completed requests, charge the measured usage
        instead, and shrink the estimated-usage array element.

        Returns per-subscriber predicted usage that was backed out, which
        the node scheduler uses to shrink the RPN's outstanding load.
        """
        backed_out: Dict[str, ResourceVector] = {}
        self._tm_messages.inc()
        for name, report in message.per_subscriber.items():
            account = self._accounts.get(name)
            if account is None:
                continue
            removed = self._pop_predictions(account, message.rpn_id, report.completed)
            # Replace prediction with measurement: the net balance effect
            # of each completed request becomes exactly its measured usage.
            account.balance = account.balance + removed - report.usage
            element = account.estimated.get(message.rpn_id, ResourceVector.ZERO)
            account.estimated[message.rpn_id] = (element - removed).clamped_min(0.0)
            account.reported_complete += report.completed
            self._tm_completions.inc(report.completed)
            account.measured_usage_total = account.measured_usage_total + report.usage
            self.total_backed_out = self.total_backed_out + removed
            backed_out[name] = removed
            if self.keep_usage_log:
                self.usage_log.append((message.cycle_end_s, name, report.usage))
        return backed_out

    def forget_rpn(self, rpn_id: str) -> Dict[str, ResourceVector]:
        """Back out every in-flight prediction charged against one RPN.

        Called when the failure detector declares the node dead: the
        dispatched requests will never be reported complete by it, so
        their predicted usage is restored to the balances (the requests
        themselves are re-enqueued by the RDN and will be charged again
        at re-dispatch).  Returns the per-subscriber restored usage.
        """
        restored: Dict[str, ResourceVector] = {}
        for name, account in self._accounts.items():
            queue = account.pending.pop(rpn_id, None)
            account.estimated.pop(rpn_id, None)
            if not queue:
                continue
            total = ResourceVector.ZERO
            for predicted in queue:
                total = total + predicted
            account.balance = account.balance + total
            self.total_forgotten = self.total_forgotten + total
            restored[name] = total
        return restored

    # -- conservation -------------------------------------------------------

    def pending_total(self) -> ResourceVector:
        """Predictions charged but not yet backed out/refunded/forgotten."""
        total = ResourceVector.ZERO
        for account in self._accounts.values():
            for queue in account.pending.values():
                for predicted in queue:
                    total = total + predicted
        return total

    def conservation_delta(self) -> ResourceVector:
        """How far the credit ledger is from exact conservation.

        Every charge must be accounted for exactly once:

            Σcharged == Σbacked_out + Σrefunded + Σforgotten + Σpending

        The returned vector is the left side minus the right side; it is
        zero (up to float summation noise) whenever the invariant holds,
        with hedging and cancellation on or off.
        """
        settled = (
            self.total_backed_out
            + self.total_refunded
            + self.total_forgotten
            + self.pending_total()
        )
        return self.total_charged - settled

    @staticmethod
    def _pop_predictions(
        account: SubscriberAccount, rpn_id: str, count: int
    ) -> ResourceVector:
        """Remove up to ``count`` oldest predictions for (subscriber, RPN)."""
        queue = account.pending.get(rpn_id)
        total = ResourceVector.ZERO
        if queue is None:
            return total
        for _ in range(min(count, len(queue))):
            total = total + queue.popleft()
        return total
