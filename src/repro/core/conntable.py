"""The RDN's connection table (§3.3).

"For all other packets, the primary RDN simply acts as a Layer-2 bridge
that forwards each incoming packet to its corresponding back-end RPN.
This routing is based on a connection table that is indexed on the
quadruple of the packet header ... After a URL request is dispatched to
an RPN, the packet's quadruple and the MAC address of the RPN is inserted
into this connection table, so that all the subsequent packets from the
client are routed to the corresponding RPN."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.addresses import MACAddress
from repro.net.conn import Quadruple


@dataclass(frozen=True)
class ConnectionEntry:
    """Where one client connection's packets must be bridged to."""

    rpn_id: str
    rpn_mac: MACAddress


class ConnectionTable:
    """Quadruple → servicing-RPN map with hit/miss statistics."""

    def __init__(self) -> None:
        self._entries: Dict[Quadruple, ConnectionEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, quad: Quadruple) -> bool:
        return quad in self._entries

    def insert(self, quad: Quadruple, rpn_id: str, rpn_mac: MACAddress) -> None:
        """Bind a client connection to its servicing RPN."""
        self._entries[quad] = ConnectionEntry(rpn_id, rpn_mac)

    def lookup(self, quad: Quadruple) -> Optional[ConnectionEntry]:
        """The entry for ``quad``, counting hit/miss."""
        entry = self._entries.get(quad)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def remove(self, quad: Quadruple) -> Optional[ConnectionEntry]:
        """Drop one connection's entry (at teardown)."""
        return self._entries.pop(quad, None)

    def remove_rpn(self, rpn_id: str) -> "List[Quadruple]":
        """Drop every connection bridged to one RPN (node failure).

        Returns the removed quadruples so the caller can reset or
        re-route the affected clients.
        """
        quads = [
            quad for quad, entry in self._entries.items() if entry.rpn_id == rpn_id
        ]
        for quad in quads:
            del self._entries[quad]
        return quads

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
