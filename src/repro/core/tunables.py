"""The typed registry of Gage's tunable configuration knobs.

Every scalar field of :class:`~repro.core.config.GageConfig` is declared
here exactly once, with its type, legal range (or choice set), and a
one-line doc string.  Sweeps, the search harness
(:mod:`repro.harness.search`), and the generated knob-reference table in
``docs/architecture.md`` all read this registry, so a new config field
becomes sweepable, tunable, and documented by adding one declaration —
the ROADMAP's "tuned, not guessed" contract.

Deliberately excluded: ``generic_request``.  That field *defines* the
GRPS unit every other number is measured in; "tuning" it would silently
redefine the objective rather than optimize it.

Determinism: :meth:`Tunable.sample` and :meth:`Tunable.mutate` draw all
randomness from the caller's :class:`random.Random`, so a seeded search
over the registry is a pure function of its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.core.config import GageConfig

#: A knob value: every registered field is one of these.
TunableValue = Union[None, int, float, str]

#: Tunable kinds.
FLOAT = "float"
INT = "int"
CHOICE = "choice"

#: GageConfig fields deliberately absent from the registry (see module
#: docstring for why each is excluded).
EXCLUDED_FIELDS = frozenset({"generic_request"})


@dataclass(frozen=True)
class Tunable:
    """One tunable config field: type, legal values, and documentation.

    Parameters
    ----------
    name:
        The exact :class:`GageConfig` field name.
    kind:
        ``"float"``, ``"int"``, or ``"choice"``.
    default:
        The shipped default — must equal the dataclass default exactly
        (pinned by ``tests/core/test_tunables.py``).
    doc:
        One-line description, rendered into the knob-reference table.
    lo, hi:
        Inclusive bounds for numeric kinds.
    log:
        Sample/mutate numeric values in log space (for scale-like knobs
        spanning decades, e.g. cycle lengths).
    choices:
        The legal values of a ``"choice"`` kind.
    optional:
        ``None`` is also legal (e.g. ``heartbeat_miss_limit=None``
        disables detection).  ``default`` may then be ``None``.
    """

    name: str
    kind: str
    default: TunableValue
    doc: str
    lo: Optional[float] = None
    hi: Optional[float] = None
    log: bool = False
    choices: Tuple[str, ...] = ()
    optional: bool = False

    def __post_init__(self) -> None:
        if self.kind not in (FLOAT, INT, CHOICE):
            raise ValueError("unknown tunable kind: {!r}".format(self.kind))
        if self.kind == CHOICE:
            if not self.choices:
                raise ValueError("{}: choice tunable needs choices".format(self.name))
            if self.default not in self.choices:
                raise ValueError(
                    "{}: default {!r} not among choices".format(self.name, self.default)
                )
        else:
            if self.lo is None or self.hi is None:
                raise ValueError("{}: numeric tunable needs lo and hi".format(self.name))
            if self.lo > self.hi:
                raise ValueError("{}: lo exceeds hi".format(self.name))
            if self.log and self.lo <= 0:
                raise ValueError("{}: log-scale bounds must be positive".format(self.name))
            if self.default is not None:
                self.validate(self.default)

    # -- value checking ------------------------------------------------------

    def validate(self, value: TunableValue) -> None:
        """Raise ValueError unless ``value`` is legal for this knob."""
        if value is None:
            if not self.optional:
                raise ValueError("{}: None is not legal".format(self.name))
            return
        if self.kind == CHOICE:
            if value not in self.choices:
                raise ValueError(
                    "{}: {!r} not among {}".format(self.name, value, self.choices)
                )
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError("{}: {!r} is not numeric".format(self.name, value))
        if self.kind == INT and not isinstance(value, int):
            raise ValueError("{}: {!r} is not an int".format(self.name, value))
        assert self.lo is not None and self.hi is not None
        if not self.lo <= float(value) <= self.hi:
            raise ValueError(
                "{}: {!r} outside [{}, {}]".format(self.name, value, self.lo, self.hi)
            )

    # -- seeded sampling and mutation ---------------------------------------

    def sample(self, rng: random.Random) -> TunableValue:
        """Draw one legal value; all randomness comes from ``rng``."""
        if self.optional and rng.random() < 0.1:
            return None
        if self.kind == CHOICE:
            return self.choices[rng.randrange(len(self.choices))]
        assert self.lo is not None and self.hi is not None
        if self.log:
            import math

            value = math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))
        else:
            value = rng.uniform(self.lo, self.hi)
        if self.kind == INT:
            return max(int(self.lo), min(int(self.hi), round(value)))
        return round(value, 6)

    def mutate(
        self, value: TunableValue, rng: random.Random, scale: float = 0.25
    ) -> TunableValue:
        """Perturb ``value`` locally; falls back to a fresh sample.

        Numeric kinds take a gaussian step of relative width ``scale``
        (in log space for log knobs) clipped to the bounds; choice kinds
        resample uniformly.  A ``None`` value, or an optional knob with
        a small probability, resamples from scratch so the search can
        enter and leave the "disabled" state.
        """
        if value is None or (self.optional and rng.random() < 0.05):
            return self.sample(rng)
        if self.kind == CHOICE:
            return self.choices[rng.randrange(len(self.choices))]
        assert self.lo is not None and self.hi is not None
        import math

        numeric = float(value)
        if self.log:
            stepped = math.exp(
                math.log(numeric)
                + rng.gauss(0.0, scale * (math.log(self.hi) - math.log(self.lo)))
            )
        else:
            stepped = numeric + rng.gauss(0.0, scale * (self.hi - self.lo))
        clipped = max(self.lo, min(self.hi, stepped))
        if self.kind == INT:
            return max(int(self.lo), min(int(self.hi), round(clipped)))
        return round(clipped, 6)

    # -- rendering -----------------------------------------------------------

    def range_text(self) -> str:
        """Human-readable legal-value description for the knob table."""
        if self.kind == CHOICE:
            text = " / ".join("`{}`".format(choice) for choice in self.choices)
        else:
            text = "[{:g}, {:g}]{}".format(
                float(self.lo or 0.0), float(self.hi or 0.0),
                " (log)" if self.log else "",
            )
        if self.optional:
            text += " or `None`"
        return text


def _registry() -> Tuple[Tunable, ...]:
    return (
        Tunable(
            "scheduling_cycle_s", FLOAT, 0.010,
            "Request scheduler polling period (§3.4).",
            lo=0.002, hi=0.05, log=True,
        ),
        Tunable(
            "accounting_cycle_s", FLOAT, 0.100,
            "RPN→RDN usage feedback period (§3.5); Figure 3's x-axis family.",
            lo=0.02, hi=2.0, log=True,
        ),
        Tunable(
            "credit_cap_cycles", FLOAT, 4.0,
            "Cap on a queue's positive balance, in cycles of its refill.",
            lo=1.0, hi=16.0,
        ),
        Tunable(
            "dispatch_window_s", FLOAT, None,
            "Predicted outstanding work allowed per RPN; `None` derives "
            "max(0.25, 2.5 × accounting cycle).",
            lo=0.05, hi=2.0, optional=True,
        ),
        Tunable(
            "spare_policy", CHOICE, "reservation",
            "Spare-capacity split (§4.1 / ablation A1).",
            choices=("reservation", "input_load", "none"),
        ),
        Tunable(
            "estimator_policy", CHOICE, "ewma",
            "Per-request usage prediction (ablation A2).",
            choices=("ewma", "last", "static"),
        ),
        Tunable(
            "node_policy", CHOICE, "least_load",
            "RPN selection (ablation A3; `locality` is §3.6).",
            choices=("least_load", "round_robin", "random", "locality"),
        ),
        Tunable(
            "estimator_alpha", FLOAT, 0.25,
            "EWMA weight of the newest usage sample.",
            lo=0.05, hi=1.0,
        ),
        Tunable(
            "conntable_linger_s", FLOAT, 2.0,
            "How long FIN/RST'd connection state lingers for retransmits.",
            lo=0.0, hi=10.0,
        ),
        Tunable(
            "heartbeat_miss_limit", INT, 3,
            "Accounting cycles of silence before an RPN is declared dead; "
            "`None` disables detection.",
            lo=1, hi=10, optional=True,
        ),
        Tunable(
            "delegate_timeout_s", FLOAT, 0.25,
            "Primary's wait for a secondary's HandshakeComplete.",
            lo=0.05, hi=2.0,
        ),
        Tunable(
            "secondary_failure_limit", INT, 2,
            "Consecutive delegation timeouts before a secondary is benched.",
            lo=1, hi=8,
        ),
        Tunable(
            "proxy_connect_timeout_s", FLOAT, 1.0,
            "Backend connect bound on the real-socket front end.",
            lo=0.1, hi=5.0,
        ),
        Tunable(
            "proxy_response_timeout_s", FLOAT, 5.0,
            "Backend response-head bound on the real-socket front end.",
            lo=0.5, hi=30.0,
        ),
        Tunable(
            "proxy_retry_backoff_s", FLOAT, 0.05,
            "Base delay before retrying on an alternate backend (doubles).",
            lo=0.0, hi=1.0,
        ),
        Tunable(
            "proxy_failure_threshold", INT, 3,
            "Consecutive failures before a backend is ejected.",
            lo=1, hi=10,
        ),
        Tunable(
            "proxy_probe_interval_s", FLOAT, 0.5,
            "Probe period for re-admitting an ejected backend.",
            lo=0.05, hi=5.0,
        ),
        Tunable(
            "proxy_pool_size", INT, 8,
            "Idle keep-alive connections kept per backend (0 disables).",
            lo=0, hi=64,
        ),
        Tunable(
            "proxy_pool_idle_s", FLOAT, 30.0,
            "Idle lifetime of a pooled backend connection.",
            lo=1.0, hi=120.0,
        ),
        Tunable(
            "proxy_keepalive_idle_s", FLOAT, 15.0,
            "Idle wait for the next request on a keep-alive client conn.",
            lo=1.0, hi=60.0,
        ),
        Tunable(
            "proxy_worker_miss_limit", INT, 3,
            "Missed report cycles before the supervisor restarts a worker.",
            lo=1, hi=10,
        ),
        Tunable(
            "hedge_policy", CHOICE, "off",
            "Tail-latency request cloning (extension; off preserves "
            "paper fidelity).",
            choices=("off", "fixed", "p95"),
        ),
        Tunable(
            "hedge_delay_s", FLOAT, 0.050,
            "Fixed hedge delay, and the p95 policy's cold-start fallback.",
            lo=0.005, hi=0.5, log=True,
        ),
        Tunable(
            "hedge_max_clones", INT, 1,
            "Upper bound on extra copies per request.",
            lo=1, hi=4,
        ),
        Tunable(
            "proxy_retry_budget", INT, None,
            "Token-bucket cap on proxy retries; `None` leaves them "
            "unbudgeted.",
            lo=0, hi=64, optional=True,
        ),
        Tunable(
            "proxy_retry_budget_refill_per_s", FLOAT, 1.0,
            "Retry tokens restored per second, up to the budget cap.",
            lo=0.0, hi=50.0,
        ),
        Tunable(
            "proxy_request_deadline_s", FLOAT, None,
            "Per-request deadline from admission; `None` disables.",
            lo=0.1, hi=30.0, optional=True,
        ),
        Tunable(
            "proxy_event_loop", CHOICE, "auto",
            "Event loop for proxy workers and CLI entry points.",
            choices=("auto", "uvloop", "asyncio"),
        ),
        Tunable(
            "placement_policy", CHOICE, "off",
            "Online embedding + admission control (extension; off is the "
            "paper's admit-everything model).",
            choices=("off", "utilization", "profit"),
        ),
        Tunable(
            "placement_k_backup", INT, 1,
            "Backup RPNs reserved per placed subscriber.",
            lo=0, hi=3,
        ),
        Tunable(
            "placement_promote_policy", CHOICE, "least_loaded",
            "Backup chosen when a primary dies (`first` is the legacy "
            "first-live-backup scan).",
            choices=("least_loaded", "first"),
        ),
    )


#: The registry, in GageConfig field order: name → declaration.
REGISTRY: Dict[str, Tunable] = {tunable.name: tunable for tunable in _registry()}


def _topology_registry() -> Tuple[Tunable, ...]:
    """Knobs of :class:`repro.workload.topology.TopologyGenerator`.

    These are cluster-shape parameters, not :class:`GageConfig` fields,
    so they live in their own registry (and their own generated table)
    rather than in :data:`REGISTRY` — the coverage test pins the main
    registry to GageConfig exactly.  Defaults mirror the generator's
    builder defaults and are pinned by ``tests/workload``.
    """
    return (
        Tunable(
            "num_rpns", INT, 8,
            "Nodes in the generated cluster.",
            lo=1, hi=1024,
        ),
        Tunable(
            "avg_bandwidth_bps", FLOAT, 100e6,
            "Mean per-node access-link bandwidth.",
            lo=1e6, hi=10e9, log=True,
        ),
        Tunable(
            "var_bandwidth_bps", FLOAT, 0.0,
            "Gaussian spread of per-node link bandwidth (0 disables).",
            lo=0.0, hi=1e9,
        ),
        Tunable(
            "avg_latency_s", FLOAT, 20e-6,
            "Mean per-node access-link latency.",
            lo=0.0, hi=0.01,
        ),
        Tunable(
            "var_latency_s", FLOAT, 0.0,
            "Gaussian spread of per-node link latency (0 disables).",
            lo=0.0, hi=0.01,
        ),
        Tunable(
            "slow_link_fraction", FLOAT, 0.0,
            "Fraction of nodes placed on a degraded access link.",
            lo=0.0, hi=1.0,
        ),
        Tunable(
            "slow_link_bandwidth_bps", FLOAT, 10e6,
            "Bandwidth of the degraded links.",
            lo=1e6, hi=1e9, log=True,
        ),
        Tunable(
            "slow_link_latency_s", FLOAT, 100e-6,
            "Latency of the degraded links.",
            lo=0.0, hi=0.01,
        ),
        Tunable(
            "num_switches", INT, 1,
            "Switches in the fabric; nodes are striped round-robin and "
            "leaves uplink to the root.",
            lo=1, hi=64,
        ),
    )


#: Generator-knob registry: name → declaration (see ``_topology_registry``).
TOPOLOGY_REGISTRY: Dict[str, Tunable] = {
    tunable.name: tunable for tunable in _topology_registry()
}


def registry() -> Mapping[str, Tunable]:
    """Name → :class:`Tunable`, in declaration (= GageConfig field) order."""
    return REGISTRY


def get(name: str) -> Tunable:
    """The declaration for ``name`` (KeyError with the known names if absent)."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown tunable {!r}; known: {}".format(name, ", ".join(REGISTRY))
        ) from None


def defaults() -> Dict[str, TunableValue]:
    """Every registered knob at its declared default."""
    return {name: tunable.default for name, tunable in REGISTRY.items()}


def validate_params(params: Mapping[str, TunableValue]) -> None:
    """Raise ValueError/KeyError unless every (name, value) pair is legal."""
    for name, value in params.items():
        get(name).validate(value)


def config_from_params(params: Mapping[str, TunableValue]) -> GageConfig:
    """A :class:`GageConfig` with ``params`` overlaid on the defaults.

    Only registered names are accepted; values are validated against the
    registry *and* by ``GageConfig.__post_init__`` itself.
    """
    validate_params(params)
    return GageConfig(**dict(params))  # type: ignore[arg-type]


def config_field_names() -> Tuple[str, ...]:
    """GageConfig's field names minus the deliberate exclusions."""
    return tuple(
        field.name
        for field in dataclass_fields(GageConfig)
        if field.name not in EXCLUDED_FIELDS
    )


# -- the generated knob-reference table --------------------------------------

#: Markers bounding the generated regions inside docs/architecture.md.
TABLE_BEGIN = "<!-- BEGIN GENERATED KNOB TABLE (python -m repro.core.tunables) -->"
TABLE_END = "<!-- END GENERATED KNOB TABLE -->"
TOPOLOGY_TABLE_BEGIN = (
    "<!-- BEGIN GENERATED TOPOLOGY KNOB TABLE (python -m repro.core.tunables) -->"
)
TOPOLOGY_TABLE_END = "<!-- END GENERATED TOPOLOGY KNOB TABLE -->"


def markdown_table(registry_map: Optional[Mapping[str, Tunable]] = None) -> str:
    """The knob-reference table, one row per registered tunable."""
    if registry_map is None:
        registry_map = REGISTRY
    lines = [
        "| Knob | Kind | Default | Legal values | What it does |",
        "|---|---|---|---|---|",
    ]
    for tunable in registry_map.values():
        default = "`None`" if tunable.default is None else "`{!r}`".format(
            tunable.default
        )
        lines.append(
            "| `{}` | {} | {} | {} | {} |".format(
                tunable.name,
                tunable.kind,
                default,
                tunable.range_text(),
                tunable.doc,
            )
        )
    return "\n".join(lines)


def _replace_region(document: str, begin_marker: str, end_marker: str, table: str) -> str:
    begin = document.find(begin_marker)
    end = document.find(end_marker)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            "document lacks the {} / {} markers".format(begin_marker, end_marker)
        )
    return (
        document[: begin + len(begin_marker)]
        + "\n"
        + table
        + "\n"
        + document[end:]
    )


def render_into(document: str) -> str:
    """``document`` with the marked region(s) replaced by the current tables.

    The GageConfig knob table is mandatory; the topology-generator table
    is rendered only where its markers are present, so standalone docs
    with just the main markers keep working.
    """
    updated = _replace_region(document, TABLE_BEGIN, TABLE_END, markdown_table())
    if TOPOLOGY_TABLE_BEGIN in updated:
        updated = _replace_region(
            updated,
            TOPOLOGY_TABLE_BEGIN,
            TOPOLOGY_TABLE_END,
            markdown_table(TOPOLOGY_REGISTRY),
        )
    return updated


def main(argv: Optional[Tuple[str, ...]] = None) -> int:
    """``python -m repro.core.tunables [--update FILE]``.

    Prints the knob table, or rewrites the marked region of ``FILE`` in
    place (how ``docs/architecture.md`` stays in sync; pinned by
    ``tests/core/test_tunables.py``).
    """
    import sys

    args = list(argv if argv is not None else sys.argv[1:])
    if args[:1] == ["--update"]:
        if len(args) != 2:
            print("usage: python -m repro.core.tunables [--update FILE]", file=sys.stderr)
            return 2
        path = args[1]
        with open(path) as handle:
            document = handle.read()
        updated = render_into(document)
        if updated != document:
            with open(path, "w") as handle:
                handle.write(updated)
            print("{}: knob table updated".format(path))
        else:
            print("{}: knob table already current".format(path))
        return 0
    if args:
        print("usage: python -m repro.core.tunables [--update FILE]", file=sys.stderr)
        return 2
    print(markdown_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
