"""Request classification at the primary RDN (§3.3).

"The primary RDN classifies an incoming packet into three categories:
(1) SYN or ACK packets that are involved in TCP's three-way hand-shake
procedure, (2) packets that contain a URL-based web access request and
(3) all other packets."

The *service-specific* part (§3.6) is how a request payload maps to a
subscriber — for the web service, the host-name part of the URL.  That
mapping is a pluggable callable so the same classifier serves other
Internet services (e.g. user IDs in an application-layer header).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.subscriber import SubscriberTable
from repro.net.packet import Packet, TCPFlags
from repro.telemetry.registry import get_registry


class PacketClass(enum.Enum):
    """The three §3.3 packet categories."""

    HANDSHAKE = "handshake"
    REQUEST = "request"
    OTHER = "other"


@dataclass(frozen=True)
class Classification:
    """The classifier's verdict on one packet."""

    packet_class: PacketClass
    subscriber: Optional[str] = None  # set only for REQUEST packets
    #: The subscriber's dense interned id when the classifier shares a
    #: :class:`~repro.core.subscriber.SubscriberTable`; -1 otherwise.
    sid: int = -1


#: Extracts the service-specific subscriber key from a request payload.
HostExtractor = Callable[[object], Optional[str]]

#: Shared verdicts for the two subscriber-less classes.  Classification
#: is a frozen value object compared via ``packet_class``, so every
#: caller can receive the same instance; building a frozen dataclass per
#: packet was a measurable slice of the per-packet budget.
_HANDSHAKE = Classification(PacketClass.HANDSHAKE)
_OTHER = Classification(PacketClass.OTHER)
#: Raw SYN bit: ``IntFlag.__and__`` allocates an enum member per check,
#: which would dominate the per-packet classification budget.
_SYN_BIT = TCPFlags.SYN._value_


def web_host_extractor(payload: object) -> Optional[str]:
    """The web-service instance: the Host: part of the URL request."""
    return getattr(payload, "host", None)


class RequestClassifier:
    """Maps packets to {handshake, request, other} and requests to subscribers."""

    def __init__(
        self,
        host_extractor: HostExtractor = web_host_extractor,
        table: Optional[SubscriberTable] = None,
    ) -> None:
        self._host_extractor = host_extractor
        #: The shared subscriber-id table, when the RDN threads one
        #: through: REQUEST verdicts then carry the dense id so
        #: downstream lookups skip the name-keyed dict.
        self.table = table
        self._subscribers: Dict[str, str] = {}
        #: subscriber name -> its (immutable, shareable) REQUEST verdict.
        self._request_verdicts: Dict[str, Classification] = {}
        self.classified = 0
        self.unknown_subscriber = 0
        self._tm_unknown = get_registry().counter(
            "repro.scheduler.unknown_subscriber"
        )

    def register_host(self, host: str, subscriber: str) -> None:
        """Bind a host name to a subscriber (a subscriber may own many)."""
        self._subscribers[host] = subscriber

    def unregister_subscriber(self, subscriber: str) -> None:
        """Drop every host binding and memoized verdict of a departing
        subscriber (churn): later requests for its hosts classify as
        unknown instead of resolving to a dead queue."""
        self._request_verdicts.pop(subscriber, None)
        for host in [h for h, s in self._subscribers.items() if s == subscriber]:
            del self._subscribers[host]

    def subscriber_for_host(self, host: str) -> Optional[str]:
        """The subscriber owning ``host``, or None."""
        return self._subscribers.get(host)

    def classify_payload(self, payload: object) -> Optional[str]:
        """The subscriber a request payload belongs to, or None."""
        host = self._host_extractor(payload)
        if host is None:
            return None
        subscriber = self._subscribers.get(host)
        if subscriber is None:
            self.unknown_subscriber += 1
            self._tm_unknown.inc()
        return subscriber

    def classify(self, packet: Packet) -> Classification:
        """Classify one packet per §3.3."""
        self.classified += 1
        if packet.flags._value_ & _SYN_BIT:
            return _HANDSHAKE
        if packet.payload_len > 0:
            subscriber = self.classify_payload(packet.payload)
            if subscriber is not None:
                verdict = self._request_verdicts.get(subscriber)
                if verdict is None:
                    sid = -1
                    if self.table is not None:
                        found = self.table.get_id(subscriber)
                        if found is not None:
                            sid = found
                    verdict = Classification(
                        PacketClass.REQUEST, subscriber=subscriber, sid=sid
                    )
                    self._request_verdicts[subscriber] = verdict
                return verdict
        # Everything else — including bare ACKs, which may complete a
        # handshake the RDN is emulating or acknowledge spliced data; the
        # RDN decides by connection state, so they are reported as OTHER
        # and re-examined there.
        return _OTHER
