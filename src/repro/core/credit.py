"""The credit ledger: per-subscriber credit vectors and spare-pool state.

Extracted from :class:`~repro.core.scheduler.RequestScheduler` so the
same credit arithmetic is reusable by any scheduler instance — the
single-instance control plane, one shard of a partitioned control plane
(:mod:`repro.core.shard`), or a proxy worker process.  The ledger owns
the three pieces of state the WRR cycle needs beyond the balances
themselves:

- the **credit memo** — each subscriber's per-cycle refill vector and
  hoard cap depend only on its reservation and two config constants, so
  they are computed once and reused every 10 ms cycle;
- the **reserved-sum memo** — the summed reservation vector behind the
  spare-pool computation (capacity minus reservations);
- the **spare deficit** — deficit-round-robin rollover of unused spare
  share, without which each queue forfeits its fractional share every
  cycle.

All arithmetic is kept in exactly the order the scheduler performed it
before the extraction: a fixed-seed run through the ledger is
byte-identical to one through the pre-extraction scheduler (the golden
digest pins this).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.config import (
    SPARE_BY_INPUT_LOAD,
    SPARE_BY_RESERVATION,
    GageConfig,
)
from repro.core.grps import ResourceVector
from repro.core.queues import RequestQueue
from repro.core.subscriber import Subscriber


class CreditLedger:
    """Credit vectors, spare-pool math, and deficit rollover for one
    scheduler instance (one subscriber partition)."""

    def __init__(self, config: GageConfig) -> None:
        self.config = config
        #: Per-subscriber (reservation_grps, credit, capped_credit) memo.
        self._credit_cache: Dict[str, Tuple[float, ResourceVector, ResourceVector]] = {}
        #: (per-subscriber reservation key, summed reservation vector)
        #: memo for the spare-pool computation.
        self._reserved_cache: Tuple[tuple, ResourceVector] = ((), ResourceVector.ZERO)
        #: Deficit-round-robin rollover of unused spare share.
        self._spare_deficit: Dict[str, ResourceVector] = {}

    # -- reserved credit ----------------------------------------------------

    def cycle_credit(
        self, subscriber: Subscriber
    ) -> Tuple[ResourceVector, ResourceVector]:
        """(one cycle's refill, hoard cap) for one subscriber.

        The cap bounds idle-time credit hoarding at
        ``credit_cap_cycles`` refills; callers further raise it to at
        least 1.5 predicted requests so heavy-tailed workloads can
        always dispatch (see :meth:`refill_cap`).
        """
        grps = subscriber.reservation_grps
        cached = self._credit_cache.get(subscriber.name)
        if cached is not None and cached[0] == grps:
            return cached[1], cached[2]
        cycle = self.config.scheduling_cycle_s
        credit = subscriber.reservation_vector(self.config.generic_request).scaled(cycle)
        capped = credit.scaled(self.config.credit_cap_cycles)
        self._credit_cache[subscriber.name] = (grps, credit, capped)
        return credit, capped

    @staticmethod
    def refill_cap(
        capped: ResourceVector, predicted: ResourceVector
    ) -> ResourceVector:
        """The effective hoard cap: never below 1.5 predicted requests.

        A subscriber whose requests are larger than
        ``credit_cap_cycles``' worth of credit (heavy-tailed workloads)
        could otherwise never dispatch again.
        """
        return capped.max(predicted.scaled(1.5))

    # -- spare pool ---------------------------------------------------------

    def spare_pool(
        self, capacity_per_s: ResourceVector, subscribers: List[Subscriber]
    ) -> ResourceVector:
        """Capacity this cycle beyond the sum of all reservations."""
        cycle = self.config.scheduling_cycle_s
        capacity = capacity_per_s.scaled(cycle)
        key = tuple((s.name, s.reservation_grps) for s in subscribers)
        if key == self._reserved_cache[0]:
            reserved = self._reserved_cache[1]
        else:
            reserved = ResourceVector.ZERO
            for subscriber in subscribers:
                reserved = reserved + subscriber.reservation_vector(
                    self.config.generic_request
                ).scaled(cycle)
            self._reserved_cache = (key, reserved)
        return (capacity - reserved).clamped_min(0.0)

    def spare_weights(self, backlogged: List[RequestQueue]) -> Dict[str, float]:
        """Normalized spare-share weights over the backlogged queues."""
        if self.config.spare_policy == SPARE_BY_RESERVATION:
            weights = {
                q.subscriber.name: q.subscriber.reservation_grps for q in backlogged
            }
        elif self.config.spare_policy == SPARE_BY_INPUT_LOAD:
            weights = {q.subscriber.name: float(q.arrived) for q in backlogged}
        else:
            return {}
        total = sum(weights.values())
        if total <= 0:
            # Degenerate case (all-zero reservations/loads): equal shares.
            return {name: 1.0 / len(weights) for name in weights}
        return {name: weight / total for name, weight in weights.items()}

    # -- spare deficit (DRR rollover) ---------------------------------------

    def roll_in_deficit(
        self, name: str, share: ResourceVector, predicted: ResourceVector
    ) -> ResourceVector:
        """``share`` plus the rolled-over unused share from previous cycles.

        The rollover cap is two cycles' share, but never below 1.5
        predicted requests — otherwise a subscriber whose requests cost
        more than 2x its per-cycle share could never accumulate enough
        spare to dispatch even one.
        """
        deficit = self._spare_deficit.get(name, ResourceVector.ZERO)
        cap = share.scaled(2.0).max(predicted.scaled(1.5))
        return share + ResourceVector(
            min(deficit.cpu_s, cap.cpu_s),
            min(deficit.disk_s, cap.disk_s),
            min(deficit.net_bytes, cap.net_bytes),
        )

    def store_deficit(self, name: str, remainder: ResourceVector) -> None:
        """Roll a queue's unspent first-round share over to the next cycle."""
        self._spare_deficit[name] = remainder.clamped_min(0.0)

    def drop_stale_deficits(self, active: "set[str]") -> None:
        """Queues that were never backlogged this cycle hoard no deficit."""
        for name in list(self._spare_deficit):
            if name not in active:
                self._spare_deficit[name] = ResourceVector.ZERO
