"""The credit ledger: per-subscriber credit vectors and spare-pool state.

Extracted from :class:`~repro.core.scheduler.RequestScheduler` so the
same credit arithmetic is reusable by any scheduler instance — the
single-instance control plane, one shard of a partitioned control plane
(:mod:`repro.core.shard`), or a proxy worker process.  The ledger owns
the three pieces of state the WRR cycle needs beyond the balances
themselves:

- the **credit memo** — each subscriber's per-cycle refill vector and
  hoard cap depend only on its reservation and two config constants, so
  they are computed once and reused every 10 ms cycle.  The memo is
  array-backed by the interned subscriber id on the hot path
  (:meth:`cycle_credit_by_id`), with the name-keyed :meth:`cycle_credit`
  kept for standalone use;
- the **reserved-sum memo** — the summed reservation vector behind the
  spare-pool computation (capacity minus reservations).  The scheduler
  feeds registrations through :meth:`add_reservation` /
  :meth:`remove_reservation` so the sum is maintained incrementally:
  O(1) per cycle instead of an O(total) rebuild whenever the subscriber
  tuple changes;
- the **spare deficit** — deficit-round-robin rollover of unused spare
  share, without which each queue forfeits its fractional share every
  cycle.

All arithmetic is kept in exactly the order the scheduler performed it
before the extraction: a fixed-seed run through the ledger is
byte-identical to one through the pre-extraction scheduler (the golden
digest pins this).  In particular the incremental reserved sum adds
vectors in registration order — the same float-summation order as the
historical full rebuild — so no-churn runs are bit-equal; only a
removal (churn) produces a sum the rebuild would not, and nothing is
pinned under churn.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import (
    SPARE_BY_INPUT_LOAD,
    SPARE_BY_RESERVATION,
    GageConfig,
)
from repro.core.grps import ResourceVector
from repro.core.queues import RequestQueue
from repro.core.subscriber import Subscriber

#: One credit-memo entry: (reservation_grps, refill, hoard cap).
_CreditEntry = Tuple[float, ResourceVector, ResourceVector]


class CreditLedger:
    """Credit vectors, spare-pool math, and deficit rollover for one
    scheduler instance (one subscriber partition)."""

    def __init__(self, config: GageConfig) -> None:
        self.config = config
        #: Per-subscriber (reservation_grps, credit, capped_credit) memo.
        self._credit_cache: Dict[str, _CreditEntry] = {}
        #: Dense-id mirror of the credit memo for the scheduler hot path.
        self._credit_by_id: List[Optional[_CreditEntry]] = []
        #: (per-subscriber reservation key, summed reservation vector)
        #: memo for the legacy spare-pool computation.
        self._reserved_cache: Tuple[Tuple[Tuple[str, float], ...], ResourceVector] = (
            (),
            ResourceVector.ZERO,
        )
        #: Incrementally-tracked reservation sum (per cycle) over the
        #: subscribers fed through add_reservation/remove_reservation.
        self._tracked_reserved = ResourceVector.ZERO
        #: name → tracked per-cycle reservation vector, for exact removal.
        self._tracked: Dict[str, ResourceVector] = {}
        #: Deficit-round-robin rollover of unused spare share.
        self._spare_deficit: Dict[str, ResourceVector] = {}

    # -- reserved credit ----------------------------------------------------

    def cycle_credit(
        self, subscriber: Subscriber
    ) -> Tuple[ResourceVector, ResourceVector]:
        """(one cycle's refill, hoard cap) for one subscriber.

        The cap bounds idle-time credit hoarding at
        ``credit_cap_cycles`` refills; callers further raise it to at
        least 1.5 predicted requests so heavy-tailed workloads can
        always dispatch (see :meth:`refill_cap`).
        """
        grps = subscriber.reservation_grps
        cached = self._credit_cache.get(subscriber.name)
        if cached is not None and cached[0] == grps:
            return cached[1], cached[2]
        entry = self._compute_credit(subscriber)
        self._credit_cache[subscriber.name] = entry
        return entry[1], entry[2]

    def cycle_credit_by_id(
        self, sid: int, subscriber: Subscriber
    ) -> Tuple[ResourceVector, ResourceVector]:
        """Dense-id variant of :meth:`cycle_credit` (the hot path)."""
        cache = self._credit_by_id
        if sid < len(cache):
            cached = cache[sid]
            if cached is not None and cached[0] == subscriber.reservation_grps:
                return cached[1], cached[2]
        entry = self._compute_credit(subscriber)
        while len(cache) <= sid:
            cache.append(None)
        cache[sid] = entry
        self._credit_cache[subscriber.name] = entry
        return entry[1], entry[2]

    def forget_credit(self, name: str, sid: int = -1) -> None:
        """Drop a departed subscriber's memo entries (churn)."""
        self._credit_cache.pop(name, None)
        if 0 <= sid < len(self._credit_by_id):
            self._credit_by_id[sid] = None

    def _compute_credit(self, subscriber: Subscriber) -> _CreditEntry:
        cycle = self.config.scheduling_cycle_s
        credit = subscriber.reservation_vector(self.config.generic_request).scaled(cycle)
        capped = credit.scaled(self.config.credit_cap_cycles)
        return (subscriber.reservation_grps, credit, capped)

    @staticmethod
    def refill_cap(
        capped: ResourceVector, predicted: ResourceVector
    ) -> ResourceVector:
        """The effective hoard cap: never below 1.5 predicted requests.

        A subscriber whose requests are larger than
        ``credit_cap_cycles``' worth of credit (heavy-tailed workloads)
        could otherwise never dispatch again.
        """
        return capped.max(predicted.scaled(1.5))

    # -- spare pool ---------------------------------------------------------

    def add_reservation(self, subscriber: Subscriber) -> None:
        """Fold one subscriber's reservation into the tracked sum.

        Idempotent per name (re-adding with an unchanged reservation is
        a no-op); a changed reservation replaces the old contribution.
        """
        cycle = self.config.scheduling_cycle_s
        vec = subscriber.reservation_vector(self.config.generic_request).scaled(cycle)
        old = self._tracked.get(subscriber.name)
        if old is not None:
            if old == vec:
                return
            self._tracked_reserved = self._tracked_reserved - old
        self._tracked[subscriber.name] = vec
        self._tracked_reserved = self._tracked_reserved + vec

    def remove_reservation(self, name: str) -> None:
        """Subtract a departing subscriber's reservation from the sum."""
        vec = self._tracked.pop(name, None)
        if vec is not None:
            self._tracked_reserved = self._tracked_reserved - vec

    def spare_pool_tracked(self, capacity_per_s: ResourceVector) -> ResourceVector:
        """Capacity this cycle beyond the tracked reservation sum.

        O(1): uses the incrementally-maintained sum instead of walking
        every subscriber — the scheduler keeps the tracked set in sync
        through its queue-registration hooks.
        """
        capacity = capacity_per_s.scaled(self.config.scheduling_cycle_s)
        return (capacity - self._tracked_reserved).clamped_min(0.0)

    def spare_pool(
        self, capacity_per_s: ResourceVector, subscribers: List[Subscriber]
    ) -> ResourceVector:
        """Capacity this cycle beyond the sum of all reservations.

        The legacy O(total)-rebuild form, kept for standalone callers
        that do not maintain the tracked sum.
        """
        cycle = self.config.scheduling_cycle_s
        capacity = capacity_per_s.scaled(cycle)
        key = tuple((s.name, s.reservation_grps) for s in subscribers)
        if key == self._reserved_cache[0]:
            reserved = self._reserved_cache[1]
        else:
            reserved = ResourceVector.ZERO
            for subscriber in subscribers:
                reserved = reserved + subscriber.reservation_vector(
                    self.config.generic_request
                ).scaled(cycle)
            self._reserved_cache = (key, reserved)
        return (capacity - reserved).clamped_min(0.0)

    def spare_weights(self, backlogged: List[RequestQueue]) -> Dict[str, float]:
        """Normalized spare-share weights over the backlogged queues."""
        weights: Dict[str, float]
        if self.config.spare_policy == SPARE_BY_RESERVATION:
            weights = {
                q.subscriber.name: q.subscriber.reservation_grps for q in backlogged
            }
        elif self.config.spare_policy == SPARE_BY_INPUT_LOAD:
            weights = {q.subscriber.name: float(q.arrived) for q in backlogged}
        else:
            return {}
        total = sum(weights.values())
        if total <= 0:
            # Degenerate case (all-zero reservations/loads): equal shares.
            return {name: 1.0 / len(weights) for name in weights}
        return {name: weight / total for name, weight in weights.items()}

    # -- spare deficit (DRR rollover) ---------------------------------------

    def roll_in_deficit(
        self, name: str, share: ResourceVector, predicted: ResourceVector
    ) -> ResourceVector:
        """``share`` plus the rolled-over unused share from previous cycles.

        The rollover cap is two cycles' share, but never below 1.5
        predicted requests — otherwise a subscriber whose requests cost
        more than 2x its per-cycle share could never accumulate enough
        spare to dispatch even one.
        """
        deficit = self._spare_deficit.get(name, ResourceVector.ZERO)
        cap = share.scaled(2.0).max(predicted.scaled(1.5))
        return share + ResourceVector(
            min(deficit.cpu_s, cap.cpu_s),
            min(deficit.disk_s, cap.disk_s),
            min(deficit.net_bytes, cap.net_bytes),
        )

    def store_deficit(self, name: str, remainder: ResourceVector) -> None:
        """Roll a queue's unspent first-round share over to the next cycle."""
        self._spare_deficit[name] = remainder.clamped_min(0.0)

    def drop_stale_deficits(self, active: Set[str]) -> None:
        """Queues that were never backlogged this cycle hoard no deficit.

        Stale entries are deleted outright (a missing entry reads as
        zero in :meth:`roll_in_deficit`, so this is observationally the
        zeroing the ledger used to do) — the dict stays sized by the
        backlogged set, not by every subscriber ever backlogged.
        """
        for name in list(self._spare_deficit):
            if name not in active:
                del self._spare_deficit[name]
