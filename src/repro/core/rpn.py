"""The RPN local service manager and accounting agent (§3.2, §3.5).

The local service manager (LSM) "resides above the Ethernet driver but
below the IP layer" of each back-end node.  It performs, per Figure 2:

- the **second-leg TCP setup** (steps 6-8): on receiving a dispatch order
  it replays the client's SYN into the RPN's own TCP stack, captures and
  suppresses the stack's SYN-ACK (recording the RPN ISN), answers with
  the client's ACK, and finally injects the buffered URL request (step 9)
  — all locally, with no wire traffic;
- the **sequence-number/address remapping** of every subsequent packet in
  both directions, using :class:`~repro.net.splicing.SpliceRule`.

The accounting agent implements §3.5: every accounting cycle it walks the
process tree, sums each charging entity's usage since the last walk, and
sends the per-subscriber report (plus completion counts) to the RDN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.cluster.webserver import WebServer
from repro.core.control import DispatchOrder
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.grps import ResourceVector
from repro.net.addresses import IPAddress, MACAddress
from repro.net.conn import Quadruple
from repro.net.nic import FrameFilter
from repro.net.packet import SEQ_SPACE, Packet, TCPFlags

#: Raw SYN|ACK bits: every outbound frame from the local stack passes
#: through :meth:`LocalSpliceModule.outbound`, and ``IntFlag`` membership
#: tests allocate per check.
_SYN_ACK_BITS = TCPFlags.SYN._value_ | TCPFlags.ACK._value_
_ACK_PSH = TCPFlags.ACK | TCPFlags.PSH
from repro.net.splicing import SpliceRule
from repro.net.tcp import HostStack
from repro.sim.engine import Environment


@dataclass
class _PendingSplice:
    """Second-leg handshake in progress: waiting to capture the RPN ISN."""

    order: DispatchOrder


class LocalServiceManager(FrameFilter):
    """The below-IP frame filter on one back-end node."""

    def __init__(
        self,
        env: Environment,
        stack: HostStack,
        rpn_ip: IPAddress,
        rpn_mac: MACAddress,
        cluster_ip: IPAddress,
        rule_linger_s: float = 2.0,
    ) -> None:
        self.env = env
        self.stack = stack
        self.rpn_ip = rpn_ip
        self.rpn_mac = rpn_mac
        self.cluster_ip = cluster_ip
        #: How long a splice rule outlives its connection, so teardown
        #: retransmissions still remap before the state is reclaimed.
        self.rule_linger_s = rule_linger_s
        #: Splice rules keyed by the client-side quadruple (for inbound).
        self._rules_in: Dict[Quadruple, SpliceRule] = {}
        #: The same rules keyed by (client_ip, client_port) (for outbound).
        self._rules_out: Dict[Tuple[IPAddress, int], SpliceRule] = {}
        self._pending: Dict[Tuple[IPAddress, int], _PendingSplice] = {}
        self.splices_established = 0
        self.orders_received = 0
        stack.attach_filter(self)

    def __repr__(self) -> str:
        return "<LocalServiceManager {} splices={}>".format(
            self.rpn_ip, self.splices_established
        )

    def rule_for(self, quad: Quadruple) -> Optional[SpliceRule]:
        """The splice rule for a client quadruple, if established."""
        return self._rules_in.get(quad)

    # -- FrameFilter hooks -------------------------------------------------------

    def inbound(self, packet: Packet) -> Optional[Packet]:
        if isinstance(packet.payload, DispatchOrder):
            self._start_second_leg(packet.payload)
            return None
        rule = self._rules_in.get(packet.quadruple())
        if rule is not None:
            return rule.remap_incoming(packet)
        return packet

    def outbound(self, packet: Packet) -> Optional[Packet]:
        key = (packet.dst_ip, packet.dst_port)
        pending = self._pending.get(key)
        if (
            pending is not None
            and packet.flags._value_ & _SYN_ACK_BITS == _SYN_ACK_BITS
        ):
            self._complete_second_leg(pending, rpn_isn=packet.seq)
            return None  # the SYN-ACK never reaches the wire
        rule = self._rules_out.get(key)
        if rule is not None:
            return rule.remap_outgoing(packet)
        return packet

    # -- the Figure 2 local handshake (steps 6-9) -----------------------------------

    def _start_second_leg(self, order: DispatchOrder) -> None:
        self.orders_received += 1
        key = (order.quad.src_ip, order.quad.src_port)
        self._pending[key] = _PendingSplice(order)
        syn = Packet(
            src_mac=order.client_mac,
            dst_mac=self.rpn_mac,
            src_ip=order.quad.src_ip,
            dst_ip=self.rpn_ip,
            src_port=order.quad.src_port,
            dst_port=order.quad.dst_port,
            seq=order.client_isn,
            flags=TCPFlags.SYN,
        )
        # Step 6: the stack believes the client connected directly; its
        # SYN-ACK (step 7) is captured synchronously by outbound().
        self.stack.inject(syn)

    def _complete_second_leg(self, pending: _PendingSplice, rpn_isn: int) -> None:
        order = pending.order
        key = (order.quad.src_ip, order.quad.src_port)
        del self._pending[key]
        rule = SpliceRule(
            client_quad=order.quad,
            cluster_ip=self.cluster_ip,
            rpn_ip=self.rpn_ip,
            rdn_isn=order.rdn_isn,
            rpn_isn=rpn_isn,
            client_mac=order.client_mac,
            rpn_mac=self.rpn_mac,
        )
        self._rules_in[order.quad] = rule
        self._rules_out[key] = rule
        self.splices_established += 1
        # Reclaim the splice state once the local connection fully closes
        # (plus a linger for retransmitted teardown packets).
        local_quad = Quadruple(
            self.rpn_ip, order.quad.dst_port, order.quad.src_ip, order.quad.src_port
        )
        conn = self.stack.connections.get(local_quad)
        if conn is not None:
            quad = order.quad
            conn.closed.callbacks.append(
                lambda _evt: self.env.call_later(
                    self.rule_linger_s, self.forget, quad
                )
            )
        # Step 8: complete the local handshake with the client's ACK.
        ack = Packet(
            src_mac=order.client_mac,
            dst_mac=self.rpn_mac,
            src_ip=order.quad.src_ip,
            dst_ip=self.rpn_ip,
            src_port=order.quad.src_port,
            dst_port=order.quad.dst_port,
            seq=(order.client_isn + 1) % SEQ_SPACE,
            ack=(rpn_isn + 1) % SEQ_SPACE,
            flags=TCPFlags.ACK,
        )
        self.stack.inject(ack)
        # Step 9: replay the buffered URL request into the stack.
        url = Packet(
            src_mac=order.client_mac,
            dst_mac=self.rpn_mac,
            src_ip=order.quad.src_ip,
            dst_ip=self.rpn_ip,
            src_port=order.quad.src_port,
            dst_port=order.quad.dst_port,
            seq=(order.client_isn + 1) % SEQ_SPACE,
            ack=(rpn_isn + 1) % SEQ_SPACE,
            flags=_ACK_PSH,
            payload=order.request,
            payload_len=order.request_bytes,
        )
        self.stack.inject(url)

    def forget(self, quad: Quadruple) -> None:
        """Drop the splice state of one closed connection."""
        self._rules_in.pop(quad, None)
        self._rules_out.pop((quad.src_ip, quad.src_port), None)


#: Delivers an accounting message to the RDN (transport-specific).
FeedbackSender = Callable[[AccountingMessage], None]


class RPNAccountingAgent:
    """Periodic per-subscriber resource-usage reporting (§3.5)."""

    def __init__(
        self,
        env: Environment,
        rpn_id: str,
        webserver: WebServer,
        cycle_s: float,
        send_fn: FeedbackSender,
        phase_offset_s: float = 0.0,
        capacity_per_s: Optional[ResourceVector] = None,
    ) -> None:
        if cycle_s <= 0:
            raise ValueError("accounting cycle must be positive")
        if phase_offset_s < 0:
            raise ValueError("negative phase offset")
        if capacity_per_s is not None:
            # Publish the node's declared capacity so heterogeneous
            # clusters are legible in telemetry snapshots.  Recording
            # only: no events, no RNG — digest-safe.
            from repro.core.topology import grps_capacity
            from repro.telemetry.registry import get_registry

            get_registry().gauge(
                "repro.cluster.node.capacity", node=rpn_id
            ).set(grps_capacity(capacity_per_s))
        self.env = env
        self.rpn_id = rpn_id
        self.webserver = webserver
        self.cycle_s = cycle_s
        self.send_fn = send_fn
        #: Nodes do not tick in lockstep; each agent's cycle is offset.
        self.phase_offset_s = phase_offset_s
        #: Health flag driven by fault injection: a crashed or hung node
        #: sends no accounting messages — the silence is exactly what the
        #: RDN's failure detector keys on.
        self.up = True
        self.messages_sent = 0
        self._last_usage: Dict[str, ResourceVector] = {}
        self._last_completed: Dict[str, int] = {}
        self._last_total = ResourceVector.ZERO
        self._proc = env.process(self._loop())

    def _loop(self):
        if self.phase_offset_s:
            yield self.env.timeout(self.phase_offset_s)
        while True:
            yield self.env.timeout(self.cycle_s)
            if not self.up:
                continue
            message = self.collect()
            self.send_fn(message)
            self.messages_sent += 1

    def resync(self) -> None:
        """Re-baseline the usage counters at the current instant.

        Called when a crashed node restarts: whatever usage and
        completions accumulated before/during the outage must never be
        reported — the RDN already backed those requests out and
        re-dispatched them elsewhere, so reporting them again would
        double-charge the subscribers.
        """
        self.webserver.machine.settle_accounting()
        for host, site in self.webserver.sites.items():
            self._last_usage[host] = site.master.subtree_usage()
            self._last_completed[host] = site.completed
        self._last_total = self.webserver.machine.procs.total_usage()

    def collect(self) -> AccountingMessage:
        """Walk the process tree and build this cycle's report."""
        now = self.env.now
        self.webserver.machine.settle_accounting()
        self.webserver.machine.telemetry_sample()
        per_subscriber: Dict[str, RPNUsageReport] = {}
        for host, site in self.webserver.sites.items():
            usage = site.master.subtree_usage()
            delta = usage - self._last_usage.get(host, ResourceVector.ZERO)
            self._last_usage[host] = usage
            completed_delta = site.completed - self._last_completed.get(host, 0)
            self._last_completed[host] = site.completed
            if completed_delta > 0 or delta != ResourceVector.ZERO:
                per_subscriber[host] = RPNUsageReport(delta, completed_delta)
        total = self.webserver.machine.procs.total_usage()
        total_delta = total - self._last_total
        self._last_total = total
        return AccountingMessage(
            rpn_id=self.rpn_id,
            cycle_start_s=now - self.cycle_s,
            cycle_end_s=now,
            total_usage=total_delta,
            per_subscriber=per_subscriber,
        )
