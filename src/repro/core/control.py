"""Intra-cluster control payloads (packet mode).

These ride in ordinary simulated frames between the RDN and the RPNs'
local service managers: the dispatch order that hands a classified URL
request (plus the splice parameters) to its servicing RPN, and the
handshake-delegation messages of the asymmetric RDN cluster (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import MACAddress
from repro.net.conn import Quadruple

#: Destination port used for control frames between cluster nodes.
CONTROL_PORT = 7777

#: Modeled wire size of a control frame payload, bytes.
CONTROL_PAYLOAD_LEN = 64


@dataclass(frozen=True)
class DispatchOrder:
    """RDN → RPN: service this request; here is the splice state.

    Carries everything the local service manager needs to set up the
    second-leg TCP connection and the sequence-number/address remapping:
    the client's connection quadruple, the client's ISN, the ISN the RDN
    used when emulating the first-leg handshake, and where to address
    response frames at layer 2.
    """

    subscriber: str
    request: object
    request_bytes: int
    quad: Quadruple  # as the client sees it: src=client, dst=cluster
    client_isn: int
    rdn_isn: int
    client_mac: MACAddress


@dataclass(frozen=True)
class DelegateHandshake:
    """Primary RDN → secondary RDN: emulate this connection's handshake."""

    quad: Quadruple
    client_isn: int
    client_mac: MACAddress


@dataclass(frozen=True)
class HandshakeComplete:
    """Secondary RDN → primary RDN: handshake done; here is the state.

    Sent when the secondary has received the client's final ACK, so the
    primary can accept the upcoming URL request packet and later embed
    ``rdn_isn`` in the dispatch order.
    """

    quad: Quadruple
    client_isn: int
    rdn_isn: int
    client_mac: MACAddress
