"""Per-queue prediction of per-request resource usage.

"The current Gage request scheduler assumes that the resource consumption
of each dispatched request is equal to a weighted average resource
consumption of the past requests that belong to the same queue" (§3.4).
The estimator starts at the generic-request cost until the first real
sample arrives.
"""

from __future__ import annotations

from repro.core.config import ESTIMATE_EWMA, ESTIMATE_LAST, ESTIMATE_STATIC
from repro.core.grps import GENERIC_REQUEST, ResourceVector


class UsageEstimator:
    """Predicts the resource usage of the next request in one queue.

    Parameters
    ----------
    policy:
        ``"ewma"`` — weighted average of past samples (the paper's
        scheme); ``"last"`` — most recent sample only; ``"static"`` —
        always the generic-request cost (ablation A2).
    alpha:
        EWMA weight of the newest sample.
    initial:
        Prediction before any sample has been observed.
    """

    def __init__(
        self,
        policy: str = ESTIMATE_EWMA,
        alpha: float = 0.25,
        initial: ResourceVector = GENERIC_REQUEST,
    ) -> None:
        if policy not in (ESTIMATE_EWMA, ESTIMATE_LAST, ESTIMATE_STATIC):
            raise ValueError("unknown estimator policy: {!r}".format(policy))
        if not 0 < alpha <= 1:
            raise ValueError("alpha must lie in (0, 1]")
        self.policy = policy
        self.alpha = alpha
        self.initial = initial
        self._estimate = initial
        # Decayed sums for the EWMA policy.  Predicting from the *ratio of
        # decayed sums* (total usage / total completions) rather than from
        # an average of per-cycle ratios avoids the upward bias that
        # per-cycle ratios suffer when cycles complete few requests but
        # carry in-progress work in their usage.
        self._usage_acc = ResourceVector.ZERO
        self._count_acc = 0.0
        #: Memoized EWMA prediction; the accumulators change only in
        #: :meth:`observe_cycle`, but :meth:`predict` runs on every
        #: dispatch attempt of every scheduling cycle.
        self._predicted = initial
        self.samples = 0

    def __repr__(self) -> str:
        return "<UsageEstimator {} n={} cpu={:.4f}s>".format(
            self.policy, self.samples, self.predict().cpu_s
        )

    def predict(self) -> ResourceVector:
        """The predicted usage of the next request."""
        if self.policy == ESTIMATE_EWMA:
            return self._predicted
        return self._estimate

    def observe(self, usage: ResourceVector) -> None:
        """Fold one completed request's measured usage into the estimate."""
        self.observe_cycle(usage, completed=1)

    def observe_cycle(self, usage: ResourceVector, completed: int) -> None:
        """Fold one accounting cycle's (usage, completions) report in.

        Cycles with ``completed == 0`` still contribute their usage: the
        work belongs to requests that will be counted in later cycles, so
        folding both keeps the long-run ratio unbiased.
        """
        if completed < 0:
            raise ValueError("negative completion count")
        self.samples += 1
        if self.policy == ESTIMATE_STATIC:
            return
        if self.policy == ESTIMATE_LAST:
            if completed > 0:
                self._estimate = usage.scaled(1.0 / completed)
            return
        self._usage_acc = self._usage_acc.scaled(1 - self.alpha) + usage.scaled(self.alpha)
        self._count_acc = self._count_acc * (1 - self.alpha) + completed * self.alpha
        if self._count_acc <= 1e-9:
            self._predicted = self.initial
        else:
            self._predicted = self._usage_acc.scaled(1.0 / self._count_acc)

    def reset(self) -> None:
        """Forget all samples."""
        self._estimate = self.initial
        self._usage_acc = ResourceVector.ZERO
        self._count_acc = 0.0
        self._predicted = self.initial
        self.samples = 0
