"""One-call assembly of a complete Gage cluster on the simulator.

:class:`GageCluster` builds the paper's testbed (Figure 1): a primary RDN,
``num_rpns`` back-end nodes running the web server, optional secondary
RDNs, and (in packet mode) client hosts — all connected through a
simulated switch.

Two fidelities drive the *same* Gage core:

- ``fidelity="packet"`` — every TCP handshake, data segment, ACK, and
  splice remap is simulated; used for mechanism correctness and the
  overhead experiments.
- ``fidelity="flow"`` — requests travel as schedulable units with a small
  modeled control latency; used for the long QoS-dynamics experiments
  (Tables 1-2, Figure 3) where per-packet simulation adds nothing but
  run time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.machine import Machine
from repro.cluster.webserver import WebServer
from repro.core.config import HEDGE_OFF, GageConfig
from repro.core.feedback import AccountingMessage
from repro.core.grps import ResourceVector
from repro.core.hedge import ServiceHandle
from repro.core.metrics import ServiceReport
from repro.core.rdn import PrimaryRDN
from repro.core.rpn import LocalServiceManager, RPNAccountingAgent
from repro.core.secondary import SecondaryRDN
from repro.core.subscriber import Subscriber
from repro.core.topology import ClusterTopology
from repro.net.addresses import IPAddress, MACAddress
from repro.net.switch import Switch
from repro.net.tcp import HostStack
from repro.sim.engine import Environment
from repro.telemetry.registry import get_registry
from repro.workload.client import ClientFleet
from repro.workload.request import CostModel, RequestRecord, WebRequest

#: Fast Ethernet outgoing-link capacity, bytes per second.
LINK_BYTES_PER_S = 12_500_000.0


def default_rpn_capacity(cpu_speed: float = 1.0) -> ResourceVector:
    """The per-second resource capacity of one back-end node."""
    return ResourceVector(cpu_s=cpu_speed, disk_s=1.0, net_bytes=LINK_BYTES_PER_S)


class GageCluster:
    """A fully wired Gage deployment on the simulator."""

    def __init__(
        self,
        env: Environment,
        subscribers: Sequence[Subscriber],
        site_files: Dict[str, Dict[str, int]],
        num_rpns: int = 8,
        config: Optional[GageConfig] = None,
        fidelity: str = "flow",
        cost_model: Optional[CostModel] = None,
        workers_per_site: int = 4,
        rpn_cpu_speed: float = 1.0,
        rpn_cache_bytes: int = 32 * 1024 * 1024,
        num_clients: int = 2,
        num_secondaries: int = 0,
        flow_dispatch_latency_s: float = 0.0002,
        flow_feedback_latency_s: float = 0.0002,
        rpn_overhead_cpu_s: float = 56.7e-6,
        stagger_accounting: bool = False,
        dynamic_arp: bool = False,
        topology: Optional[ClusterTopology] = None,
    ) -> None:
        if fidelity not in ("flow", "packet"):
            raise ValueError("fidelity must be 'flow' or 'packet'")
        if num_rpns < 1:
            raise ValueError("need at least one RPN")
        if topology is None:
            # The scalar knobs describe the paper's homogeneous cluster;
            # map them onto the equivalent degenerate topology so both
            # construction paths are one code path.
            topology = ClusterTopology.homogeneous(
                num_rpns, cpu_speed=rpn_cpu_speed, cache_bytes=rpn_cache_bytes
            )
        #: The cluster layout.  When an explicit topology is given it is
        #: authoritative: ``num_rpns``/``rpn_cpu_speed``/``rpn_cache_bytes``
        #: are ignored in favour of the per-node specs.
        self.topology = topology
        num_rpns = topology.num_rpns
        self.env = env
        self.fidelity = fidelity
        self.config = config or GageConfig()
        self.cost_model = cost_model or CostModel()
        self.subscribers = list(subscribers)
        self.cluster_ip = IPAddress("10.0.0.100")
        self.rdn = PrimaryRDN(env, self.config, self.cluster_ip, self.subscribers)
        self.machines: List[Machine] = []
        self.webservers: List[WebServer] = []
        self.agents: List[RPNAccountingAgent] = []
        self.lsms: List[LocalServiceManager] = []
        self.secondaries: List[SecondaryRDN] = []
        self.switch: Optional[Switch] = None
        self.fleet: Optional[ClientFleet] = None
        self._flow_dispatch_latency_s = flow_dispatch_latency_s
        self._flow_feedback_latency_s = flow_feedback_latency_s
        #: §4.2's measured per-request Gage overhead on each RPN.
        self.rpn_overhead_cpu_s = rpn_overhead_cpu_s
        #: Whether RPN accounting agents tick out of phase.  The paper's
        #: Figure 3 behaviour (usage observed as "0 or around twice the
        #: reservation" at a 2 s cycle) implies in-phase reporting, so
        #: synchronized is the default; staggering is ablation A5.
        self.stagger_accounting = stagger_accounting
        #: When True (packet mode), clients resolve the cluster VIP's MAC
        #: with real ARP (the RDN answers for it) instead of static
        #: entries.
        self.dynamic_arp = dynamic_arp
        #: (time, host) of every completed request, across all RPNs.
        self.completions: List[Tuple[float, str]] = []
        #: (time, host, usage-in-GRPS) per completed request.
        self.usage_events: List[Tuple[float, str, float]] = []
        #: (time, host, accepted) for every submitted request.
        self.arrivals: List[Tuple[float, str, bool]] = []
        #: (completion_time, host, end-to-end latency) per completion.
        self.latencies: List[Tuple[float, str, float]] = []

        # -- fault-injection state (driven by repro.faults) ------------------
        #: RPNs whose process is dead: dispatches and completions vanish.
        self.down_rpns: Set[str] = set()
        #: RPNs that are wedged: dispatches are held, not serviced.
        self.hung_rpns: Set[str] = set()
        #: Held dispatches of hung nodes, delivered (or discarded) on resume.
        self._hold_buffers: Dict[str, List[object]] = {}
        #: Requests lost to dead nodes (dispatched there, never serviced,
        #: plus completions suppressed by a crash).
        self.lost_in_flight = 0
        #: (time, kind, target) of every fault applied to this cluster.
        self.fault_log: List[Tuple[float, str, str]] = []
        self._servers: Dict[str, WebServer] = {}
        #: Hedging (flow mode): cancellation handle per live service,
        #: keyed rpn -> id(request).  Empty unless the policy is on.
        self._service_handles: Dict[str, Dict[int, ServiceHandle]] = {}
        self._hedging = self.config.hedge_policy != HEDGE_OFF
        self._agent_by_id: Dict[str, RPNAccountingAgent] = {}
        self._secondary_by_name: Dict[str, SecondaryRDN] = {}
        self._secondary_macs: Dict[str, MACAddress] = {}
        #: Per-target network interface (packet mode only).
        self._iface_by_target: Dict[str, object] = {}
        #: Nominal CPU speed per node, the baseline `slow()` scales from.
        self._base_cpu_speeds: Dict[str, float] = {}
        #: Fabric switches in spec order (packet mode; index 0 is the root).
        self.switches: List[Switch] = []

        if fidelity == "packet":
            self._build_packet_mode(
                num_clients,
                num_secondaries,
                site_files,
                workers_per_site,
            )
        else:
            if num_secondaries:
                raise ValueError("secondary RDNs only exist in packet mode")
            self._build_flow_mode(site_files, workers_per_site)

    # -- construction -----------------------------------------------------------

    def _make_webserver(
        self,
        index: int,
        site_files: Dict[str, Dict[str, int]],
        workers_per_site: int,
    ) -> WebServer:
        spec = self.topology.nodes[index]
        machine = Machine(
            self.env,
            "rpn{}".format(index),
            cpu_speed=spec.cpu_speed,
            cache_bytes=spec.cache_bytes,
            disk_seek_s=(
                self.cost_model.seek_s
                if spec.disk_seek_s is None
                else spec.disk_seek_s
            ),
            disk_transfer_bps=(
                self.cost_model.transfer_bps
                if spec.disk_transfer_bps is None
                else spec.disk_transfer_bps
            ),
        )
        server = WebServer(
            machine,
            cost_model=self.cost_model,
            workers_per_site=workers_per_site,
            overhead_cpu_s=self.rpn_overhead_cpu_s,
        )
        for subscriber in self.subscribers:
            server.host_site(
                subscriber.name, files=site_files.get(subscriber.name, {})
            )
        rpn_id = "rpn{}".format(index)
        server.on_complete.append(
            lambda host, request, usage, at, _rpn=rpn_id: self._on_complete_from(
                _rpn, host, request, usage, at
            )
        )
        self._servers[rpn_id] = server
        self._base_cpu_speeds[rpn_id] = spec.cpu_speed
        self.machines.append(machine)
        self.webservers.append(server)
        return server

    def _on_complete_from(
        self, rpn_id: str, host: str, request: WebRequest, usage, at: float
    ) -> None:
        if rpn_id in self.down_rpns:
            # A dead node produces no results; whatever was in flight on
            # it when it crashed is lost (the RDN re-enqueues it once the
            # failure detector fires).
            self.lost_in_flight += 1
            return
        if self._hedging:
            handles = self._service_handles.get(rpn_id)
            if handles is not None:
                handles.pop(id(request), None)
            if self.rdn.hedges is not None and not self.rdn.hedges.on_completion(
                request, rpn_id
            ):
                # A hedge loser that outran its cancellation: the request
                # was already answered by the winning copy, so this
                # completion must not enter the stats a second time.
                return
        self._on_complete(host, request, usage, at)

    def _on_complete(self, host: str, request: WebRequest, usage, at: float) -> None:
        self.completions.append((at, host))
        self.usage_events.append(
            (at, host, usage.in_generic_requests(self.config.generic_request))
        )
        issued = getattr(request, "issued_at", None)
        if issued is not None and issued <= at:
            self.latencies.append((at, host, at - issued))

    def _build_flow_mode(
        self,
        site_files: Dict[str, Dict[str, int]],
        workers_per_site: int,
    ) -> None:
        num_rpns = self.topology.num_rpns
        servers: Dict[str, WebServer] = {}
        for index, spec in enumerate(self.topology.nodes):
            server = self._make_webserver(index, site_files, workers_per_site)
            rpn_id = "rpn{}".format(index)
            servers[rpn_id] = server
            capacity = spec.capacity_per_s()
            self.rdn.add_rpn(rpn_id, capacity)
            agent = RPNAccountingAgent(
                self.env,
                rpn_id,
                server,
                cycle_s=self.config.accounting_cycle_s,
                send_fn=self._flow_feedback,
                phase_offset_s=(
                    self.config.accounting_cycle_s * index / num_rpns
                    if self.stagger_accounting
                    else 0.0
                ),
                capacity_per_s=capacity,
            )
            self.agents.append(agent)
            self._agent_by_id[rpn_id] = agent

        def flow_dispatch(request: object, rpn_id: str, _subscriber: str) -> None:
            if rpn_id in self.down_rpns:
                # Dispatched into the void: lost until the RDN's failure
                # detector re-enqueues the node's in-flight requests.
                self.lost_in_flight += 1
                return
            if rpn_id in self.hung_rpns:
                if self._hedging:
                    self._register_handle(rpn_id, request)
                self._hold_buffers.setdefault(rpn_id, []).append(request)
                return
            server = servers[rpn_id]
            if not self._hedging:
                self.env.call_later(
                    self._flow_dispatch_latency_s,
                    lambda: self.env.process(server.service_request(request)),
                )
                return
            handle = self._register_handle(rpn_id, request)

            def _start() -> None:
                if handle.cancelled:
                    return  # cancelled while the dispatch was in flight
                self.env.process(server.service_request(request, handle=handle))

            self.env.call_later(self._flow_dispatch_latency_s, _start)

        self.rdn.flow_dispatch = flow_dispatch
        self.rdn.cancel_service = self._cancel_service

    def _register_handle(self, rpn_id: str, request: object) -> ServiceHandle:
        handle = ServiceHandle()
        self._service_handles.setdefault(rpn_id, {})[id(request)] = handle
        return handle

    def _cancel_service(self, request: object, rpn_id: str) -> bool:
        """Hedge-loser abort: stop the copy of ``request`` on ``rpn_id``."""
        handles = self._service_handles.get(rpn_id)
        if not handles:
            return False
        handle = handles.pop(id(request), None)
        if handle is None:
            return False
        return handle.cancel()

    def _flow_feedback(self, message: AccountingMessage) -> None:
        self.env.call_later(
            self._flow_feedback_latency_s, self.rdn.on_feedback, message
        )

    def _build_fabric(self, num_clients: int, num_secondaries: int) -> None:
        """Instantiate the switch fabric the topology describes.

        A star: switch 0 is the root (RDN, secondaries, and clients
        attach there, plus one trunk per leaf switch); every other
        switch carries only its nodes and its uplink.  An unspecified
        port count sizes the switch from the topology — never below the
        paper's 16-port box, preserving the historic default — while an
        explicit count that cannot seat the topology raises instead of
        being silently clamped.
        """
        topo = self.topology
        num_switches = len(topo.switches)
        for index, spec in enumerate(topo.switches):
            required = len(topo.nodes_on_switch(index))
            if index == 0:
                required += 1 + num_clients + num_secondaries + (num_switches - 1)
            else:
                required += 1  # the uplink to the root
            if spec.ports is None:
                ports = max(16, required)
            elif spec.ports < required:
                raise ValueError(
                    "switch {} has {} ports but the topology needs {}".format(
                        index, spec.ports, required
                    )
                )
            else:
                ports = spec.ports
            self.switches.append(
                Switch(
                    self.env,
                    ports=ports,
                    name="switch" if index == 0 else "switch{}".format(index),
                    bandwidth_bps=spec.port_bandwidth_bps,
                    latency_s=spec.latency_s,
                )
            )
        self.switch = self.switches[0]
        for index in range(1, num_switches):
            uplink = topo.switches[index].uplink_or_default()
            self.switch.interconnect(
                self.switches[index],
                bandwidth_bps=uplink.bandwidth_bps,
                latency_s=uplink.latency_s,
            )

    def _build_packet_mode(
        self,
        num_clients: int,
        num_secondaries: int,
        site_files: Dict[str, Dict[str, int]],
        workers_per_site: int,
    ) -> None:
        num_rpns = self.topology.num_rpns
        self._build_fabric(num_clients, num_secondaries)
        assert self.switch is not None
        rdn_mac = MACAddress("02:00:00:00:00:64")

        # Primary RDN: a bare NIC, no TCP stack of its own.
        from repro.net.nic import NIC

        rdn_nic = NIC(self.env, rdn_mac, name="rdn.eth0")
        self.switch.attach(rdn_nic.iface)
        self.rdn.attach_nic(rdn_nic)

        # Back-end RPNs, each on its own access link off its fabric switch.
        for index, spec in enumerate(self.topology.nodes):
            server = self._make_webserver(index, site_files, workers_per_site)
            machine = server.machine
            rpn_id = "rpn{}".format(index)
            rpn_ip = IPAddress("10.0.1.{}".format(index + 1))
            rpn_mac = MACAddress("02:00:00:00:01:{:02x}".format(index + 1))
            nic = machine.add_nic(
                rpn_mac,
                bandwidth_bps=spec.link.bandwidth_bps,
                latency_s=spec.link.latency_s,
            )
            # The port's egress toward the node serializes at the access
            # link's rate; forwarding latency stays the switch's own.
            self.switches[spec.switch].attach(
                nic.iface, bandwidth_bps=spec.link.bandwidth_bps
            )
            stack = HostStack(self.env, rpn_ip, nic)
            stack.default_mac = rdn_mac
            lsm = LocalServiceManager(
                self.env,
                stack,
                rpn_ip,
                rpn_mac,
                self.cluster_ip,
                rule_linger_s=self.config.conntable_linger_s,
            )
            stack.listen(80, server.acceptor)
            self.lsms.append(lsm)
            capacity = spec.capacity_per_s()
            self.rdn.add_rpn(rpn_id, capacity, mac=rpn_mac, ip=rpn_ip)
            self._iface_by_target[rpn_id] = nic.iface
            agent = RPNAccountingAgent(
                self.env,
                rpn_id,
                server,
                cycle_s=self.config.accounting_cycle_s,
                send_fn=self._packet_feedback_sender(nic, rpn_ip, rdn_mac),
                phase_offset_s=(
                    self.config.accounting_cycle_s * index / num_rpns
                    if self.stagger_accounting
                    else 0.0
                ),
                capacity_per_s=capacity,
            )
            self.agents.append(agent)
            self._agent_by_id[rpn_id] = agent

        # Secondary RDNs.
        for index in range(num_secondaries):
            sec_mac = MACAddress("02:00:00:00:02:{:02x}".format(index + 1))
            sec_nic = NIC(self.env, sec_mac, name="rdn2-{}.eth0".format(index))
            self.switch.attach(sec_nic.iface)
            secondary = SecondaryRDN(
                self.env,
                "secondary{}".format(index),
                self.cluster_ip,
                primary_mac=rdn_mac,
                isn_base=10_000_000 * (index + 2),
            )
            secondary.attach_nic(sec_nic)
            self.rdn.add_secondary(sec_mac)
            self.secondaries.append(secondary)
            self._secondary_by_name[secondary.name] = secondary
            self._secondary_macs[secondary.name] = sec_mac
            self._iface_by_target[secondary.name] = sec_nic.iface

        # Clients.
        client_stacks: List[HostStack] = []
        for index in range(num_clients):
            client_ip = IPAddress("10.0.0.{}".format(index + 1))
            client_mac = MACAddress("02:00:00:00:00:{:02x}".format(index + 1))
            nic = NIC(self.env, client_mac, name="client{}.eth0".format(index))
            self.switch.attach(nic.iface)
            stack = HostStack(
                self.env, client_ip, nic, rto_s=0.5, max_retries=60
            )
            if self.dynamic_arp:
                from repro.net.arp import ArpService

                stack.arp_service = ArpService(self.env, nic, client_ip)
            else:
                stack.arp[self.cluster_ip] = rdn_mac
            client_stacks.append(stack)
        self.fleet = ClientFleet(self.env, client_stacks, self.cluster_ip)

    def _packet_feedback_sender(self, nic, rpn_ip: IPAddress, rdn_mac: MACAddress):
        from repro.core.control import CONTROL_PAYLOAD_LEN, CONTROL_PORT
        from repro.net.packet import Packet

        def send(message: AccountingMessage) -> None:
            nic.transmit(
                Packet(
                    src_mac=nic.mac,
                    dst_mac=rdn_mac,
                    src_ip=rpn_ip,
                    dst_ip=self.cluster_ip,
                    src_port=CONTROL_PORT,
                    dst_port=CONTROL_PORT,
                    payload=message,
                    payload_len=CONTROL_PAYLOAD_LEN + 32 * len(message.per_subscriber),
                )
            )

        return send

    # -- fault injection (repro.faults drives these) -----------------------------

    def install_faults(self, schedule):
        """Arm a :class:`~repro.faults.FaultSchedule` against this cluster.

        Returns the :class:`~repro.faults.FaultInjector`, whose
        ``applied`` log records what fired and when.
        """
        from repro.faults import FaultInjector

        return FaultInjector(self.env, self, schedule)

    def _log_fault(self, kind: str, target: str) -> None:
        self.fault_log.append((self.env.now, kind, target))

    def _agent_for(self, target: str) -> RPNAccountingAgent:
        agent = self._agent_by_id.get(target)
        if agent is None:
            raise ValueError("unknown RPN target: {!r}".format(target))
        return agent

    def crash(self, target: str) -> None:
        """Kill a node's process: servicing and reporting stop instantly.

        For an RPN, everything in flight on the node is lost (and later
        re-enqueued by the RDN's failure detector); in packet mode its
        link also drops.  For a secondary RDN, pending handshake state is
        discarded and delegation orders go unanswered, which is what the
        primary's delegation timeout detects.
        """
        if target in self._secondary_by_name:
            self._secondary_by_name[target].fail()
            self._log_fault("crash", target)
            return
        agent = self._agent_for(target)
        self.down_rpns.add(target)
        self.hung_rpns.discard(target)
        self.lost_in_flight += len(self._hold_buffers.pop(target, []))
        self._service_handles.pop(target, None)
        agent.up = False
        iface = self._iface_by_target.get(target)
        if iface is not None:
            iface.up = False
        self._log_fault("crash", target)

    def restore(self, target: str) -> None:
        """Restart a crashed node with clean state.

        The RPN's accounting agent re-baselines (``resync``) before its
        first post-restart report, so usage and completions from before
        the crash — already backed out and re-dispatched by the RDN —
        are never reported.  The report itself is what re-admits the
        node at the RDN.  A restored secondary re-enters the primary's
        offload rotation immediately.
        """
        if target in self._secondary_by_name:
            self._secondary_by_name[target].recover()
            self.rdn.revive_secondary(self._secondary_macs[target])
            self._log_fault("restart", target)
            return
        agent = self._agent_for(target)
        self.down_rpns.discard(target)
        iface = self._iface_by_target.get(target)
        if iface is not None:
            iface.up = True
        agent.resync()
        agent.up = True
        self._log_fault("restart", target)

    def hang(self, target: str) -> None:
        """Wedge an RPN: new dispatches queue unserviced, reports stop."""
        agent = self._agent_for(target)
        self.hung_rpns.add(target)
        agent.up = False
        self._log_fault("hang", target)

    def resume(self, target: str) -> None:
        """Un-wedge a hung RPN.

        Held dispatches are serviced late — unless the RDN already
        declared the node dead and re-enqueued them, in which case the
        held copies are discarded to avoid double service.
        """
        agent = self._agent_for(target)
        self.hung_rpns.discard(target)
        held = self._hold_buffers.pop(target, [])
        status = self.rdn.node_scheduler.get(target)
        if status is not None and not status.up:
            self.lost_in_flight += len(held)
            if self._hedging:
                handles = self._service_handles.get(target, {})
                for request in held:
                    handles.pop(id(request), None)
        else:
            server = self._servers[target]
            handles = self._service_handles.get(target, {})
            for request in held:
                handle = handles.get(id(request)) if self._hedging else None
                if self._hedging and (handle is None or handle.cancelled):
                    # A hedge clone already answered this request while
                    # the node was wedged (cancellation removed or marked
                    # its handle); don't service the stale copy.
                    handles.pop(id(request), None)
                    continue
                self.env.process(server.service_request(request, handle=handle))
        agent.up = True
        self._log_fault("resume", target)

    def slow(self, target: str, factor: float = 1.0) -> None:
        """Degrade an RPN's CPU to ``factor`` of nominal (1.0 restores)."""
        if factor <= 0:
            raise ValueError("slow factor must be positive")
        server = self._servers.get(target)
        if server is None:
            raise ValueError("unknown RPN target: {!r}".format(target))
        server.machine.cpu.speed = self._base_cpu_speeds[target] * factor
        self._log_fault("slow", target)

    def partition(self, target: str) -> None:
        """Cut a node's network link (packet mode only)."""
        iface = self._iface_by_target.get(target)
        if iface is None:
            raise ValueError(
                "no link to partition for {!r} (flow mode has no links; "
                "use crash/hang instead)".format(target)
            )
        iface.up = False
        self._log_fault("partition", target)

    def heal(self, target: str) -> None:
        """Bring a partitioned link back up (packet mode only)."""
        iface = self._iface_by_target.get(target)
        if iface is None:
            raise ValueError(
                "no link to heal for {!r} (flow mode has no links)".format(target)
            )
        iface.up = True
        self._log_fault("heal", target)

    # -- driving workloads ------------------------------------------------------

    def load_trace(self, records: Sequence[RequestRecord]) -> None:
        """Schedule a trace for issue (transport-appropriate)."""
        if self.fidelity == "packet":
            self.fleet.run_trace(records)
            for record in records:
                self.env.call_later(
                    max(0.0, record.at_s - self.env.now),
                    self._note_arrival,
                    record.host,
                )
        else:
            for record in records:
                self.env.call_later(
                    max(0.0, record.at_s - self.env.now), self._submit_flow, record
                )

    def _note_arrival(self, host: str) -> None:
        self.arrivals.append((self.env.now, host, True))

    def _submit_flow(self, record: RequestRecord) -> None:
        request = record.to_request()
        request.issued_at = self.env.now
        accepted = self.rdn.submit_request(record.host, request)
        self.arrivals.append((self.env.now, record.host, accepted))

    # -- subscriber churn ----------------------------------------------------------

    def add_subscriber(
        self,
        subscriber: Subscriber,
        files: Optional[Dict[str, int]] = None,
    ) -> None:
        """Join a subscriber mid-run, end to end.

        Hosts the site (document tree + worker processes) on every RPN
        *before* registering with the RDN, so the first dispatched
        request finds a servable site — registering alone would leave
        requests answered as unattributable 404s whose dispatch-time
        predictions are never backed out, slowly poisoning the node's
        outstanding-load estimate.  With placement enabled the
        registration runs admission control; a rejected subscriber stays
        hosted but unscheduled until capacity appears.
        """
        if any(s.name == subscriber.name for s in self.subscribers):
            raise ValueError(
                "subscriber {!r} already in the cluster".format(subscriber.name)
            )
        for server in self.webservers:
            if subscriber.name not in server.sites:
                server.host_site(subscriber.name, files=dict(files or {}))
        self.subscribers.append(subscriber)
        self.rdn.register_subscriber(subscriber)

    def remove_subscriber(self, name: str) -> None:
        """Leave mid-run: deregister from the control plane.

        The site stays hosted on the RPNs so in-flight requests complete
        and their usage is still attributed; the control plane stops
        classifying, queueing, and scheduling the name immediately.
        """
        self.rdn.deregister_subscriber(name)
        self.subscribers = [s for s in self.subscribers if s.name != name]

    def prewarm_caches(self) -> None:
        """Load every site file into every RPN's buffer cache.

        Benchmarks of steady-state behaviour call this before the run so
        the measurement window is not distorted by cold-start disk
        faulting of the whole document tree.
        """
        for machine in self.machines:
            for path, size in machine.fs.walk():
                machine.cache.insert(path, size)

    def run(self, duration_s: float) -> None:
        """Advance the simulation to ``duration_s``."""
        self.env.run(until=duration_s)
        registry = get_registry()
        registry.tick()
        if registry.sinks:
            registry.flush(now=self.env.now)

    # -- results -------------------------------------------------------------------

    def service_report(
        self, name: str, start_s: float, end_s: float
    ) -> ServiceReport:
        """Input/served/dropped rates for one subscriber over a window."""
        subscriber = next(s for s in self.subscribers if s.name == name)
        duration = end_s - start_s
        arrived = sum(
            1 for at, host, _ok in self.arrivals if host == name and start_s <= at < end_s
        )
        served = sum(
            1 for at, host in self.completions if host == name and start_s <= at < end_s
        )
        if self.fidelity == "flow":
            dropped = sum(
                1
                for at, host, ok in self.arrivals
                if host == name and start_s <= at < end_s and not ok
            )
        else:
            # Packet mode: drops happen at the RDN queue; approximate the
            # windowed count by arrivals minus completions minus backlog
            # growth, bounded below by zero.
            dropped = max(0, arrived - served - len(self.rdn.queues.get(name) or []))
        return ServiceReport(
            subscriber=name,
            reservation_grps=subscriber.reservation_grps,
            duration_s=duration,
            arrived=arrived,
            served=served,
            dropped=dropped,
        )

    def all_reports(self, start_s: float, end_s: float) -> List[ServiceReport]:
        """Service reports for every subscriber."""
        return [
            self.service_report(subscriber.name, start_s, end_s)
            for subscriber in self.subscribers
        ]

    def completion_events_by_subscriber(self) -> Dict[str, List[Tuple[float, float]]]:
        """(time, GRPS-equivalent) usage events grouped by subscriber."""
        grouped: Dict[str, List[Tuple[float, float]]] = {}
        for at, host, weight in self.usage_events:
            grouped.setdefault(host, []).append((at, weight))
        return grouped
