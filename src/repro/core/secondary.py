"""Secondary RDNs: the asymmetric front-end cluster (§3.2).

"This RDN cluster consists of a primary RDN, which receives all the
incoming packets and makes all the queuing and scheduling decisions, and
a set of secondary RDNs, which are dedicated to performing the
time-consuming task in front-end processing such as TCP three-way
hand-shaking."

The primary forwards each new connection's SYN (as a
:class:`~repro.core.control.DelegateHandshake` control frame) to a
secondary; the secondary emulates the whole handshake with the client
directly, then reports back with :class:`HandshakeComplete` so the
primary can accept the URL request and embed the chosen ISN in the
dispatch order.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.control import (
    CONTROL_PAYLOAD_LEN,
    CONTROL_PORT,
    DelegateHandshake,
    HandshakeComplete,
)
from repro.net.addresses import IPAddress, MACAddress
from repro.net.conn import Quadruple
from repro.net.nic import NIC
from repro.net.packet import SEQ_SPACE, Packet, TCPFlags
from repro.sim.engine import Environment


class SecondaryRDN:
    """One handshake-offload node of the asymmetric RDN cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cluster_ip: IPAddress,
        primary_mac: MACAddress,
        isn_base: int,
    ) -> None:
        self.env = env
        self.name = name
        self.cluster_ip = cluster_ip
        self.primary_mac = primary_mac
        self._isn = isn_base
        self._pending: Dict[Quadruple, DelegateHandshake] = {}
        self._isns: Dict[Quadruple, int] = {}
        self.handshakes_started = 0
        self.handshakes_completed = 0
        #: Health flag driven by fault injection: a dead secondary drops
        #: every frame, so its delegated handshakes never complete and the
        #: primary's delegation timeout fires.
        self.up = True
        self.nic: Optional[NIC] = None

    def __repr__(self) -> str:
        return "<SecondaryRDN {} completed={}>".format(self.name, self.handshakes_completed)

    def attach_nic(self, nic: NIC) -> None:
        """Install this secondary as the handler of its NIC."""
        self.nic = nic
        nic.receive_handler = self.handle_packet

    def _next_isn(self) -> int:
        self._isn = (self._isn + 128_000) % SEQ_SPACE
        return self._isn

    def fail(self) -> None:
        """Crash this secondary: drop all in-progress handshake state."""
        self.up = False
        self._pending.clear()
        self._isns.clear()

    def recover(self) -> None:
        """Bring the secondary back with clean state."""
        self.up = True

    def handle_packet(self, packet: Packet) -> None:
        """Process delegation orders and the delegated clients' ACKs."""
        if not self.up:
            return
        payload = packet.payload
        if isinstance(payload, DelegateHandshake):
            self._start(payload)
            return
        quad = packet.quadruple()
        if quad in self._pending and TCPFlags.ACK in packet.flags:
            self._finish(quad)

    def _start(self, order: DelegateHandshake) -> None:
        # A duplicate SYN re-sends the same SYN-ACK.
        if order.quad not in self._pending:
            self._pending[order.quad] = order
            self._isns[order.quad] = self._next_isn()
            self.handshakes_started += 1
        synack = Packet(
            src_mac=self.nic.mac,
            dst_mac=order.client_mac,
            src_ip=self.cluster_ip,
            dst_ip=order.quad.src_ip,
            src_port=order.quad.dst_port,
            dst_port=order.quad.src_port,
            seq=self._isns[order.quad],
            ack=(order.client_isn + 1) % SEQ_SPACE,
            flags=TCPFlags.SYN | TCPFlags.ACK,
        )
        self.nic.transmit(synack)

    def _finish(self, quad: Quadruple) -> None:
        order = self._pending.pop(quad)
        rdn_isn = self._isns.pop(quad)
        self.handshakes_completed += 1
        done = HandshakeComplete(
            quad=quad,
            client_isn=order.client_isn,
            rdn_isn=rdn_isn,
            client_mac=order.client_mac,
        )
        self.nic.transmit(
            Packet(
                src_mac=self.nic.mac,
                dst_mac=self.primary_mac,
                src_ip=self.cluster_ip,
                dst_ip=self.cluster_ip,
                src_port=CONTROL_PORT,
                dst_port=CONTROL_PORT,
                payload=done,
                payload_len=CONTROL_PAYLOAD_LEN,
            )
        )
