"""Hedged requests: clone the straggler, keep the first answer.

This is a tail-latency extension *beyond the paper*: Gage's feedback
loop (§3.5) bounds mean deviation per accounting interval, but one slow
or hung RPN still dominates p99/p999.  The hedging layer clones a
request that has not completed within a hedge delay onto a second RPN,
takes the first completion, cancels the loser mid-service, and refunds
the loser's predicted charge so credit conservation holds exactly:

    Σ charges == Σ completion back-outs + Σ cancellation refunds
                 + Σ node-death forgets + Σ still-pending predictions

The manager never touches the scheduler's default path — it is only
constructed when ``GageConfig.hedge_policy`` is not ``"off"``, so
paper-fidelity runs (and the golden digest) are untouched.

Delay policies:

``"fixed"``
    Clone after ``hedge_delay_s``.
``"p95"``
    Clone after the observed p95 of winner dispatch→completion
    latencies (own histogram, fed only by resolved requests), falling
    back to ``hedge_delay_s`` until enough samples accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.core.config import HEDGE_P95, GageConfig
from repro.resources import ResourceVector
from repro.sim.engine import Environment
from repro.telemetry.metrics import Histogram
from repro.telemetry.registry import get_registry

__all__ = ["HedgeHooks", "HedgeManager", "ServiceHandle"]

#: Observations the adaptive policy needs before trusting its p95.
_MIN_LATENCY_SAMPLES = 10


class ServiceHandle:
    """Cancellation token threaded through one in-service request.

    The servicing generator *arms* the handle with an abort callback
    around each resource wait (CPU slice, disk I/O) and *disarms* it
    after the wait returns; :meth:`cancel` flips the cancelled flag and
    fires whatever abort is armed at that instant.  A handle whose
    request already finished refuses to cancel.
    """

    __slots__ = ("cancelled", "finished", "_abort")

    def __init__(self) -> None:
        self.cancelled = False
        self.finished = False
        self._abort: Optional[Callable[[], bool]] = None

    def arm(self, abort: Callable[[], bool]) -> None:
        """Install the abort for the resource wait about to start."""
        self._abort = abort

    def disarm(self) -> bool:
        """Clear the armed abort; returns whether cancellation hit."""
        self._abort = None
        return self.cancelled

    def cancel(self) -> bool:
        """Request cancellation; returns ``False`` if too late."""
        if self.finished or self.cancelled:
            return False
        self.cancelled = True
        abort = self._abort
        if abort is not None:
            self._abort = None
            abort()
        return True


@dataclass
class HedgeHooks:
    """The RDN-side operations the hedge manager drives.

    Injected rather than imported so the manager stays decoupled from
    :class:`~repro.core.rdn.PrimaryRDN` internals (and trivially
    testable with plain lambdas).
    """

    #: ``(request, predicted, exclude) -> rpn_id`` — pick a clone
    #: target, or ``None`` when no other node has headroom.
    pick_clone: Callable[[object, ResourceVector, FrozenSet[str]], Optional[str]]
    #: ``(subscriber, rpn_id, predicted)`` — charge a clone dispatch
    #: exactly like a primary one (ledger debit + load accounting).
    charge: Callable[[str, str, ResourceVector], None]
    #: ``(subscriber, rpn_id, predicted) -> refunded`` — un-charge a
    #: cancelled copy; ``False`` when the prediction is already gone
    #: (e.g. the node died and ``forget_rpn`` restored it wholesale).
    refund: Callable[[str, str, ResourceVector], bool]
    #: ``(request, rpn_id, subscriber)`` — hand the clone to the
    #: transport (in-flight registration + flow dispatch).
    dispatch_clone: Callable[[object, str, str], None]
    #: ``(request, rpn_id) -> cancelled`` — abort the copy in service
    #: on ``rpn_id``; ``False`` when it already completed.
    cancel_service: Callable[[object, str], bool]
    #: ``(request, rpn_id, subscriber)`` — drop a cancelled copy from
    #: the RDN's in-flight tracking (it will never complete).
    discard_in_flight: Callable[[object, str, str], None]


class _HedgeEntry:
    __slots__ = ("item", "subscriber", "primary", "copies", "dispatched_at", "resolved")

    def __init__(
        self,
        item: object,
        subscriber: str,
        primary: str,
        predicted: ResourceVector,
        dispatched_at: float,
    ) -> None:
        self.item = item
        self.subscriber = subscriber
        self.primary = primary
        #: Live copies: rpn_id -> the prediction charged for it.
        self.copies: Dict[str, ResourceVector] = {primary: predicted}
        self.dispatched_at = dispatched_at
        self.resolved = False


class HedgeManager:
    """Tracks hedgeable requests and drives clone/cancel/refund."""

    def __init__(self, env: Environment, config: GageConfig, hooks: HedgeHooks) -> None:
        self.env = env
        self.config = config
        self.hooks = hooks
        self._entries: Dict[int, _HedgeEntry] = {}
        #: Winner dispatch→completion latencies, feeding the adaptive
        #: delay.  A private instance (not registry-owned) so parallel
        #: clusters in one process never share adaptation state.
        self.latency = Histogram("repro.core.hedge.latency")
        registry = get_registry()
        self._tm_fired = registry.counter("repro.core.hedge.fired")
        self._tm_won = registry.counter("repro.core.hedge.won")
        self._tm_cancelled = registry.counter("repro.core.hedge.cancelled")
        self._tm_refunded_grps = registry.counter("repro.core.hedge.refunded_grps")
        self._tm_starved = registry.counter("repro.core.hedge.no_alternate")

    def __repr__(self) -> str:
        return "<HedgeManager policy={} tracked={}>".format(
            self.config.hedge_policy, len(self._entries)
        )

    # -- delay policy ---------------------------------------------------

    def hedge_delay(self) -> float:
        """Seconds a request may run before it earns a clone."""
        if (
            self.config.hedge_policy == HEDGE_P95
            and self.latency.count >= _MIN_LATENCY_SAMPLES
        ):
            adaptive = self.latency.quantile(0.95)
            if adaptive > 0.0:
                return adaptive
        return self.config.hedge_delay_s

    # -- lifecycle ------------------------------------------------------

    def on_primary_dispatch(
        self, item: object, rpn_id: str, subscriber: str, predicted: ResourceVector
    ) -> None:
        """Start tracking a freshly dispatched request."""
        entry = _HedgeEntry(item, subscriber, rpn_id, predicted, self.env.now)
        self._entries[id(item)] = entry
        self.env.call_later(self.hedge_delay(), self._maybe_hedge, entry)

    def _maybe_hedge(self, entry: _HedgeEntry) -> None:
        if self._entries.get(id(entry.item)) is not entry or entry.resolved:
            return
        if len(entry.copies) > self.config.hedge_max_clones:
            return
        predicted = entry.copies[entry.primary]
        exclude = frozenset(entry.copies)
        target = self.hooks.pick_clone(entry.item, predicted, exclude)
        if target is None:
            self._tm_starved.inc()
            return
        # A clone is a real second dispatch: it debits the subscriber's
        # ledger and the target's load window just like the primary did,
        # and earns its refund only if it loses and cancels cleanly.
        self.hooks.charge(entry.subscriber, target, predicted)
        entry.copies[target] = predicted
        self._tm_fired.inc()
        self.hooks.dispatch_clone(entry.item, target, entry.subscriber)
        if len(entry.copies) <= self.config.hedge_max_clones:
            self.env.call_later(self.hedge_delay(), self._maybe_hedge, entry)

    def on_completion(self, item: object, rpn_id: str) -> bool:
        """Note one copy finishing on ``rpn_id``.

        Returns ``True`` when the completion should count toward
        user-visible statistics (untracked requests and every first
        completion), ``False`` for a loser that finished before its
        cancellation landed — its samples must be suppressed so no
        request is ever counted twice.
        """
        entry = self._entries.get(id(item))
        if entry is None or entry.item is not item:
            return True
        if entry.resolved:
            # A loser raced its cancellation and completed anyway.  Its
            # measured usage stands (resources were really consumed and
            # the feedback loop backs out its prediction normally), but
            # the request was already answered by the winner.
            entry.copies.pop(rpn_id, None)
            if not entry.copies:
                self._entries.pop(id(item), None)
            return False
        entry.resolved = True
        self.latency.observe(self.env.now - entry.dispatched_at)
        if rpn_id != entry.primary:
            self._tm_won.inc()
        for other, predicted in list(entry.copies.items()):
            if other == rpn_id:
                continue
            if self.hooks.cancel_service(item, other):
                self._tm_cancelled.inc()
                if self.hooks.refund(entry.subscriber, other, predicted):
                    self._tm_refunded_grps.inc(
                        predicted.in_generic_requests(self.config.generic_request)
                    )
                self.hooks.discard_in_flight(item, other, entry.subscriber)
                entry.copies.pop(other, None)
        # From here on ``copies`` holds only losers that could not be
        # cancelled; the entry survives exactly until each has finished
        # (and been suppressed) or died with its node.
        entry.copies.pop(rpn_id, None)
        if not entry.copies:
            self._entries.pop(id(item), None)
        return True

    def filter_requeue(self, rpn_id: str, items: Sequence[object]) -> List[object]:
        """Node-death triage: which of ``items`` deserve a requeue.

        A copy lost with its node is *not* requeued when a sibling copy
        is still live elsewhere (the hedge already is the retry); a sole
        copy is requeued as usual.  No refunds here — ``forget_rpn``
        restored the dead node's predictions wholesale.
        """
        requeue: List[object] = []
        for item in items:
            entry = self._entries.get(id(item))
            if entry is None or entry.item is not item:
                requeue.append(item)
                continue
            entry.copies.pop(rpn_id, None)
            if entry.resolved:
                # Already answered; the dead node only held a straggling
                # loser whose completion will now never arrive.
                if not entry.copies:
                    self._entries.pop(id(item), None)
                continue
            if entry.copies:
                continue  # a live sibling still carries the request
            self._entries.pop(id(item), None)
            requeue.append(item)
        return requeue
