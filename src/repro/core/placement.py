"""Online virtual-cluster embedding of subscriber reservations onto RPNs.

An extension beyond the paper (off by default): the paper's Gage
scheduler assumes every RPN can serve every subscriber, which stops
scaling once subscriber state (content, sessions, models) must actually
*live* somewhere.  Gage's GRPS reservations are virtual-cluster
embeddings, so this layer follows the online-embedding-with-admission-
control literature — "Opposites Attract: Virtual Cluster Embedding for
Profit" (profit-driven accept/reject) and "Survivable and
Bandwidth-Guaranteed Embedding of Virtual Clusters in Cloud Data
Centers" (backup capacity reserved ahead of failures):

- each subscriber is embedded on one **primary** RPN plus ``k`` backup
  RPNs whose capacity is *reserved* (not used) for it;
- **admission control**: a reservation that cannot be embedded without
  overcommitting any node — primaries plus reserved backups — is
  rejected outright, instead of being admitted and violated later;
- the placement **objective is pluggable**: ``utilization`` packs
  (best-fit, maximize utilization of touched nodes), ``profit`` spreads
  (prefer low-utilization nodes and refuse marginal-profit placements
  on nearly-full ones), or any callable scoring (node view, demand);
- on **node death** every subscriber whose primary died is promoted to
  a backup whose capacity was reserved in advance — because backup
  reservations are summed per node (never statistically shared across
  primaries), the promotion can never overcommit the backup, so a
  single node death breaks **zero** guarantees when ``k >= 1``.

The scheduler consults :meth:`PlacementEngine.allowed_nodes` per
dispatch; with the policy off the engine is absent and dispatch is
unrestricted — fixed-seed paper runs are untouched (golden digest).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.config import (
    PLACEMENT_OFF,
    PLACEMENT_PROFIT,
    PLACEMENT_PROMOTE_FIRST,
    PLACEMENT_PROMOTE_LEAST_LOADED,
    PLACEMENT_UTILIZATION,
)
from repro.core.grps import GENERIC_REQUEST, ResourceVector
from repro.core.subscriber import Subscriber
from repro.telemetry.registry import get_registry

__all__ = [
    "PLACEMENT_OFF",
    "PLACEMENT_UTILIZATION",
    "PLACEMENT_PROFIT",
    "PLACEMENT_PROMOTE_FIRST",
    "PLACEMENT_PROMOTE_LEAST_LOADED",
    "PlacementEngine",
    "PlacementStats",
    "NodeView",
    "Embedding",
    "DeathReport",
    "utilization_objective",
    "profit_objective",
]

#: The profit objective refuses placements that would push a node's
#: dominant utilization past this fraction — the "marginal revenue no
#: longer covers marginal congestion cost" cutoff, simplified to a
#: threshold.
PROFIT_MAX_UTILIZATION = 0.90

#: Feasibility slack for float comparisons against capacity.
_EPSILON = 1e-9


@dataclass(frozen=True)
class NodeView:
    """Read-only node state handed to placement objectives."""

    rpn_id: str
    capacity: ResourceVector
    #: Primary demand plus summed backup reservations.
    committed: ResourceVector

    def utilization(self) -> float:
        """Dominant-component committed fraction of capacity."""
        return self.committed.dominant_fraction_of(self.capacity)

    def utilization_with(self, demand: ResourceVector) -> float:
        """Dominant utilization if ``demand`` were added."""
        return (self.committed + demand).dominant_fraction_of(self.capacity)


#: Scores one candidate node for one demand: higher wins; ``None``
#: rejects the candidate outright (admission control).
Objective = Callable[[NodeView, float], Optional[float]]


def utilization_objective(view: NodeView, demand_grps: float) -> Optional[float]:
    """Best-fit packing: prefer the node the placement fills the most."""
    return view.utilization()


def profit_objective(view: NodeView, demand_grps: float) -> Optional[float]:
    """Profit-driven spread: revenue weighted by remaining headroom.

    Refuses candidates already past :data:`PROFIT_MAX_UTILIZATION` —
    the marginal congestion cost of a nearly-full node exceeds the
    marginal revenue of one more reservation.
    """
    utilization = view.utilization()
    if utilization > PROFIT_MAX_UTILIZATION:
        return None
    return demand_grps * (1.0 - utilization)


_OBJECTIVES: Dict[str, Objective] = {
    PLACEMENT_UTILIZATION: utilization_objective,
    PLACEMENT_PROFIT: profit_objective,
}


@dataclass
class _Node:
    """Mutable per-RPN embedding state."""

    rpn_id: str
    capacity: ResourceVector
    up: bool = True
    #: Demand of subscribers whose primary is this node.
    primary_used: ResourceVector = field(
        default_factory=lambda: ResourceVector.ZERO
    )
    #: primary rpn_id → summed demand of subscribers backed up here
    #: whose primary is that node.  Backup reservation is the *sum* of
    #: the values: conservative, but what makes promotion overflow-free.
    backup_by_primary: Dict[str, ResourceVector] = field(default_factory=dict)
    #: Running sum of ``backup_by_primary`` values.  ``fits``/``view``
    #: run once per candidate node per admission, so recomputing the sum
    #: there would make every placement O(primaries backed up per node);
    #: mutate the map only through ``add_backup``/``drop_backup``.
    _backup_total: ResourceVector = field(
        default_factory=lambda: ResourceVector.ZERO
    )

    def backup_reserved(self) -> ResourceVector:
        return self._backup_total

    def add_backup(self, primary: str, demand: ResourceVector) -> None:
        self.backup_by_primary[primary] = (
            self.backup_by_primary.get(primary, ResourceVector.ZERO) + demand
        )
        self._backup_total = self._backup_total + demand

    def drop_backup(self, primary: str, demand: ResourceVector) -> None:
        current = self.backup_by_primary.get(primary)
        if current is None:
            return
        remaining = (current - demand).clamped_min(0.0)
        removed = current - remaining
        self._backup_total = (self._backup_total - removed).clamped_min(0.0)
        if (
            remaining.cpu_s <= _EPSILON
            and remaining.disk_s <= _EPSILON
            and remaining.net_bytes <= _EPSILON
        ):
            del self.backup_by_primary[primary]
        else:
            self.backup_by_primary[primary] = remaining
        if not self.backup_by_primary:
            # Pin the running total back to exact zero so float drift
            # from repeated add/subtract cannot accumulate across churn.
            self._backup_total = ResourceVector.ZERO

    def clear_backups(self) -> None:
        self.backup_by_primary.clear()
        self._backup_total = ResourceVector.ZERO

    def committed(self) -> ResourceVector:
        return self.primary_used + self._backup_total

    def view(self) -> NodeView:
        return NodeView(self.rpn_id, self.capacity, self.committed())

    def fits(self, extra: ResourceVector) -> bool:
        after = self.committed() + extra
        cap = self.capacity
        return (
            after.cpu_s <= cap.cpu_s + _EPSILON
            and after.disk_s <= cap.disk_s + _EPSILON
            and after.net_bytes <= cap.net_bytes + _EPSILON
        )


@dataclass
class Embedding:
    """Where one subscriber's reservation lives."""

    name: str
    demand: ResourceVector
    demand_grps: float
    primary: str
    backups: List[str]


@dataclass
class PlacementStats:
    """Admission and survivability counters."""

    offered: int = 0
    accepted: int = 0
    rejected: int = 0
    released: int = 0
    #: Primaries promoted to a pre-reserved backup after a node death.
    promoted: int = 0
    #: Guarantee violations: a primary died with no live backup.
    violations: int = 0
    #: Embeddings left short of k backups after a death (best-effort
    #: re-reservation failed) — degraded resilience, not a violation.
    degraded: int = 0
    #: Replacement backups successfully re-reserved after a death.
    reembedded: int = 0

    def acceptance_ratio(self) -> float:
        return self.accepted / self.offered if self.offered else 1.0


@dataclass
class DeathReport:
    """What :meth:`PlacementEngine.on_node_death` did."""

    promoted: List[str] = field(default_factory=list)
    violated: List[str] = field(default_factory=list)
    degraded: List[str] = field(default_factory=list)


class PlacementEngine:
    """Online embedding with admission control and k-resilient backups."""

    def __init__(
        self,
        k_backup: int = 1,
        objective: str = PLACEMENT_UTILIZATION,
        generic: ResourceVector = GENERIC_REQUEST,
        custom_objective: Optional[Objective] = None,
        promote_policy: str = PLACEMENT_PROMOTE_LEAST_LOADED,
    ) -> None:
        if k_backup < 0:
            raise ValueError("k_backup must be non-negative")
        if custom_objective is None and objective not in _OBJECTIVES:
            raise ValueError("unknown placement objective: {!r}".format(objective))
        if promote_policy not in (
            PLACEMENT_PROMOTE_LEAST_LOADED,
            PLACEMENT_PROMOTE_FIRST,
        ):
            raise ValueError(
                "unknown promote policy: {!r}".format(promote_policy)
            )
        self.promote_policy = promote_policy
        self.k_backup = k_backup
        self.objective_name = objective if custom_objective is None else "custom"
        self._objective: Objective = (
            custom_objective if custom_objective is not None else _OBJECTIVES[objective]
        )
        self._generic = generic
        #: rpn_id → node state, in registration order.
        self._nodes: Dict[str, _Node] = {}
        self._embeddings: Dict[str, Embedding] = {}
        #: name → frozen allowed-node set (the primary); empty set for
        #: known-but-unhosted subscribers (rejected/awaiting capacity).
        self._hosts: Dict[str, FrozenSet[str]] = {}
        self.stats = PlacementStats()
        registry = get_registry()
        self._tm_accepted = registry.counter("repro.core.placement_accepted")
        self._tm_rejected = registry.counter("repro.core.placement_rejected")
        self._tm_violations = registry.counter("repro.core.placement_violations")
        self._tm_promoted = registry.counter("repro.core.placement_promoted")

    def __len__(self) -> int:
        return len(self._embeddings)

    def __repr__(self) -> str:
        return "<PlacementEngine {} embedded on {} nodes (k={}, {})>".format(
            len(self._embeddings), len(self._nodes), self.k_backup, self.objective_name
        )

    # -- topology -----------------------------------------------------------

    def add_node(self, rpn_id: str, capacity_per_s: ResourceVector) -> None:
        """Admit one RPN's capacity into the embedding substrate."""
        node = self._nodes.get(rpn_id)
        if node is not None:
            node.capacity = capacity_per_s
            node.up = True
            return
        self._nodes[rpn_id] = _Node(rpn_id, capacity_per_s)

    def node_view(self, rpn_id: str) -> Optional[NodeView]:
        node = self._nodes.get(rpn_id)
        return None if node is None else node.view()

    # -- admission (online embedding) ---------------------------------------

    def place(self, subscriber: Subscriber) -> bool:
        """Embed one subscriber; False = rejected (admission control).

        The primary must fit the demand on top of everything already
        committed (primaries + backup reservations); each of the ``k``
        backups must fit it as a *reservation*.  Nothing is committed
        unless the whole embedding is feasible — accept/reject is
        atomic.
        """
        self.stats.offered += 1
        name = subscriber.name
        if name in self._embeddings:
            raise RuntimeError("subscriber {!r} already placed".format(name))
        demand = subscriber.reservation_vector(self._generic)
        primary = self._choose_primary(demand, subscriber.reservation_grps)
        if primary is None:
            return self._reject(name)
        backups = self._choose_backups(primary, demand, self.k_backup)
        if backups is None:
            return self._reject(name)
        # Commit.
        primary_node = self._nodes[primary]
        primary_node.primary_used = primary_node.primary_used + demand
        for backup in backups:
            self._nodes[backup].add_backup(primary, demand)
        self._embeddings[name] = Embedding(
            name, demand, subscriber.reservation_grps, primary, list(backups)
        )
        self._hosts[name] = frozenset((primary,))
        self.stats.accepted += 1
        self._tm_accepted.inc()
        return True

    def _reject(self, name: str) -> bool:
        self._hosts[name] = frozenset()
        self.stats.rejected += 1
        self._tm_rejected.inc()
        return False

    def _choose_primary(
        self, demand: ResourceVector, demand_grps: float
    ) -> Optional[str]:
        best: Optional[str] = None
        best_score = 0.0
        for node in self._nodes.values():
            if not node.up or not node.fits(demand):
                continue
            view = NodeView(node.rpn_id, node.capacity, node.committed() + demand)
            score = self._objective(view, demand_grps)
            if score is None:
                continue
            if best is None or score > best_score:
                best = node.rpn_id
                best_score = score
        return best

    def _choose_backups(
        self, primary: str, demand: ResourceVector, k: int
    ) -> Optional[List[str]]:
        """Pick ``k`` distinct backup nodes that can reserve ``demand``.

        Preference: least-utilized first, so backup reservations spread
        and survive node deaths elsewhere.  Returns None when fewer than
        ``k`` feasible backups exist (the embedding is rejected).
        """
        chosen: List[str] = []
        if k == 0:
            return chosen
        candidates: List[Tuple[float, int, str]] = []
        for index, node in enumerate(self._nodes.values()):
            if not node.up or node.rpn_id == primary:
                continue
            if not node.fits(demand):
                continue
            candidates.append((node.view().utilization(), index, node.rpn_id))
        candidates.sort()
        for _, _, rpn_id in candidates:
            chosen.append(rpn_id)
            if len(chosen) == k:
                return chosen
        return None

    # -- release (churn) ----------------------------------------------------

    def release(self, name: str) -> bool:
        """Free a departing subscriber's primary demand and reservations."""
        self._hosts.pop(name, None)
        embedding = self._embeddings.pop(name, None)
        if embedding is None:
            return False
        node = self._nodes.get(embedding.primary)
        if node is not None:
            node.primary_used = (node.primary_used - embedding.demand).clamped_min(0.0)
        for backup in embedding.backups:
            self._drop_backup(backup, embedding.primary, embedding.demand)
        self.stats.released += 1
        return True

    def _drop_backup(
        self, backup: str, primary: str, demand: ResourceVector
    ) -> None:
        node = self._nodes.get(backup)
        if node is not None:
            node.drop_backup(primary, demand)

    # -- dispatch restriction ------------------------------------------------

    def allowed_nodes(self, name: str) -> Optional[FrozenSet[str]]:
        """The RPNs a subscriber may be dispatched to.

        The frozen primary singleton for a placed subscriber; the empty
        set for a known-but-unhosted one (rejected, or awaiting
        capacity) — its requests stay queued; ``None`` for a name this
        engine has never seen (unrestricted, so an engine can be wired
        in front of subscribers it does not manage).
        """
        return self._hosts.get(name)

    # -- failure handling ----------------------------------------------------

    def on_node_death(self, rpn_id: str) -> DeathReport:
        """Promote every affected subscriber to a pre-reserved backup.

        For each embedding whose primary died, the first live backup
        becomes the new primary; the capacity was already *reserved*
        there (summed, never shared), so the promotion cannot overcommit
        — with ``k >= 1`` and a single death there are zero guarantee
        violations, which a test pins.  Afterwards a replacement backup
        is re-reserved best-effort (failure = degraded, counted, not a
        violation).  Embeddings that merely *backed up* on the dead node
        also re-reserve elsewhere best-effort.
        """
        report = DeathReport()
        node = self._nodes.get(rpn_id)
        if node is None:
            return report
        node.up = False
        for embedding in list(self._embeddings.values()):
            if embedding.primary == rpn_id:
                self._promote(embedding, report)
            elif rpn_id in embedding.backups:
                embedding.backups.remove(rpn_id)
                self._replenish_backups(embedding, report)
        # The dead node's own state is void: its primaries were promoted
        # away and its reservations protect nobody while it is down.
        node.primary_used = ResourceVector.ZERO
        node.clear_backups()
        return report

    def _promote(self, embedding: Embedding, report: DeathReport) -> None:
        dead = embedding.primary
        new_primary = self._pick_promotion(embedding, dead)
        if new_primary is None:
            # No live backup: the guarantee is broken until re-admission.
            self.stats.violations += 1
            self._tm_violations.inc()
            report.violated.append(embedding.name)
            del self._embeddings[embedding.name]
            self._hosts[embedding.name] = frozenset()
            return
        primary_node = self._nodes[new_primary]
        primary_node.primary_used = primary_node.primary_used + embedding.demand
        embedding.primary = new_primary
        self._hosts[embedding.name] = frozenset((new_primary,))
        self.stats.promoted += 1
        self._tm_promoted.inc()
        report.promoted.append(embedding.name)
        self._replenish_backups(embedding, report)

    def _pick_promotion(self, embedding: Embedding, dead: str) -> Optional[str]:
        """Choose (and claim) the backup to promote; ``None`` = violation.

        The chosen backup's reservation (keyed by the dead primary) is
        dropped — its capacity converts into primary use in ``_promote``
        — as are the reservations of any dead backups encountered, whose
        reserved capacity protects nobody.

        ``least_loaded`` scans every live backup and promotes the one
        with the lowest committed utilization (ties keep backup-list
        order), so repeated deaths re-balance instead of piling onto
        whichever backup was reserved first; ``first`` reproduces the
        historic first-live-backup scan exactly.
        """
        if self.promote_policy == PLACEMENT_PROMOTE_FIRST:
            while embedding.backups:
                candidate = embedding.backups.pop(0)
                candidate_node = self._nodes.get(candidate)
                self._drop_backup(candidate, dead, embedding.demand)
                if candidate_node is not None and candidate_node.up:
                    return candidate
            return None
        best: Optional[str] = None
        best_utilization = 0.0
        for candidate in embedding.backups:
            node = self._nodes.get(candidate)
            if node is None or not node.up:
                continue
            utilization = node.view().utilization()
            if best is None or utilization < best_utilization:
                best = candidate
                best_utilization = utilization
        if best is None:
            # No live backup: every reservation in the list is moot.
            for candidate in embedding.backups:
                self._drop_backup(candidate, dead, embedding.demand)
            embedding.backups.clear()
            return None
        embedding.backups.remove(best)
        self._drop_backup(best, dead, embedding.demand)
        for candidate in list(embedding.backups):
            node = self._nodes.get(candidate)
            if node is None or not node.up:
                embedding.backups.remove(candidate)
                self._drop_backup(candidate, dead, embedding.demand)
                continue
            # Re-key the surviving reservation under the incoming
            # primary, so a future death of *that* primary finds and
            # releases it (the totals are unchanged).
            node.drop_backup(dead, embedding.demand)
            node.add_backup(best, embedding.demand)
        return best

    def _replenish_backups(self, embedding: Embedding, report: DeathReport) -> None:
        """Re-reserve replacement backups up to ``k``, best-effort."""
        missing = self.k_backup - len(embedding.backups)
        while missing > 0:
            candidate = self._pick_replacement(embedding)
            if candidate is None:
                self.stats.degraded += 1
                report.degraded.append(embedding.name)
                return
            self._nodes[candidate].add_backup(embedding.primary, embedding.demand)
            embedding.backups.append(candidate)
            self.stats.reembedded += 1
            missing -= 1

    def _pick_replacement(self, embedding: Embedding) -> Optional[str]:
        best: Optional[str] = None
        best_utilization = 0.0
        taken = set(embedding.backups)
        taken.add(embedding.primary)
        for node in self._nodes.values():
            if not node.up or node.rpn_id in taken:
                continue
            if not node.fits(embedding.demand):
                continue
            utilization = node.view().utilization()
            if best is None or utilization < best_utilization:
                best = node.rpn_id
                best_utilization = utilization
        return best

    def on_node_recovery(self, rpn_id: str) -> None:
        """Re-admit a recovered node as empty capacity."""
        node = self._nodes.get(rpn_id)
        if node is not None:
            node.up = True

    # -- introspection -------------------------------------------------------

    def embedding_of(self, name: str) -> Optional[Embedding]:
        return self._embeddings.get(name)

    def committed_fraction(self) -> float:
        """Cluster-wide dominant committed fraction (primaries+backups)."""
        total_capacity = ResourceVector.ZERO
        total_committed = ResourceVector.ZERO
        for node in self._nodes.values():
            if not node.up:
                continue
            total_capacity = total_capacity + node.capacity
            total_committed = total_committed + node.committed()
        if total_capacity == ResourceVector.ZERO:
            return 0.0
        return total_committed.dominant_fraction_of(total_capacity)
