"""Re-export of the GRPS currency from :mod:`repro.resources`.

Kept so the paper-facing import path ``repro.core.grps`` matches the
DESIGN.md module map; the implementation lives at the package root to
keep the cluster substrate free of dependencies on the Gage core.
"""

from repro.resources import GENERIC_REQUEST, ResourceVector, grps

__all__ = ["GENERIC_REQUEST", "ResourceVector", "grps"]
