"""Experiment metrics: service rates, deviation from reservation, and
failure/recovery event accounting.

The deviation metric reproduces §4.1 / Figure 3: "we measure the deviation
of resource usage by each subscriber from its reservation over different
time intervals, and then compute an overall average among all
subscribers."

:class:`FailureLog` is the availability-side ledger: every detector and
recovery transition (node suspected dead, node re-admitted, requests
re-enqueued, backend ejected/probed back in) is recorded as a timestamped
event, so experiments can measure time-to-detect and time-to-restore
rather than just end-of-run aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.resources import GENERIC_REQUEST, ResourceVector


@dataclass
class ServiceReport:
    """Input/served/dropped rates for one subscriber over one run."""

    subscriber: str
    reservation_grps: float
    duration_s: float
    arrived: int
    served: int
    dropped: int

    @property
    def input_rate(self) -> float:
        """Offered load in requests/second."""
        return self.arrived / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def served_rate(self) -> float:
        """Delivered throughput in requests/second."""
        return self.served / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def dropped_rate(self) -> float:
        """Drop rate in requests/second."""
        return self.dropped / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def spare_rate(self) -> float:
        """Throughput delivered beyond the reservation (Table 2's column)."""
        return max(0.0, self.served_rate - self.reservation_grps)

    def row(self) -> Tuple[str, float, float, float, float]:
        """(subscriber, reservation, input, served, dropped) — Table 1 shape."""
        return (
            self.subscriber,
            self.reservation_grps,
            self.input_rate,
            self.served_rate,
            self.dropped_rate,
        )


@dataclass
class DeviationReport:
    """Deviation-from-reservation, per averaging interval (Figure 3)."""

    accounting_cycle_s: float
    #: interval seconds → mean |usage-rate − reservation| / reservation, %.
    by_interval: Dict[float, float] = field(default_factory=dict)

    def series(self) -> List[Tuple[float, float]]:
        """(interval, deviation %) pairs sorted by interval."""
        return sorted(self.by_interval.items())


#: Event kinds recorded by the RDN's failure detector.
NODE_DOWN = "node_down"
NODE_UP = "node_up"
REQUESTS_REQUEUED = "requests_requeued"
CONNECTIONS_RESET = "connections_reset"
DELEGATE_TIMEOUT = "delegate_timeout"
SECONDARY_DOWN = "secondary_down"
SECONDARY_UP = "secondary_up"
#: Event kinds recorded by the real-socket proxy's health layer.
BACKEND_EJECTED = "backend_ejected"
BACKEND_READMITTED = "backend_readmitted"
REQUEST_SHED = "request_shed"


@dataclass(frozen=True)
class FailureEvent:
    """One failure-handling transition."""

    at_s: float
    kind: str
    target: str
    #: Kind-specific magnitude (e.g. how many requests were re-enqueued).
    detail: float = 0.0


class FailureLog:
    """Timestamped ledger of failure detection and recovery transitions."""

    def __init__(self) -> None:
        self.events: List[FailureEvent] = []
        self._counts: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return "<FailureLog events={} kinds={}>".format(
            len(self.events), sorted(self._counts)
        )

    def record(self, at_s: float, kind: str, target: str, detail: float = 0.0) -> None:
        """Append one transition."""
        self.events.append(FailureEvent(at_s, kind, target, detail))
        self._counts[kind] = self._counts.get(kind, 0) + 1

    def count(self, kind: str) -> int:
        """How many events of ``kind`` were recorded."""
        return self._counts.get(kind, 0)

    def events_of(self, kind: str, target: Optional[str] = None) -> List[FailureEvent]:
        """All events of ``kind`` (optionally for one target), in order."""
        return [
            event
            for event in self.events
            if event.kind == kind and (target is None or event.target == target)
        ]

    def first(self, kind: str, target: Optional[str] = None) -> Optional[FailureEvent]:
        """The earliest event of ``kind``, or None."""
        matches = self.events_of(kind, target)
        return matches[0] if matches else None

    def detection_latency_s(self, failed_at_s: float, target: str) -> Optional[float]:
        """Seconds from an injected failure to the detector marking
        ``target`` down — the time-to-detect metric of the recovery
        benchmarks.  None if the failure was never detected."""
        for event in self.events:
            if event.kind == NODE_DOWN and event.target == target and event.at_s >= failed_at_s:
                return event.at_s - failed_at_s
        return None


def windowed_rates(
    events: Sequence[Tuple[float, float]],
    start_s: float,
    end_s: float,
    interval_s: float,
) -> List[float]:
    """Partition weighted events into windows; return per-window rates.

    ``events`` are (time, weight) pairs; the rate of a window is the sum
    of weights inside it divided by the interval.  Only complete windows
    are counted.
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    window_count = int(math.floor((end_s - start_s) / interval_s))
    if window_count <= 0:
        return []
    sums = [0.0] * window_count
    for at, weight in events:
        if at < start_s or at >= start_s + window_count * interval_s:
            continue
        sums[int((at - start_s) / interval_s)] += weight
    return [total / interval_s for total in sums]


def windowed_usage_rates(
    events: Sequence[Tuple[float, ResourceVector]],
    start_s: float,
    end_s: float,
    interval_s: float,
    generic: ResourceVector = GENERIC_REQUEST,
) -> List[float]:
    """Per-window GRPS rates from (time, usage-vector) events.

    The vectors inside each window are summed *before* conversion to
    generic requests.  Converting per event and summing would overcount:
    the max-norm is not additive, so a request whose CPU lands in one
    accounting cycle and whose bytes land in the next would count more
    than once.
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    window_count = int(math.floor((end_s - start_s) / interval_s))
    if window_count <= 0:
        return []
    sums = [ResourceVector.ZERO] * window_count
    for at, usage in events:
        if at < start_s or at >= start_s + window_count * interval_s:
            continue
        index = int((at - start_s) / interval_s)
        sums[index] = sums[index] + usage
    return [
        total.scaled(1.0 / interval_s).in_generic_requests(generic)
        for total in sums
    ]


def deviation_from_reservation_vectors(
    events_by_subscriber: Dict[str, Sequence[Tuple[float, ResourceVector]]],
    reservations: Dict[str, float],
    start_s: float,
    end_s: float,
    interval_s: float,
    generic: ResourceVector = GENERIC_REQUEST,
) -> float:
    """Like :func:`deviation_from_reservation`, over usage vectors.

    This is the form the Figure 3 experiments use: the events are the
    per-cycle usage vectors the RDN receives in accounting messages.
    """
    per_subscriber: List[float] = []
    for name, events in events_by_subscriber.items():
        reservation = reservations.get(name, 0.0)
        if reservation <= 0:
            continue
        rates = windowed_usage_rates(events, start_s, end_s, interval_s, generic)
        if not rates:
            continue
        deviations = [abs(rate - reservation) / reservation for rate in rates]
        per_subscriber.append(sum(deviations) / len(deviations))
    if not per_subscriber:
        return 0.0
    return 100.0 * sum(per_subscriber) / len(per_subscriber)


def deviation_from_reservation(
    events_by_subscriber: Dict[str, Sequence[Tuple[float, float]]],
    reservations: Dict[str, float],
    start_s: float,
    end_s: float,
    interval_s: float,
) -> float:
    """Mean percentage deviation of usage rate from reservation.

    For each subscriber the usage events (time, GRPS-equivalents) are
    windowed at ``interval_s``; each window contributes
    ``|rate − reservation| / reservation``; windows and then subscribers
    are averaged.  Returns a percentage.
    """
    per_subscriber: List[float] = []
    for name, events in events_by_subscriber.items():
        reservation = reservations.get(name, 0.0)
        if reservation <= 0:
            continue
        rates = windowed_rates(events, start_s, end_s, interval_s)
        if not rates:
            continue
        deviations = [abs(rate - reservation) / reservation for rate in rates]
        per_subscriber.append(sum(deviations) / len(deviations))
    if not per_subscriber:
        return 0.0
    return 100.0 * sum(per_subscriber) / len(per_subscriber)
