"""Per-subscriber request queues (§3.3-3.4).

"Each customer ... is allocated a per-subscriber request queue. ...
Requests within a queue are serviced in a FIFO order."  Queues are
bounded; when a queue is full, newly arriving requests are dropped —
this is where Table 1's "Dropped" column comes from.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional

from repro.core.subscriber import Subscriber
from repro.telemetry.registry import get_registry


class RequestQueue:
    """The FIFO queue of one subscriber's pending requests."""

    def __init__(self, subscriber: Subscriber) -> None:
        self.subscriber = subscriber
        self._items: Deque[object] = deque()
        self.arrived = 0
        self.dropped = 0
        self.dispatched = 0
        self.requeued = 0
        registry = get_registry()
        self._occupancy = registry.gauge(
            "repro.core.queue_occupancy", subscriber=subscriber.name
        )
        self._drop_counter = registry.counter(
            "repro.core.queue_drops", subscriber=subscriber.name
        )
        self._arrival_counter = registry.counter(
            "repro.core.queue_arrivals", subscriber=subscriber.name
        )

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return "<RequestQueue {} len={} dropped={}>".format(
            self.subscriber.name, len(self._items), self.dropped
        )

    @property
    def backlogged(self) -> bool:
        """True if at least one request is waiting."""
        return bool(self._items)

    def offer(self, request: object) -> bool:
        """Enqueue a request; False (and a drop) if the queue is full.

        The bound is the subscriber's *effective* capacity, which folds
        in any delay-bounded admission target.
        """
        self.arrived += 1
        self._arrival_counter.inc()
        if len(self._items) >= self.subscriber.effective_queue_capacity:
            self.dropped += 1
            self._drop_counter.inc()
            return False
        self._items.append(request)
        self._occupancy.set(len(self._items))
        return True

    def requeue(self, request: object) -> None:
        """Return a dispatched-but-unserviced request to the queue head.

        Used by node-failure recovery: the request was already admitted
        (and counted) once, so it bypasses the admission bound and does
        not increment ``arrived`` — dropping it here would turn a
        back-end crash into a silent QoS violation.
        """
        self.requeued += 1
        self._items.appendleft(request)
        self._occupancy.set(len(self._items))

    def peek(self) -> Optional[object]:
        """The request at the head, without removing it."""
        return self._items[0] if self._items else None

    def take(self) -> object:
        """Remove and return the head request."""
        if not self._items:
            raise IndexError("queue {} is empty".format(self.subscriber.name))
        self.dispatched += 1
        item = self._items.popleft()
        self._occupancy.set(len(self._items))
        return item


class SubscriberQueues:
    """The RDN's collection of per-subscriber queues, in visit order.

    ``partition`` names the subscribers this instance is responsible
    for; registering a subscriber outside it raises.  ``None`` (the
    default) is the unpartitioned single-instance control plane.  A
    sharded control plane (:mod:`repro.core.shard`) runs one instance
    per partition.
    """

    def __init__(self, partition: Optional[Iterable[str]] = None) -> None:
        self._queues: Dict[str, RequestQueue] = {}
        self.partition: Optional[frozenset] = (
            None if partition is None else frozenset(partition)
        )

    def __len__(self) -> int:
        return len(self._queues)

    def __iter__(self) -> Iterator[RequestQueue]:
        return iter(self._queues.values())

    def __contains__(self, name: str) -> bool:
        return name in self._queues

    def register(self, subscriber: Subscriber) -> RequestQueue:
        """Allocate the queue for a new subscriber."""
        if subscriber.name in self._queues:
            raise RuntimeError("subscriber {!r} already registered".format(subscriber.name))
        if self.partition is not None and subscriber.name not in self.partition:
            raise ValueError(
                "subscriber {!r} outside this queue partition".format(subscriber.name)
            )
        queue = RequestQueue(subscriber)
        self._queues[subscriber.name] = queue
        return queue

    def get(self, name: str) -> Optional[RequestQueue]:
        """The queue for ``name``, or None."""
        return self._queues.get(name)

    def backlogged(self) -> List[RequestQueue]:
        """Queues with at least one pending request, in visit order."""
        return [queue for queue in self._queues.values() if queue.backlogged]

    def subscribers(self) -> List[Subscriber]:
        """All registered subscribers, in registration order."""
        return [queue.subscriber for queue in self._queues.values()]
