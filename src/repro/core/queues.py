"""Per-subscriber request queues (§3.3-3.4).

"Each customer ... is allocated a per-subscriber request queue. ...
Requests within a queue are serviced in a FIFO order."  Queues are
bounded; when a queue is full, newly arriving requests are dropped —
this is where Table 1's "Dropped" column comes from.

Scale notes: queues are stored in a flat list indexed by the interned
subscriber id (:class:`~repro.core.subscriber.SubscriberTable`), and the
collection tracks two id sets the scheduler needs to stay O(active):

- the **backlogged set** — ids of queues holding at least one request,
  maintained on empty↔non-empty transitions so the spare pass never
  scans idle queues;
- the **activity set** — ids touched by an ``offer``/``requeue`` since
  the scheduler last drained it, so a settled (idle, fully-refilled)
  subscriber re-enters the scheduling walk the cycle it gets traffic.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Callable, Deque, Dict, Iterable, Iterator, List, Optional, Set

from repro.core.subscriber import Subscriber, SubscriberTable
from repro.telemetry.registry import get_registry


class RequestQueue:
    """The FIFO queue of one subscriber's pending requests."""

    def __init__(self, subscriber: Subscriber) -> None:
        self.subscriber = subscriber
        #: Dense interned id; -1 until registered with SubscriberQueues.
        self.sid = -1
        #: The owning collection, for backlog/activity bookkeeping.
        self._owner: Optional["SubscriberQueues"] = None
        self._items: Deque[object] = deque()
        self.arrived = 0
        self.dropped = 0
        self.dispatched = 0
        self.requeued = 0
        registry = get_registry()
        self._occupancy = registry.gauge(
            "repro.core.queue_occupancy", subscriber=subscriber.name
        )
        self._drop_counter = registry.counter(
            "repro.core.queue_drops", subscriber=subscriber.name
        )
        self._arrival_counter = registry.counter(
            "repro.core.queue_arrivals", subscriber=subscriber.name
        )

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return "<RequestQueue {} len={} dropped={}>".format(
            self.subscriber.name, len(self._items), self.dropped
        )

    @property
    def backlogged(self) -> bool:
        """True if at least one request is waiting."""
        return bool(self._items)

    def offer(self, request: object) -> bool:
        """Enqueue a request; False (and a drop) if the queue is full.

        The bound is the subscriber's *effective* capacity, which folds
        in any delay-bounded admission target.
        """
        self.arrived += 1
        self._arrival_counter.inc()
        if len(self._items) >= self.subscriber.effective_queue_capacity:
            self.dropped += 1
            self._drop_counter.inc()
            return False
        self._items.append(request)
        self._occupancy.set(len(self._items))
        if self._owner is not None:
            self._owner.note_enqueue(self.sid)
        return True

    def requeue(self, request: object) -> None:
        """Return a dispatched-but-unserviced request to the queue head.

        Used by node-failure recovery: the request was already admitted
        (and counted) once, so it bypasses the admission bound and does
        not increment ``arrived`` — dropping it here would turn a
        back-end crash into a silent QoS violation.
        """
        self.requeued += 1
        self._items.appendleft(request)
        self._occupancy.set(len(self._items))
        if self._owner is not None:
            self._owner.note_enqueue(self.sid)

    def peek(self) -> Optional[object]:
        """The request at the head, without removing it."""
        return self._items[0] if self._items else None

    def take(self) -> object:
        """Remove and return the head request."""
        if not self._items:
            raise IndexError("queue {} is empty".format(self.subscriber.name))
        self.dispatched += 1
        item = self._items.popleft()
        self._occupancy.set(len(self._items))
        if not self._items and self._owner is not None:
            self._owner.note_emptied(self.sid)
        return item

    def clear(self) -> List[object]:
        """Drop every queued request (deregistration); returns them."""
        items = list(self._items)
        self._items.clear()
        self._occupancy.set(0)
        if items and self._owner is not None:
            self._owner.note_emptied(self.sid)
        return items


class SubscriberQueues:
    """The RDN's collection of per-subscriber queues, in visit order.

    ``partition`` names the subscribers this instance is responsible
    for; registering a subscriber outside it raises.  ``None`` (the
    default) is the unpartitioned single-instance control plane.  A
    sharded control plane (:mod:`repro.core.shard`) runs one instance
    per partition.

    ``table`` is the shared :class:`SubscriberTable`; passing the same
    instance to the accounting and the classifier gives every component
    the same dense id for a name.  When omitted the collection owns a
    private table (and releases ids on :meth:`unregister` itself).
    """

    def __init__(
        self,
        partition: Optional[Iterable[str]] = None,
        table: Optional[SubscriberTable] = None,
    ) -> None:
        self._queues: Dict[str, RequestQueue] = {}
        self._owns_table = table is None
        self.table = table if table is not None else SubscriberTable()
        #: id → queue; None marks an unregistered (or foreign-id) slot.
        self._by_id: List[Optional[RequestQueue]] = []
        #: Live ids in ascending order (== registration order sans churn).
        self._sorted_ids: List[int] = []
        #: Ids of queues with at least one pending request.
        self._backlogged_ids: Set[int] = set()
        #: Ids touched by offer/requeue since the last drain_activity().
        self._activity: Set[int] = set()
        #: Registration hooks: called as fn(queue) after (un)register.
        self.on_register: List[Callable[[RequestQueue], None]] = []
        self.on_unregister: List[Callable[[RequestQueue], None]] = []
        self.partition: Optional[Set[str]] = (
            None if partition is None else set(partition)
        )

    def __len__(self) -> int:
        return len(self._queues)

    def __iter__(self) -> Iterator[RequestQueue]:
        """Queues in visit (ascending-id) order."""
        by_id = self._by_id
        for sid in self._sorted_ids:
            queue = by_id[sid]
            if queue is not None:
                yield queue

    def __contains__(self, name: str) -> bool:
        return name in self._queues

    def register(self, subscriber: Subscriber) -> RequestQueue:
        """Allocate the queue for a new subscriber."""
        if subscriber.name in self._queues:
            raise RuntimeError("subscriber {!r} already registered".format(subscriber.name))
        if self.partition is not None and subscriber.name not in self.partition:
            raise ValueError(
                "subscriber {!r} outside this queue partition".format(subscriber.name)
            )
        queue = RequestQueue(subscriber)
        sid = self.table.intern(subscriber.name)
        queue.sid = sid
        queue._owner = self
        self._queues[subscriber.name] = queue
        while len(self._by_id) <= sid:
            self._by_id.append(None)
        self._by_id[sid] = queue
        self._insort_id(sid)
        self._activity.add(sid)
        for hook in self.on_register:
            hook(queue)
        return queue

    def unregister(self, name: str) -> Optional[RequestQueue]:
        """Remove a subscriber's queue (churn); pending requests are dropped.

        Returns the removed queue (its dropped requests are retrievable
        via the queue object), or None if the name was never registered.
        The interned id is released for reuse only when this collection
        owns its table; with a shared table the release belongs to the
        coordinating layer (the RDN), after every component let go.
        """
        queue = self._queues.pop(name, None)
        if queue is None:
            return None
        queue.clear()
        sid = queue.sid
        self._by_id[sid] = None
        self._remove_id(sid)
        self._backlogged_ids.discard(sid)
        self._activity.discard(sid)
        for hook in self.on_unregister:
            hook(queue)
        queue._owner = None
        if self.partition is not None:
            self.partition.discard(name)
        if self._owns_table:
            self.table.release(name)
        return queue

    def extend_partition(self, name: str) -> None:
        """Admit one more name into this instance's partition (churn)."""
        if self.partition is not None:
            self.partition.add(name)

    def get(self, name: str) -> Optional[RequestQueue]:
        """The queue for ``name``, or None."""
        return self._queues.get(name)

    def get_by_id(self, sid: int) -> Optional[RequestQueue]:
        """The queue for a dense subscriber id, or None."""
        if 0 <= sid < len(self._by_id):
            return self._by_id[sid]
        return None

    def sorted_ids(self) -> List[int]:
        """Live queue ids in visit order (ascending; do not mutate)."""
        return self._sorted_ids

    def backlogged(self) -> List[RequestQueue]:
        """Queues with at least one pending request, in visit order.

        O(backlogged log backlogged): built from the maintained backlog
        id set, never by scanning the full (possibly 10⁵-wide) table.
        """
        by_id = self._by_id
        out: List[RequestQueue] = []
        for sid in sorted(self._backlogged_ids):
            queue = by_id[sid]
            if queue is not None:
                out.append(queue)
        return out

    def subscribers(self) -> List[Subscriber]:
        """All registered subscribers, in visit order."""
        return [queue.subscriber for queue in self]

    # -- scheduler bookkeeping ---------------------------------------------

    def note_enqueue(self, sid: int) -> None:
        """A queue gained an item: mark it backlogged and active."""
        self._backlogged_ids.add(sid)
        self._activity.add(sid)

    def note_emptied(self, sid: int) -> None:
        """A queue ran empty: leave the backlogged set."""
        self._backlogged_ids.discard(sid)

    def drain_activity(self) -> List[int]:
        """Ids touched since the last drain; clears the set."""
        if not self._activity:
            return []
        out = list(self._activity)
        self._activity.clear()
        return out

    def _insort_id(self, sid: int) -> None:
        ids = self._sorted_ids
        if not ids or sid > ids[-1]:
            ids.append(sid)
            return
        bisect.insort(ids, sid)

    def _remove_id(self, sid: int) -> None:
        ids = self._sorted_ids
        index = bisect.bisect_left(ids, sid)
        if index < len(ids) and ids[index] == sid:
            del ids[index]
