"""The "which request" decision: credit-based weighted round-robin (§3.4).

Every scheduling cycle (10 ms) the scheduler visits each subscriber queue
in a cyclic fashion:

1. **Reserved pass** — the queue's balance gains one cycle's worth of its
   reservation; requests are dispatched (predicted usage deducted from the
   balance, a least-loaded RPN selected) until the balance would go
   negative in any resource dimension, the queue empties, or no RPN has
   headroom.
2. **Spare pass** — "whatever spare resource remains after the first
   round of scheduling is then distributed in a weighted fashion among
   those queues that are still not empty according to their resource
   reservations" — the policy Table 2 demonstrates ("higher reservation
   gets larger share of spare resource").

Scale notes (the million-subscriber refactor): the per-cycle walk is
**O(active)**, not O(registered).  A subscriber *settles* out of the
walk once it is idle and its refill is an exact fixed point — queue
empty, and per resource component either the balance already sits at
the hoard cap or the refill component is zero.  Skipping such a
subscriber is provably a no-op: the refill would not change the balance,
the drain would not dispatch, and the balance gauge would re-export the
same value.  It re-enters the walk ("wakes") when its queue sees an
``offer``/``requeue`` (the queues' activity set) or any non-refill
balance mutation lands (the accounting's dirty set) — feedback,
spare credit, cancellation refunds, node death, or an external by-name
account access.  Because settling requires the *exact* fixed point, the
fixed-seed dispatch/accounting stream is byte-identical to the historic
every-subscriber walk (the golden digest pins this).

The O(active) path needs queue ids and account ids to agree, i.e. the
queues and the accounting must share one
:class:`~repro.core.subscriber.SubscriberTable`.  With separate tables
(legacy wiring, many unit tests) the scheduler transparently falls back
to the historic every-subscriber walk — same decisions, original cost.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.accounting import RDNAccounting, SubscriberAccount
from repro.core.config import (
    SPARE_NONE,
    GageConfig,
)
from repro.core.credit import CreditLedger
from repro.core.estimator import UsageEstimator
from repro.core.grps import ResourceVector
from repro.core.node_scheduler import NodeScheduler
from repro.core.placement import PlacementEngine
from repro.core.queues import RequestQueue, SubscriberQueues
from repro.telemetry.registry import get_registry

#: Invoked for every dispatched request as (request, rpn_id, subscriber,
#: predicted) — the exact prediction charged at dispatch rides along so
#: downstream layers (hedging, retries) can refund it on cancellation.
DispatchFn = Callable[[object, str, str, ResourceVector], None]

#: Bucket bounds for the prediction-error histogram, in percent.
PREDICTION_ERROR_BUCKETS_PCT = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0]


@dataclass(frozen=True)
class ScheduleDecision:
    """One dispatch made during a scheduling cycle."""

    subscriber: str
    rpn_id: str
    predicted: ResourceVector
    spare: bool  # True if dispatched on spare (not reserved) credit


class RequestScheduler:
    """Gage's request scheduler, run once per scheduling cycle."""

    def __init__(
        self,
        config: GageConfig,
        queues: SubscriberQueues,
        accounting: RDNAccounting,
        node_scheduler: NodeScheduler,
        dispatch_fn: DispatchFn,
        ledger: Optional[CreditLedger] = None,
        partition: Optional[Iterable[str]] = None,
        placement: Optional[PlacementEngine] = None,
    ) -> None:
        self.config = config
        self.queues = queues
        self.accounting = accounting
        self.node_scheduler = node_scheduler
        self.dispatch_fn = dispatch_fn
        #: Credit vectors, spare-pool memos, and the deficit-round-robin
        #: rollover live in the (injectable) ledger so a sharded control
        #: plane can run one per partition.
        self.ledger = ledger if ledger is not None else CreditLedger(config)
        #: Optional placement layer: when present, each subscriber may
        #: only be dispatched to the RPNs its embedding allows.
        self.placement = placement
        #: The subscriber names this instance is responsible for (None =
        #: unpartitioned, the single-instance control plane).  Queues
        #: registered outside the partition are a wiring bug.
        self.partition: Optional[Set[str]] = (
            None if partition is None else set(partition)
        )
        if self.partition is not None:
            for subscriber in queues.subscribers():
                if subscriber.name not in self.partition:
                    raise ValueError(
                        "queue {!r} outside scheduler partition".format(subscriber.name)
                    )
        self._estimators: Dict[str, UsageEstimator] = {}
        #: O(active) machinery: ids scheduled next cycle.  Lazy settling
        #: needs queue ids == account ids (one shared SubscriberTable);
        #: otherwise every registered queue stays permanently active.
        self._lazy = queues.table is accounting.table
        self._active: Set[int] = set(queues.sorted_ids())
        for queue in queues:
            self.ledger.add_reservation(queue.subscriber)
        queues.on_register.append(self._on_queue_registered)
        queues.on_unregister.append(self._on_queue_unregistered)
        self.cycles = 0
        self.reserved_dispatches = 0
        self.spare_dispatches = 0
        registry = get_registry()
        self._cycle_counter = registry.counter("repro.core.wrr_cycles")
        self._reserved_counter = registry.counter(
            "repro.core.dispatches", credit="reserved"
        )
        self._spare_counter = registry.counter("repro.core.dispatches", credit="spare")
        self._spare_round_counter = registry.counter("repro.core.spare_rounds")
        #: Per-node spare GRPS absorbed, lazily created per rpn_id —
        #: makes heterogeneous spare distribution (fast nodes absorb
        #: proportionally more) observable in snapshots.
        self._spare_share_counters: Dict[str, object] = {}
        self._prediction_error = registry.histogram(
            "repro.core.prediction_error_pct", bounds=PREDICTION_ERROR_BUCKETS_PCT
        )
        self._balance_gauges: Dict[str, object] = {}

    # -- registration hooks (subscriber churn) -------------------------------

    def _on_queue_registered(self, queue: RequestQueue) -> None:
        self.ledger.add_reservation(queue.subscriber)
        self._active.add(queue.sid)
        if self.partition is not None:
            self.partition.add(queue.subscriber.name)

    def _on_queue_unregistered(self, queue: RequestQueue) -> None:
        name = queue.subscriber.name
        self.ledger.remove_reservation(name)
        self.ledger.forget_credit(name, queue.sid)
        self._active.discard(queue.sid)
        self._estimators.pop(name, None)
        self._balance_gauges.pop(name, None)
        if self.partition is not None:
            self.partition.discard(name)

    def estimator(self, name: str) -> UsageEstimator:
        """The usage estimator for one subscriber's queue.

        External access wakes the subscriber: the caller may mutate the
        estimator, which changes the refill cap a settled subscriber was
        judged against.
        """
        estimator = self._estimator(name)
        if self._lazy:
            queue = self.queues.get(name)
            if queue is not None:
                self._active.add(queue.sid)
        return estimator

    def _estimator(self, name: str) -> UsageEstimator:
        estimator = self._estimators.get(name)
        if estimator is None:
            estimator = UsageEstimator(
                policy=self.config.estimator_policy,
                alpha=self.config.estimator_alpha,
                initial=self.config.generic_request,
            )
            self._estimators[name] = estimator
        return estimator

    def active_count(self) -> int:
        """Subscribers currently in the per-cycle scheduling walk."""
        return len(self._active)

    # -- one scheduling cycle -------------------------------------------------

    def run_cycle(self) -> List[ScheduleDecision]:
        """Execute one 10-ms scheduling cycle; returns the dispatches made."""
        self.cycles += 1
        self._cycle_counter.inc()
        decisions: List[ScheduleDecision] = []
        queues = self.queues
        active = self._active

        # Wake subscribers with activity since the last cycle.
        for sid in queues.drain_activity():
            active.add(sid)
        if self._lazy:
            for sid in self.accounting.drain_dirty():
                active.add(sid)
        else:
            # Separate id spaces: no settling, walk every queue (the
            # historic behavior and cost).
            active.update(queues.sorted_ids())

        # Pass 1: reserved credit, weighted round-robin over the active
        # queues.  The visit order rotates each cycle over the *full*
        # registered order ("visits each subscriber's queue in a cyclic
        # fashion", §3.4), so no queue systematically claims node
        # headroom first; the active subset is visited in that same
        # rotated cyclic order.
        order = queues.sorted_ids()
        if order and active:
            pivot = order[self.cycles % len(order)]
            ready = sorted(active)
            split = bisect.bisect_left(ready, pivot)
            for sid in ready[split:] + ready[:split]:
                queue = queues.get_by_id(sid)
                if queue is None:
                    active.discard(sid)
                    continue
                subscriber = queue.subscriber
                name = subscriber.name
                credit, capped = self.ledger.cycle_credit_by_id(sid, subscriber)
                # The cap bounds idle-time credit hoarding, but must always
                # admit at least one predicted request or a subscriber whose
                # requests are larger than credit_cap_cycles' worth of credit
                # (heavy-tailed workloads) could never dispatch again.
                estimator = self._estimator(name)
                predicted = estimator.predict()
                cap = self.ledger.refill_cap(capped, predicted)
                account: Optional[SubscriberAccount] = None
                if self._lazy:
                    account = self.accounting.account_by_id(sid)
                if account is None:
                    account = self.accounting.account(name)
                self.accounting.refill_account(account, credit, cap)
                decisions.extend(self._drain_reserved(queue, account, estimator))
                self._note_balance(name, account)
                if self._lazy and not queue.backlogged:
                    # Settle once the refill is an exact fixed point:
                    # skipping this subscriber next cycle is a no-op.
                    balance = account.balance
                    if (
                        (balance[0] >= cap[0] or credit[0] == 0.0)
                        and (balance[1] >= cap[1] or credit[1] == 0.0)
                        and (balance[2] >= cap[2] or credit[2] == 0.0)
                    ):
                        active.discard(sid)

        # Pass 2: spare resource for still-backlogged queues.
        if self.config.spare_policy != SPARE_NONE:
            decisions.extend(self._spare_pass())

        return decisions

    def _drain_reserved(
        self,
        queue: RequestQueue,
        account: SubscriberAccount,
        estimator: UsageEstimator,
    ) -> List[ScheduleDecision]:
        decisions: List[ScheduleDecision] = []
        name = queue.subscriber.name
        allowed = (
            None if self.placement is None else self.placement.allowed_nodes(name)
        )
        neg = -ResourceVector.EPSILON
        while queue.backlogged:
            predicted = estimator.predict()
            # (balance - predicted).any_negative without the intermediate
            # vector: same subtractions, same epsilon, no allocation.
            balance = account.balance
            if (
                balance[0] - predicted[0] < neg
                or balance[1] - predicted[1] < neg
                or balance[2] - predicted[2] < neg
            ):
                break
            rpn_id = self.node_scheduler.pick(
                predicted, request=queue.peek(), allowed=allowed
            )
            if rpn_id is None:
                break  # cluster saturated; leave the request queued
            request = queue.take()
            self.accounting.on_dispatch(name, rpn_id, predicted)
            self.node_scheduler.on_dispatch(rpn_id, predicted)
            self.dispatch_fn(request, rpn_id, name, predicted)
            self.reserved_dispatches += 1
            self._reserved_counter.inc()
            decisions.append(ScheduleDecision(name, rpn_id, predicted, spare=False))
        return decisions

    def _note_balance(self, name: str, account: SubscriberAccount) -> None:
        """Export one subscriber's post-cycle credit balance, in GRPS."""
        gauge = self._balance_gauges.get(name)
        if gauge is None:
            gauge = get_registry().gauge(
                "repro.core.credit_balance_grps", subscriber=name
            )
            self._balance_gauges[name] = gauge
        gauge.set(account.balance.in_generic_requests(self.config.generic_request))

    # -- spare resource allocation ---------------------------------------------

    def _spare_pool(self) -> ResourceVector:
        """Capacity this cycle beyond the sum of all reservations.

        O(1): the ledger's reservation sum is maintained incrementally
        through the queue-registration hooks.
        """
        return self.ledger.spare_pool_tracked(
            self.node_scheduler.total_capacity_per_s()
        )

    #: Bound on spare-pass redistribution rounds per cycle (the loop
    #: terminates long before this in practice).
    MAX_SPARE_ROUNDS = 10

    def _spare_pass(self) -> List[ScheduleDecision]:
        """Water-filling spare allocation.

        Each round splits the remaining pool among *currently* backlogged
        queues in proportion to their reservations; a queue that empties
        without using its share leaves the remainder to be redistributed
        in the next round.  This is what makes Table 1 come out: site1
        and site2 take only slivers of spare, and site3 absorbs the rest.
        """
        decisions: List[ScheduleDecision] = []
        pool = self._spare_pool()
        if pool == ResourceVector.ZERO:
            return decisions
        first_round_names = set()
        for _round in range(self.MAX_SPARE_ROUNDS):
            backlogged = self.queues.backlogged()
            if not backlogged:
                break
            self._spare_round_counter.inc()
            weights = self.ledger.spare_weights(backlogged)
            consumed_total = ResourceVector.ZERO
            for queue in backlogged:
                name = queue.subscriber.name
                share = pool.scaled(weights.get(name, 0.0))
                estimator = self._estimator(name)
                if _round == 0:
                    # Roll in the unused share from previous cycles
                    # (deficit round-robin): without it each queue
                    # forfeits its fractional share every cycle (up to
                    # one request per queue per cycle — a large bias at
                    # 10 ms cycles).
                    first_round_names.add(name)
                    share = self.ledger.roll_in_deficit(
                        name, share, estimator.predict()
                    )
                allowed = (
                    None
                    if self.placement is None
                    else self.placement.allowed_nodes(name)
                )
                neg = -ResourceVector.EPSILON
                while queue.backlogged:
                    predicted = estimator.predict()
                    if (
                        share[0] - predicted[0] < neg
                        or share[1] - predicted[1] < neg
                        or share[2] - predicted[2] < neg
                    ):
                        break
                    rpn_id = self.node_scheduler.pick(
                        predicted, request=queue.peek(), allowed=allowed
                    )
                    if rpn_id is None:
                        if allowed is not None:
                            # Only this subscriber's allowed nodes are
                            # saturated (or it is unplaced); others may
                            # still have headroom.
                            break
                        return decisions  # cluster saturated for everyone
                    request = queue.take()
                    share = share - predicted
                    consumed_total = consumed_total + predicted
                    # A spare dispatch must not eat into the reserved
                    # balance: grant uncapped credit equal to the
                    # prediction, so the dispatch's net balance effect is
                    # zero and the spare budget lives in the share alone.
                    self.accounting.credit(name, predicted)
                    self.accounting.on_dispatch(name, rpn_id, predicted)
                    self.node_scheduler.on_dispatch(rpn_id, predicted)
                    self.dispatch_fn(request, rpn_id, name, predicted)
                    self.spare_dispatches += 1
                    self._spare_counter.inc()
                    share_counter = self._spare_share_counters.get(rpn_id)
                    if share_counter is None:
                        share_counter = get_registry().counter(
                            "repro.scheduler.spare_share", node=rpn_id
                        )
                        self._spare_share_counters[rpn_id] = share_counter
                    share_counter.inc(
                        predicted.in_generic_requests(self.config.generic_request)
                    )
                    decisions.append(
                        ScheduleDecision(name, rpn_id, predicted, spare=True)
                    )
                if _round == 0:
                    # Whatever the queue could not spend this round rolls
                    # over (the queue emptied => share stays for bursts,
                    # still capped on the way back in next cycle).
                    self.ledger.store_deficit(name, share)
            if consumed_total == ResourceVector.ZERO:
                break
            pool = (pool - consumed_total).clamped_min(0.0)
            if pool == ResourceVector.ZERO:
                break
        self.ledger.drop_stale_deficits(first_round_names)
        return decisions

    # -- feedback path ------------------------------------------------------------

    def apply_feedback(self, message) -> None:
        """Apply an accounting message: balances, estimators, node loads."""
        generic = self.config.generic_request
        for name, report in message.per_subscriber.items():
            queue = self.queues.get(name)
            if queue is not None:
                if self._lazy:
                    # Feedback mutates the estimator (refill cap) and the
                    # balance: wake the subscriber for the next cycle.
                    self._active.add(queue.sid)
                estimator = self._estimator(name)
                if report.completed > 0:
                    # Prediction error: how far the dispatch-time estimate
                    # was from the measured per-request usage this cycle.
                    predicted_g = estimator.predict().in_generic_requests(generic)
                    measured_g = report.per_request().in_generic_requests(generic)
                    if predicted_g > 0:
                        self._prediction_error.observe(
                            100.0 * abs(measured_g - predicted_g) / predicted_g
                        )
                estimator.observe_cycle(report.usage, report.completed)
        backed_out = self.accounting.apply_message(message)
        total = ResourceVector.ZERO
        for vec in backed_out.values():
            total = total + vec
        self.node_scheduler.on_feedback(message.rpn_id, total)
