"""The "which request" decision: credit-based weighted round-robin (§3.4).

Every scheduling cycle (10 ms) the scheduler visits each subscriber queue
in a cyclic fashion:

1. **Reserved pass** — the queue's balance gains one cycle's worth of its
   reservation; requests are dispatched (predicted usage deducted from the
   balance, a least-loaded RPN selected) until the balance would go
   negative in any resource dimension, the queue empties, or no RPN has
   headroom.
2. **Spare pass** — "whatever spare resource remains after the first
   round of scheduling is then distributed in a weighted fashion among
   those queues that are still not empty according to their resource
   reservations" — the policy Table 2 demonstrates ("higher reservation
   gets larger share of spare resource").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.accounting import RDNAccounting
from repro.core.config import (
    SPARE_NONE,
    GageConfig,
)
from repro.core.credit import CreditLedger
from repro.core.estimator import UsageEstimator
from repro.core.grps import ResourceVector
from repro.core.node_scheduler import NodeScheduler
from repro.core.queues import RequestQueue, SubscriberQueues
from repro.telemetry.registry import get_registry

#: Invoked for every dispatched request as (request, rpn_id, subscriber,
#: predicted) — the exact prediction charged at dispatch rides along so
#: downstream layers (hedging, retries) can refund it on cancellation.
DispatchFn = Callable[[object, str, str, ResourceVector], None]

#: Bucket bounds for the prediction-error histogram, in percent.
PREDICTION_ERROR_BUCKETS_PCT = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0]


@dataclass(frozen=True)
class ScheduleDecision:
    """One dispatch made during a scheduling cycle."""

    subscriber: str
    rpn_id: str
    predicted: ResourceVector
    spare: bool  # True if dispatched on spare (not reserved) credit


class RequestScheduler:
    """Gage's request scheduler, run once per scheduling cycle."""

    def __init__(
        self,
        config: GageConfig,
        queues: SubscriberQueues,
        accounting: RDNAccounting,
        node_scheduler: NodeScheduler,
        dispatch_fn: DispatchFn,
        ledger: Optional[CreditLedger] = None,
        partition: Optional[Iterable[str]] = None,
    ) -> None:
        self.config = config
        self.queues = queues
        self.accounting = accounting
        self.node_scheduler = node_scheduler
        self.dispatch_fn = dispatch_fn
        #: Credit vectors, spare-pool memos, and the deficit-round-robin
        #: rollover live in the (injectable) ledger so a sharded control
        #: plane can run one per partition.
        self.ledger = ledger if ledger is not None else CreditLedger(config)
        #: The subscriber names this instance is responsible for (None =
        #: unpartitioned, the single-instance control plane).  Queues
        #: registered outside the partition are a wiring bug.
        self.partition: Optional[frozenset] = (
            None if partition is None else frozenset(partition)
        )
        if self.partition is not None:
            for subscriber in queues.subscribers():
                if subscriber.name not in self.partition:
                    raise ValueError(
                        "queue {!r} outside scheduler partition".format(subscriber.name)
                    )
        self._estimators: Dict[str, UsageEstimator] = {}
        self.cycles = 0
        self.reserved_dispatches = 0
        self.spare_dispatches = 0
        registry = get_registry()
        self._cycle_counter = registry.counter("repro.core.wrr_cycles")
        self._reserved_counter = registry.counter(
            "repro.core.dispatches", credit="reserved"
        )
        self._spare_counter = registry.counter("repro.core.dispatches", credit="spare")
        self._spare_round_counter = registry.counter("repro.core.spare_rounds")
        self._prediction_error = registry.histogram(
            "repro.core.prediction_error_pct", bounds=PREDICTION_ERROR_BUCKETS_PCT
        )
        self._balance_gauges: Dict[str, object] = {}

    def estimator(self, name: str) -> UsageEstimator:
        """The usage estimator for one subscriber's queue."""
        if name not in self._estimators:
            self._estimators[name] = UsageEstimator(
                policy=self.config.estimator_policy,
                alpha=self.config.estimator_alpha,
                initial=self.config.generic_request,
            )
        return self._estimators[name]

    # -- one scheduling cycle -------------------------------------------------

    def run_cycle(self) -> List[ScheduleDecision]:
        """Execute one 10-ms scheduling cycle; returns the dispatches made."""
        self.cycles += 1
        self._cycle_counter.inc()
        decisions: List[ScheduleDecision] = []

        # Pass 1: reserved credit, weighted round-robin over all queues.
        # The visit order rotates each cycle ("visits each subscriber's
        # queue in a cyclic fashion", §3.4), so no queue systematically
        # claims node headroom first.
        ordered = list(self.queues)
        if ordered:
            start = self.cycles % len(ordered)
            ordered = ordered[start:] + ordered[:start]
        for queue in ordered:
            subscriber = queue.subscriber
            credit, capped = self.ledger.cycle_credit(subscriber)
            # The cap bounds idle-time credit hoarding, but must always
            # admit at least one predicted request or a subscriber whose
            # requests are larger than credit_cap_cycles' worth of credit
            # (heavy-tailed workloads) could never dispatch again.
            predicted = self.estimator(subscriber.name).predict()
            cap = self.ledger.refill_cap(capped, predicted)
            self.accounting.refill(subscriber.name, credit, cap)
            decisions.extend(self._drain_reserved(queue))
            self._note_balance(subscriber.name)

        # Pass 2: spare resource for still-backlogged queues.
        if self.config.spare_policy != SPARE_NONE:
            decisions.extend(self._spare_pass())

        return decisions

    def _drain_reserved(self, queue: RequestQueue) -> List[ScheduleDecision]:
        decisions: List[ScheduleDecision] = []
        name = queue.subscriber.name
        account = self.accounting.account(name)
        estimator = self.estimator(name)
        neg = -ResourceVector.EPSILON
        while queue.backlogged:
            predicted = estimator.predict()
            # (balance - predicted).any_negative without the intermediate
            # vector: same subtractions, same epsilon, no allocation.
            balance = account.balance
            if (
                balance[0] - predicted[0] < neg
                or balance[1] - predicted[1] < neg
                or balance[2] - predicted[2] < neg
            ):
                break
            rpn_id = self.node_scheduler.pick(predicted, request=queue.peek())
            if rpn_id is None:
                break  # cluster saturated; leave the request queued
            request = queue.take()
            self.accounting.on_dispatch(name, rpn_id, predicted)
            self.node_scheduler.on_dispatch(rpn_id, predicted)
            self.dispatch_fn(request, rpn_id, name, predicted)
            self.reserved_dispatches += 1
            self._reserved_counter.inc()
            decisions.append(ScheduleDecision(name, rpn_id, predicted, spare=False))
        return decisions

    def _note_balance(self, name: str) -> None:
        """Export one subscriber's post-cycle credit balance, in GRPS."""
        gauge = self._balance_gauges.get(name)
        if gauge is None:
            gauge = get_registry().gauge(
                "repro.core.credit_balance_grps", subscriber=name
            )
            self._balance_gauges[name] = gauge
        balance = self.accounting.account(name).balance
        gauge.set(balance.in_generic_requests(self.config.generic_request))

    # -- spare resource allocation ---------------------------------------------

    def _spare_pool(self) -> ResourceVector:
        """Capacity this cycle beyond the sum of all reservations."""
        return self.ledger.spare_pool(
            self.node_scheduler.total_capacity_per_s(), self.queues.subscribers()
        )

    #: Bound on spare-pass redistribution rounds per cycle (the loop
    #: terminates long before this in practice).
    MAX_SPARE_ROUNDS = 10

    def _spare_pass(self) -> List[ScheduleDecision]:
        """Water-filling spare allocation.

        Each round splits the remaining pool among *currently* backlogged
        queues in proportion to their reservations; a queue that empties
        without using its share leaves the remainder to be redistributed
        in the next round.  This is what makes Table 1 come out: site1
        and site2 take only slivers of spare, and site3 absorbs the rest.
        """
        decisions: List[ScheduleDecision] = []
        pool = self._spare_pool()
        if pool == ResourceVector.ZERO:
            return decisions
        first_round_names = set()
        for _round in range(self.MAX_SPARE_ROUNDS):
            backlogged = self.queues.backlogged()
            if not backlogged:
                break
            self._spare_round_counter.inc()
            weights = self.ledger.spare_weights(backlogged)
            consumed_total = ResourceVector.ZERO
            for queue in backlogged:
                name = queue.subscriber.name
                share = pool.scaled(weights.get(name, 0.0))
                estimator = self.estimator(name)
                if _round == 0:
                    # Roll in the unused share from previous cycles
                    # (deficit round-robin): without it each queue
                    # forfeits its fractional share every cycle (up to
                    # one request per queue per cycle — a large bias at
                    # 10 ms cycles).
                    first_round_names.add(name)
                    share = self.ledger.roll_in_deficit(
                        name, share, estimator.predict()
                    )
                neg = -ResourceVector.EPSILON
                while queue.backlogged:
                    predicted = estimator.predict()
                    if (
                        share[0] - predicted[0] < neg
                        or share[1] - predicted[1] < neg
                        or share[2] - predicted[2] < neg
                    ):
                        break
                    rpn_id = self.node_scheduler.pick(
                        predicted, request=queue.peek()
                    )
                    if rpn_id is None:
                        return decisions  # cluster saturated for everyone
                    request = queue.take()
                    share = share - predicted
                    consumed_total = consumed_total + predicted
                    # A spare dispatch must not eat into the reserved
                    # balance: grant uncapped credit equal to the
                    # prediction, so the dispatch's net balance effect is
                    # zero and the spare budget lives in the share alone.
                    self.accounting.credit(name, predicted)
                    self.accounting.on_dispatch(name, rpn_id, predicted)
                    self.node_scheduler.on_dispatch(rpn_id, predicted)
                    self.dispatch_fn(request, rpn_id, name, predicted)
                    self.spare_dispatches += 1
                    self._spare_counter.inc()
                    decisions.append(
                        ScheduleDecision(name, rpn_id, predicted, spare=True)
                    )
                if _round == 0:
                    # Whatever the queue could not spend this round rolls
                    # over (the queue emptied => share stays for bursts,
                    # still capped on the way back in next cycle).
                    self.ledger.store_deficit(name, share)
            if consumed_total == ResourceVector.ZERO:
                break
            pool = (pool - consumed_total).clamped_min(0.0)
            if pool == ResourceVector.ZERO:
                break
        self.ledger.drop_stale_deficits(first_round_names)
        return decisions

    # -- feedback path ------------------------------------------------------------

    def apply_feedback(self, message) -> None:
        """Apply an accounting message: balances, estimators, node loads."""
        generic = self.config.generic_request
        for name, report in message.per_subscriber.items():
            if name in self.queues:
                estimator = self.estimator(name)
                if report.completed > 0:
                    # Prediction error: how far the dispatch-time estimate
                    # was from the measured per-request usage this cycle.
                    predicted_g = estimator.predict().in_generic_requests(generic)
                    measured_g = report.per_request().in_generic_requests(generic)
                    if predicted_g > 0:
                        self._prediction_error.observe(
                            100.0 * abs(measured_g - predicted_g) / predicted_g
                        )
                estimator.observe_cycle(report.usage, report.completed)
        backed_out = self.accounting.apply_message(message)
        total = ResourceVector.ZERO
        for vec in backed_out.values():
            total = total + vec
        self.node_scheduler.on_feedback(message.rpn_id, total)
