"""The Gage core: the paper's contribution.

Request classification (§3.3), per-subscriber queues and the credit-based
weighted-round-robin request scheduler with spare-resource allocation
(§3.4), least-load node scheduling (§3.4), resource usage accounting and
feedback (§3.5), the primary/secondary RDN (§3.2), and the RPN local
service manager performing distributed TCP splicing (§3.2).

All scheduling/accounting logic is transport-agnostic: the same code runs
over the packet-level simulator (mechanism fidelity) and the flow-level
transport (experiment throughput).  See :mod:`repro.core.simulation` for
the one-call cluster assembly used by the benchmarks and examples.
"""

from repro.core.accounting import RDNAccounting, SubscriberAccount
from repro.core.classifier import Classification, PacketClass, RequestClassifier
from repro.core.config import GageConfig
from repro.core.conntable import ConnectionTable
from repro.core.credit import CreditLedger
from repro.core.estimator import UsageEstimator
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.control import DelegateHandshake, DispatchOrder, HandshakeComplete
from repro.core.grps import GENERIC_REQUEST, ResourceVector, grps
from repro.core.hedge import HedgeHooks, HedgeManager, ServiceHandle
from repro.core.metrics import (
    DeviationReport,
    FailureEvent,
    FailureLog,
    ServiceReport,
    deviation_from_reservation,
)
from repro.core.node_scheduler import NodeScheduler, RPNStatus
from repro.core.placement import (
    Embedding,
    NodeView,
    PlacementEngine,
    PlacementStats,
)
from repro.core.queues import RequestQueue, SubscriberQueues
from repro.core.rdn import PendingRequest, PrimaryRDN, RDNOpCounters
from repro.core.rpn import LocalServiceManager, RPNAccountingAgent
from repro.core.scheduler import RequestScheduler, ScheduleDecision
from repro.core.secondary import SecondaryRDN
from repro.core.shard import (
    CreditGrant,
    GlobalAllocator,
    SchedulerShard,
    ShardCreditReport,
    ShardedScheduler,
    ShardMap,
)
from repro.core.simulation import GageCluster, default_rpn_capacity
from repro.core.subscriber import Subscriber, SubscriberTable

__all__ = [
    "AccountingMessage",
    "Classification",
    "ConnectionTable",
    "CreditGrant",
    "CreditLedger",
    "DelegateHandshake",
    "DeviationReport",
    "DispatchOrder",
    "Embedding",
    "FailureEvent",
    "FailureLog",
    "GageCluster",
    "GageConfig",
    "GENERIC_REQUEST",
    "GlobalAllocator",
    "HandshakeComplete",
    "HedgeHooks",
    "HedgeManager",
    "LocalServiceManager",
    "NodeScheduler",
    "NodeView",
    "PacketClass",
    "PendingRequest",
    "PlacementEngine",
    "PlacementStats",
    "PrimaryRDN",
    "RDNAccounting",
    "RDNOpCounters",
    "RequestClassifier",
    "RequestQueue",
    "RequestScheduler",
    "RPNAccountingAgent",
    "RPNStatus",
    "RPNUsageReport",
    "ResourceVector",
    "ScheduleDecision",
    "SchedulerShard",
    "SecondaryRDN",
    "ServiceHandle",
    "ServiceReport",
    "ShardCreditReport",
    "ShardMap",
    "ShardedScheduler",
    "Subscriber",
    "SubscriberAccount",
    "SubscriberQueues",
    "SubscriberTable",
    "UsageEstimator",
    "default_rpn_capacity",
    "deviation_from_reservation",
    "grps",
]
