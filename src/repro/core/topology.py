"""First-class cluster topology: heterogeneous nodes, links, and fabrics.

The paper evaluates Gage on one homogeneous cluster behind a single
switch whose contention "is negligible" (§5).  This module turns that
implicit assumption into an explicit, validated specification so the
same machinery can also drive mixed-capacity clusters with tiered links
and multi-switch fabrics:

- :class:`NodeSpec` — one back-end node: CPU speed, buffer cache, disk
  timing, its access link, which fabric switch it hangs off, and
  (optionally) an explicit per-node GRPS capacity override;
- :class:`LinkSpec` — one access/uplink tier (bandwidth + latency);
- :class:`SwitchSpec` — one fabric switch: port count (``None`` sizes
  it from the topology), per-port defaults, and the uplink tier that
  connects a leaf switch to the root;
- :class:`ClusterTopology` — the validated container with a stable JSON
  round-trip (the seeded generator in :mod:`repro.workload.topology`
  reproduces a topology file byte-for-byte from its seed).

The homogeneous default maps onto :meth:`ClusterTopology.homogeneous`,
whose degenerate spec reproduces the historic scalar-knob construction
exactly — same :class:`~repro.cluster.machine.Machine` arguments, same
``default_rpn_capacity`` vector, same switch sizing — so existing
callers and the golden digest are byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.grps import GENERIC_REQUEST, ResourceVector, grps

__all__ = [
    "LinkSpec",
    "NodeSpec",
    "SwitchSpec",
    "ClusterTopology",
    "grps_capacity",
    "DEFAULT_LINK_BANDWIDTH_BPS",
    "DEFAULT_LINK_LATENCY_S",
    "DEFAULT_SWITCH_PORT_BANDWIDTH_BPS",
    "DEFAULT_SWITCH_LATENCY_S",
    "DEFAULT_UPLINK_BANDWIDTH_BPS",
    "DEFAULT_UPLINK_LATENCY_S",
    "DEFAULT_CACHE_BYTES",
]

#: Fast Ethernet access links, as in the paper's testbed.
DEFAULT_LINK_BANDWIDTH_BPS = 100e6
#: Host-side propagation/driver latency of one access link.
DEFAULT_LINK_LATENCY_S = 20e-6
#: Per-port egress rate of a fabric switch.
DEFAULT_SWITCH_PORT_BANDWIDTH_BPS = 100e6
#: One switch hop of forwarding latency.
DEFAULT_SWITCH_LATENCY_S = 5e-6
#: Inter-switch uplinks default to a faster tier (GigE trunk).
DEFAULT_UPLINK_BANDWIDTH_BPS = 1e9
DEFAULT_UPLINK_LATENCY_S = 5e-6
#: The paper's back-end boxes: 64 MB RAM, half of it buffer cache.
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024

#: Version stamp of the JSON document format.
TOPOLOGY_FORMAT = 1


def grps_capacity(
    capacity: ResourceVector, generic: ResourceVector = GENERIC_REQUEST
) -> float:
    """A capacity vector expressed as sustainable generic requests/sec.

    The bottleneck (minimum) over the resource dimensions — the dual of
    ``in_generic_requests``, whose max-norm measures *usage*, not what a
    node can sustain.
    """
    fractions = [
        component / unit
        for component, unit in zip(capacity, generic)
        if unit > 0.0
    ]
    return min(fractions) if fractions else 0.0


@dataclass(frozen=True)
class LinkSpec:
    """One link tier: serialization bandwidth and propagation latency."""

    bandwidth_bps: float = DEFAULT_LINK_BANDWIDTH_BPS
    latency_s: float = DEFAULT_LINK_LATENCY_S

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("link latency must be non-negative")

    def bytes_per_s(self) -> float:
        """The link's capacity in the GRPS network dimension."""
        return self.bandwidth_bps / 8.0

    def to_dict(self) -> Dict[str, float]:
        return {"bandwidth_bps": self.bandwidth_bps, "latency_s": self.latency_s}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkSpec":
        return cls(
            bandwidth_bps=float(data["bandwidth_bps"]),
            latency_s=float(data["latency_s"]),
        )


@dataclass(frozen=True)
class NodeSpec:
    """One back-end node of the cluster.

    ``disk_seek_s``/``disk_transfer_bps`` default to ``None`` — "use the
    deployment's cost model", which is what the scalar-knob construction
    always did.  ``capacity_grps`` overrides the *declared* scheduling
    capacity (spare pool, dispatch headroom) with an explicit GRPS
    figure; when ``None`` the capacity derives from the node's CPU speed
    and access link, reproducing ``default_rpn_capacity`` exactly for
    the default spec.
    """

    kind: str = "standard"
    cpu_speed: float = 1.0
    cache_bytes: int = DEFAULT_CACHE_BYTES
    disk_seek_s: Optional[float] = None
    disk_transfer_bps: Optional[float] = None
    link: LinkSpec = field(default_factory=LinkSpec)
    #: Index into :attr:`ClusterTopology.switches` of the fabric switch
    #: this node's access link terminates on.
    switch: int = 0
    capacity_grps: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("node kind must be non-empty")
        if self.cpu_speed <= 0:
            raise ValueError("cpu speed must be positive")
        if self.cache_bytes < 0:
            raise ValueError("cache size must be non-negative")
        if self.disk_seek_s is not None and self.disk_seek_s < 0:
            raise ValueError("disk seek time must be non-negative")
        if self.disk_transfer_bps is not None and self.disk_transfer_bps <= 0:
            raise ValueError("disk transfer rate must be positive")
        if self.switch < 0:
            raise ValueError("switch index must be non-negative")
        if self.capacity_grps is not None and self.capacity_grps <= 0:
            raise ValueError("capacity override must be positive")

    def capacity_per_s(self) -> ResourceVector:
        """The node's declared per-second scheduling capacity.

        Derived form: one CPU at ``cpu_speed``, one disk channel, and
        the access link's byte rate — identical to the historic
        ``default_rpn_capacity(cpu_speed)`` for the default link.
        """
        if self.capacity_grps is not None:
            return grps(self.capacity_grps)
        return ResourceVector(
            cpu_s=self.cpu_speed, disk_s=1.0, net_bytes=self.link.bytes_per_s()
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "cpu_speed": self.cpu_speed,
            "cache_bytes": self.cache_bytes,
            "disk_seek_s": self.disk_seek_s,
            "disk_transfer_bps": self.disk_transfer_bps,
            "link": self.link.to_dict(),
            "switch": self.switch,
            "capacity_grps": self.capacity_grps,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeSpec":
        seek = data.get("disk_seek_s")
        transfer = data.get("disk_transfer_bps")
        override = data.get("capacity_grps")
        return cls(
            kind=str(data.get("kind", "standard")),
            cpu_speed=float(data["cpu_speed"]),
            cache_bytes=int(data["cache_bytes"]),
            disk_seek_s=None if seek is None else float(seek),
            disk_transfer_bps=None if transfer is None else float(transfer),
            link=LinkSpec.from_dict(data["link"]),
            switch=int(data.get("switch", 0)),
            capacity_grps=None if override is None else float(override),
        )


@dataclass(frozen=True)
class SwitchSpec:
    """One fabric switch.

    ``ports=None`` sizes the switch from the topology (attached nodes
    plus front-end hosts plus uplinks, never below the paper's 16-port
    box); an explicit port count that cannot seat the topology is a
    configuration error and raises at cluster build time.  ``uplink``
    is the tier connecting a leaf switch to the root switch (index 0);
    the root itself has no uplink.
    """

    ports: Optional[int] = None
    port_bandwidth_bps: float = DEFAULT_SWITCH_PORT_BANDWIDTH_BPS
    latency_s: float = DEFAULT_SWITCH_LATENCY_S
    uplink: Optional[LinkSpec] = None

    def __post_init__(self) -> None:
        if self.ports is not None and self.ports < 2:
            raise ValueError("a switch needs at least 2 ports")
        if self.port_bandwidth_bps <= 0:
            raise ValueError("port bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("switch latency must be non-negative")

    def uplink_or_default(self) -> LinkSpec:
        """The uplink tier, defaulting to the GigE trunk."""
        if self.uplink is not None:
            return self.uplink
        return LinkSpec(
            bandwidth_bps=DEFAULT_UPLINK_BANDWIDTH_BPS,
            latency_s=DEFAULT_UPLINK_LATENCY_S,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ports": self.ports,
            "port_bandwidth_bps": self.port_bandwidth_bps,
            "latency_s": self.latency_s,
            "uplink": None if self.uplink is None else self.uplink.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SwitchSpec":
        ports = data.get("ports")
        uplink = data.get("uplink")
        return cls(
            ports=None if ports is None else int(ports),
            port_bandwidth_bps=float(data["port_bandwidth_bps"]),
            latency_s=float(data["latency_s"]),
            uplink=None if uplink is None else LinkSpec.from_dict(uplink),
        )


@dataclass(frozen=True)
class ClusterTopology:
    """A validated cluster layout: back-end nodes over a switch fabric.

    Switch 0 is the root: the RDN, secondaries, and (packet mode)
    clients attach there, and every leaf switch trunks to it over its
    ``uplink`` tier — a star fabric, loop-free by construction.
    """

    nodes: Tuple[NodeSpec, ...]
    switches: Tuple[SwitchSpec, ...] = (SwitchSpec(),)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a topology needs at least one node")
        if not self.switches:
            raise ValueError("a topology needs at least one switch")
        for index, node in enumerate(self.nodes):
            if node.switch >= len(self.switches):
                raise ValueError(
                    "node {} references switch {} but the fabric has {}".format(
                        index, node.switch, len(self.switches)
                    )
                )

    # -- derived shape -------------------------------------------------------

    @property
    def num_rpns(self) -> int:
        return len(self.nodes)

    def nodes_on_switch(self, switch: int) -> List[int]:
        """Indices of the nodes attached to one fabric switch."""
        return [i for i, node in enumerate(self.nodes) if node.switch == switch]

    def capacities(self) -> List[ResourceVector]:
        """Per-node declared capacity vectors, in node order."""
        return [node.capacity_per_s() for node in self.nodes]

    def total_capacity_grps(self) -> float:
        """Summed bottleneck GRPS capacity over all nodes."""
        return sum(grps_capacity(c) for c in self.capacities())

    def is_homogeneous(self) -> bool:
        """True when every node is identical and the fabric is one switch."""
        return len(self.switches) == 1 and all(
            node == self.nodes[0] for node in self.nodes
        )

    @classmethod
    def homogeneous(
        cls,
        num_rpns: int,
        cpu_speed: float = 1.0,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> "ClusterTopology":
        """The degenerate topology the scalar knobs always described."""
        if num_rpns < 1:
            raise ValueError("need at least one RPN")
        node = NodeSpec(cpu_speed=cpu_speed, cache_bytes=cache_bytes)
        return cls(nodes=(node,) * num_rpns)

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": TOPOLOGY_FORMAT,
            "nodes": [node.to_dict() for node in self.nodes],
            "switches": [switch.to_dict() for switch in self.switches],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterTopology":
        version = int(data.get("format", TOPOLOGY_FORMAT))
        if version != TOPOLOGY_FORMAT:
            raise ValueError("unsupported topology format: {}".format(version))
        return cls(
            nodes=tuple(NodeSpec.from_dict(n) for n in data["nodes"]),
            switches=tuple(SwitchSpec.from_dict(s) for s in data["switches"]),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, stable float repr, trailing LF.

        Byte-for-byte deterministic for a given topology — the seeded
        generator's reproducibility contract rides on this.
        """
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ClusterTopology":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ClusterTopology":
        with open(path) as handle:
            return cls.from_json(handle.read())
