"""Accounting messages: RPN → RDN resource-usage feedback (§3.5).

"Each accounting message from RPN includes the total and per-subscriber
resource usage on that RPN in the previous accounting cycle."  This
reproduction additionally carries per-subscriber completion counts, which
lets the RDN replace exactly the right dispatch-time predictions with
measured usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.grps import ResourceVector


@dataclass(frozen=True)
class RPNUsageReport:
    """One subscriber's usage on one RPN during one accounting cycle."""

    usage: ResourceVector
    completed: int

    def per_request(self) -> ResourceVector:
        """Average usage of one completed request in this cycle."""
        if self.completed <= 0:
            return ResourceVector.ZERO
        return self.usage.scaled(1.0 / self.completed)


@dataclass
class AccountingMessage:
    """The periodic feedback message from one RPN."""

    rpn_id: str
    cycle_start_s: float
    cycle_end_s: float
    total_usage: ResourceVector
    per_subscriber: Dict[str, RPNUsageReport] = field(default_factory=dict)

    @property
    def cycle_length_s(self) -> float:
        """Duration the message covers."""
        return self.cycle_end_s - self.cycle_start_s

    def age_s(self, now: float) -> float:
        """Report lag: how stale the covered cycle is on arrival.

        Measured from the end of the reported cycle to ``now`` (transit
        plus queueing delay); the telemetry layer histograms this as
        ``repro.core.report_lag_s``, the staleness that drives Figure 3's
        deviation-vs-cycle behaviour.
        """
        return max(0.0, now - self.cycle_end_s)

    def __repr__(self) -> str:
        return "<AccountingMessage {} [{:.3f},{:.3f}] subs={}>".format(
            self.rpn_id, self.cycle_start_s, self.cycle_end_s, len(self.per_subscriber)
        )
