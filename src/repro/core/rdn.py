"""The primary request distribution node (§3.2-3.4).

The RDN is the single entry point of the cluster: every inbound packet is
classified (§3.3), handshakes are emulated without involving any TCP
stack, URL requests are buffered in per-subscriber queues, the scheduler
dispatches them to back-end RPNs (§3.4), and all other packets are bridged
at layer 2 through the connection table.

The same class serves both transports:

- **packet mode** — install :meth:`handle_packet` as a promiscuous NIC's
  receive handler and give the constructor a ``packet_dispatch`` context;
- **flow mode** — call :meth:`submit_request` with request objects and
  provide a ``dispatch_fn`` that delivers them to back-end servers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.accounting import RDNAccounting
from repro.core.classifier import PacketClass, RequestClassifier
from repro.core.config import HEDGE_OFF, PLACEMENT_OFF, GageConfig
from repro.core.conntable import ConnectionTable
from repro.core.control import (
    CONTROL_PAYLOAD_LEN,
    CONTROL_PORT,
    DelegateHandshake,
    DispatchOrder,
    HandshakeComplete,
)
from repro.core.feedback import AccountingMessage
from repro.core.grps import ResourceVector
from repro.core.hedge import HedgeHooks, HedgeManager
from repro.core.metrics import (
    CONNECTIONS_RESET,
    DELEGATE_TIMEOUT,
    NODE_DOWN,
    NODE_UP,
    REQUESTS_REQUEUED,
    SECONDARY_DOWN,
    SECONDARY_UP,
    FailureLog,
)
from repro.core.node_scheduler import NodeScheduler
from repro.core.placement import PlacementEngine
from repro.core.queues import SubscriberQueues
from repro.core.scheduler import RequestScheduler
from repro.core.subscriber import Subscriber
from repro.net.addresses import IPAddress, MACAddress
from repro.net.arp import ArpReply, ArpRequest, _arp_frame
from repro.net.conn import Quadruple
from repro.net.nic import NIC
from repro.net.packet import SEQ_SPACE, Packet, TCPFlags

#: Raw bit masks for the forwarding fast path: ``IntFlag.__and__`` builds
#: an enum member per operation, which costs more than the rest of a
#: connection-table hit put together.
_TEARDOWN_BITS = TCPFlags.FIN._value_ | TCPFlags.RST._value_
#: Composed once: ``IntFlag.__or__`` allocates per call.
_SYN_ACK = TCPFlags.SYN | TCPFlags.ACK
from repro.sim.engine import Environment
from repro.telemetry.metrics import Histogram
from repro.telemetry.registry import get_registry


@dataclass
class HalfOpenConnection:
    """First-leg handshake state the RDN keeps per new client connection."""

    quad: Quadruple
    client_isn: int
    rdn_isn: int
    client_mac: MACAddress
    established: bool = False
    request_enqueued: bool = False


@dataclass
class PendingRequest:
    """A queued URL request plus the splice metadata of its connection."""

    subscriber: str
    request: object
    request_bytes: int
    quad: Quadruple
    client_isn: int
    rdn_isn: int
    client_mac: MACAddress
    enqueued_at: float


@dataclass
class _Delegation:
    """One handshake pushed to a secondary RDN, awaiting completion."""

    mac: MACAddress
    client_isn: int
    client_mac: MACAddress


@dataclass
class RDNOpCounters:
    """Operation counts for the overhead/utilization analysis (§4.2-4.3)."""

    packets: int = 0
    classifications: int = 0
    connection_setups: int = 0
    forwards: int = 0
    enqueues: int = 0
    dispatches: int = 0
    feedback_messages: int = 0
    absorbed: int = 0
    rejected: int = 0


class PrimaryRDN:
    """The front-end request distribution node."""

    def __init__(
        self,
        env: Environment,
        config: GageConfig,
        cluster_ip: IPAddress,
        subscribers: List[Subscriber],
        host_map: Optional[Dict[str, str]] = None,
        isn_base: int = 900_000,
    ) -> None:
        self.env = env
        self.config = config
        self.cluster_ip = cluster_ip
        self.conntable = ConnectionTable()
        # One SubscriberTable spans the queues, the accounting, and the
        # classifier, so every component resolves a name to the same
        # dense interned id.
        self.queues = SubscriberQueues()
        self.accounting = RDNAccounting(table=self.queues.table)
        self.classifier = RequestClassifier(table=self.queues.table)
        self.node_scheduler = NodeScheduler(
            policy=config.node_policy, window_s=config.dispatch_window_s
        )
        #: The placement / admission-control layer (extension, off by
        #: default): when on, subscribers are embedded onto a primary
        #: RPN plus backup reservations, and dispatch follows the
        #: embedding.
        self.placement: Optional[PlacementEngine] = None
        if config.placement_policy != PLACEMENT_OFF:
            self.placement = PlacementEngine(
                k_backup=config.placement_k_backup,
                objective=config.placement_policy,
                generic=config.generic_request,
                promote_policy=config.placement_promote_policy,
            )
        #: Subscribers awaiting embedding because no RPN had been
        #: registered yet when they arrived (constructor-time
        #: subscribers); drained by :meth:`add_rpn`.
        self._placement_deferred: List[Subscriber] = []
        self.scheduler = RequestScheduler(
            config,
            self.queues,
            self.accounting,
            self.node_scheduler,
            dispatch_fn=self._dispatch,
            placement=self.placement,
        )
        self.ops = RDNOpCounters()
        self._half_open: Dict[Quadruple, HalfOpenConnection] = {}
        self._rpn_macs: Dict[str, MACAddress] = {}
        self._rpn_ips: Dict[str, IPAddress] = {}
        self._isn = isn_base
        self.nic: Optional[NIC] = None
        #: Flow-mode delivery: (request, rpn_id, subscriber) -> None.
        self.flow_dispatch: Optional[Callable[[object, str, str], None]] = None
        #: Mid-service abort, installed by the cluster harness when the
        #: transport supports it: (request, rpn_id) -> cancelled.
        self.cancel_service: Optional[Callable[[object, str], bool]] = None
        #: The hedging layer — only constructed when the policy is on,
        #: so default runs carry zero extra state or events.
        self.hedges: Optional[HedgeManager] = None
        if config.hedge_policy != HEDGE_OFF:
            self.hedges = HedgeManager(
                env,
                config,
                HedgeHooks(
                    pick_clone=self._pick_clone_node,
                    charge=self._charge_clone,
                    refund=self._refund_clone,
                    dispatch_clone=self._dispatch_clone,
                    cancel_service=self._cancel_service,
                    discard_in_flight=self._discard_in_flight,
                ),
            )
        #: Secondary RDNs available for handshake offload, by MAC.
        self._secondaries: List[MACAddress] = []
        self._next_secondary = 0
        self._delegated: Dict[Quadruple, _Delegation] = {}
        #: Consecutive delegation timeouts per secondary; reset on any
        #: completed handshake, ejection at ``secondary_failure_limit``.
        self._secondary_failures: Dict[MACAddress, int] = {}
        #: URL requests that raced ahead of their HandshakeComplete.
        self._awaiting_handshake: Dict[Quadruple, Packet] = {}
        #: Failure-detection and recovery event ledger.
        self.failures = FailureLog()
        #: Last accounting-message arrival per RPN.  A node enters the
        #: heartbeat watch only after its *first* message — so clusters
        #: run without accounting agents (many unit tests) never
        #: false-positive.
        self._last_feedback: Dict[str, float] = {}
        #: Dispatched-but-unreported requests per (rpn, subscriber), in
        #: dispatch order, so a node death can re-enqueue exactly the
        #: requests that died with it.
        self._in_flight: Dict[str, Dict[str, Deque[object]]] = {}
        #: Completion log fed by accounting messages: (time, subscriber, count).
        self.completion_log: List[Tuple[float, str, int]] = []
        registry = get_registry()
        self._tm_packets = registry.counter("repro.core.rdn_packets")
        self._tm_dispatches = registry.counter("repro.core.rdn_dispatches")
        self._tm_feedback = registry.counter("repro.core.feedback_messages")
        self._tm_node_down = registry.counter("repro.core.node_down")
        self._tm_node_up = registry.counter("repro.core.node_up")
        self._tm_report_lag = registry.histogram("repro.core.report_lag_s")
        #: Per-subscriber queue-wait histograms, created on first dispatch.
        self._tm_dispatch_latency: Dict[str, Histogram] = {}
        for subscriber in subscribers:
            self.queues.register(subscriber)
            self.accounting.register(subscriber)
            host = (host_map or {}).get(subscriber.name, subscriber.name)
            self.classifier.register_host(host, subscriber.name)
            if self.placement is not None:
                # No RPNs exist yet at construction time; the embedding
                # happens when the first nodes are added.
                self._placement_deferred.append(subscriber)
        self._scheduler_proc = env.process(self._scheduler_loop())

    def __repr__(self) -> str:
        return "<PrimaryRDN {} subscribers={} rpns={}>".format(
            self.cluster_ip, len(self.queues), len(self.node_scheduler)
        )

    # -- topology wiring ---------------------------------------------------

    def attach_nic(self, nic: NIC) -> None:
        """Install this RDN as the packet handler of a promiscuous NIC."""
        self.nic = nic
        nic.promiscuous = True
        nic.receive_handler = self.handle_packet

    def add_rpn(
        self,
        rpn_id: str,
        capacity_per_s: ResourceVector,
        mac: Optional[MACAddress] = None,
        ip: Optional[IPAddress] = None,
    ) -> None:
        """Register one back-end node with the node scheduler."""
        self.node_scheduler.add_node(rpn_id, capacity_per_s)
        if mac is not None:
            self._rpn_macs[rpn_id] = mac
        if ip is not None:
            self._rpn_ips[rpn_id] = ip
        if self.placement is not None:
            self.placement.add_node(rpn_id, capacity_per_s)
            self._drain_deferred_placements()

    def _drain_deferred_placements(self) -> None:
        """Embed subscribers that arrived before any RPN existed.

        A deferred subscriber the engine rejects stays registered with
        an empty allowed set — its requests queue but never dispatch —
        and is retried whenever another node joins, so capacity added
        later can still admit it.
        """
        if self.placement is None or not self._placement_deferred:
            return
        still_deferred: List[Subscriber] = []
        for subscriber in self._placement_deferred:
            if not self.placement.place(subscriber):
                still_deferred.append(subscriber)
        self._placement_deferred = still_deferred

    def add_secondary(self, mac: MACAddress) -> None:
        """Register a secondary RDN for handshake offload (§3.2)."""
        self._secondaries.append(mac)

    # -- subscriber churn (join/leave while serving) ---------------------------

    def register_subscriber(
        self, subscriber: Subscriber, hosts: Optional[List[str]] = None
    ) -> bool:
        """Admit one subscriber while the cluster is serving.

        With placement on, admission control runs first: a reservation
        that cannot be embedded without overcommitting any node is
        rejected and **nothing** is registered (the caller sees False).
        With placement off (the paper's model) every registration is
        accepted.  When no RPN exists yet the embedding is deferred to
        :meth:`add_rpn`, like constructor-time subscribers.
        """
        if subscriber.name in self.queues:
            raise RuntimeError(
                "subscriber {!r} already registered".format(subscriber.name)
            )
        if self.placement is not None:
            if len(self.node_scheduler) == 0:
                self._placement_deferred.append(subscriber)
            elif not self.placement.place(subscriber):
                return False
        self.queues.register(subscriber)
        self.accounting.register(subscriber)
        for host in hosts if hosts is not None else [subscriber.name]:
            self.classifier.register_host(host, subscriber.name)
        return True

    def deregister_subscriber(self, name: str) -> bool:
        """Remove one subscriber while the cluster is serving (churn).

        Pending and in-flight requests are dropped (their predictions
        fold into the accounting's ``total_forgotten``, keeping the
        conservation invariant), the classifier stops resolving the
        subscriber's hosts, the embedding's capacity is released, and
        the interned id returns to the shared table for reuse.
        """
        if name not in self.queues:
            return False
        self.classifier.unregister_subscriber(name)
        if self.placement is not None:
            self.placement.release(name)
            self._placement_deferred = [
                s for s in self._placement_deferred if s.name != name
            ]
        for per_node in self._in_flight.values():
            per_node.pop(name, None)
        # Accounting must let go before the queues release the shared
        # table id (the queues collection owns the table).
        self.accounting.unregister(name)
        self.queues.unregister(name)
        return True

    # -- the scheduler polling loop (§3.4) ------------------------------------

    def _scheduler_loop(self):
        registry = get_registry()
        while True:
            yield self.env.timeout(self.config.scheduling_cycle_s)
            self._check_heartbeats()
            self.scheduler.run_cycle()
            registry.tick()

    # -- failure detection (heartbeat on the accounting stream) ----------------

    def _check_heartbeats(self) -> None:
        """Declare dead any RPN silent for ``heartbeat_miss_limit`` cycles.

        The accounting messages double as heartbeats: a healthy node
        reports every ``accounting_cycle_s`` even when idle, so more than
        K consecutive missed reports means the node (or its link) is
        gone, not merely unloaded.
        """
        limit = self.config.heartbeat_miss_limit
        if limit is None:
            return
        threshold = limit * self.config.accounting_cycle_s
        now = self.env.now
        for status in self.node_scheduler.up_nodes():
            last = self._last_feedback.get(status.rpn_id)
            if last is not None and now - last > threshold:
                self._on_node_death(status.rpn_id, silent_for_s=now - last)

    def _on_node_death(self, rpn_id: str, silent_for_s: float = 0.0) -> None:
        """Tear one dead RPN out of the dispatch path.

        Everything charged against the node is unwound: its outstanding
        predictions are restored to the subscriber balances, its in-flight
        requests return to the heads of their queues (oldest first), and
        its spliced connections are dropped from the bridge table.  The
        node's capacity leaves ``total_capacity_per_s`` implicitly, which
        re-distributes its spare share across the survivors.
        """
        now = self.env.now
        self.node_scheduler.mark_down(rpn_id, at_s=now)
        self.failures.record(now, NODE_DOWN, rpn_id, detail=silent_for_s)
        self._tm_node_down.inc()
        get_registry().emit(
            {"event": "node_down", "target": rpn_id, "at": now, "silent_for_s": silent_for_s}
        )
        self.accounting.forget_rpn(rpn_id)
        requeued = 0
        for name, items in self._in_flight.pop(rpn_id, {}).items():
            queue = self.queues.get(name)
            if queue is None:
                continue
            resurrect: List[object] = list(items)
            if self.hedges is not None:
                # Copies with a live sibling elsewhere are not requeued —
                # the hedge already is the retry.
                resurrect = self.hedges.filter_requeue(rpn_id, resurrect)
            # appendleft-ing in reverse keeps FIFO order at the head.
            for item in reversed(resurrect):
                queue.requeue(item)
            requeued += len(resurrect)
        if requeued:
            self.failures.record(now, REQUESTS_REQUEUED, rpn_id, detail=float(requeued))
        dropped = self.conntable.remove_rpn(rpn_id)
        if dropped:
            self.failures.record(
                now, CONNECTIONS_RESET, rpn_id, detail=float(len(dropped))
            )
        if self.placement is not None:
            # Promote every subscriber embedded on the dead node to a
            # backup whose capacity was reserved in advance; their
            # requeued requests re-dispatch to the new primary.
            self.placement.on_node_death(rpn_id)

    def _on_node_recovery(self, rpn_id: str) -> None:
        """Re-admit a node whose accounting stream resumed."""
        self.node_scheduler.mark_up(rpn_id)
        self.failures.record(self.env.now, NODE_UP, rpn_id)
        self._tm_node_up.inc()
        get_registry().emit(
            {"event": "node_up", "target": rpn_id, "at": self.env.now}
        )
        if self.placement is not None:
            self.placement.on_node_recovery(rpn_id)
            self._drain_deferred_placements()

    def _next_isn(self) -> int:
        self._isn = (self._isn + 128_000) % SEQ_SPACE
        return self._isn

    # -- flow-mode entry point ---------------------------------------------

    def submit_request(self, subscriber: str, request: object) -> bool:
        """Enqueue a classified request directly (flow transport)."""
        queue = self.queues.get(subscriber)
        if queue is None:
            self.ops.rejected += 1
            return False
        self.ops.enqueues += 1
        return queue.offer(request)

    # -- packet-mode entry point ------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Classify and act on one inbound frame (§3.3)."""
        self.ops.packets += 1
        self._tm_packets.inc()
        payload = packet.payload

        if payload is not None:
            # Feedback and secondary-RDN control traffic.
            if isinstance(payload, AccountingMessage):
                self.ops.feedback_messages += 1
                self.on_feedback(payload)
                return
            if isinstance(payload, HandshakeComplete):
                self._on_handshake_complete(payload)
                return

            # The RDN owns the cluster's virtual IP at layer 2: it
            # answers ARP for it so client traffic lands on the front end.
            if isinstance(payload, ArpRequest):
                if payload.target_ip == self.cluster_ip:
                    self.nic.transmit(
                        _arp_frame(
                            self.nic.mac,
                            payload.sender_mac,
                            ArpReply(
                                target_ip=self.cluster_ip, target_mac=self.nic.mac
                            ),
                        )
                    )
                return
            if isinstance(payload, ArpReply):
                return

        if packet.dst_ip != self.cluster_ip:
            return  # e.g. RPN->client traffic overheard in promiscuous mode

        # Established (spliced) connections: layer-2 bridging via the
        # connection table.
        quad = packet.quadruple()
        entry = self.conntable.lookup(quad)
        if entry is not None:
            self.ops.forwards += 1
            # Bridge to the servicing RPN.  The source MAC is rewritten to
            # the RDN's own so the switch never learns a client MAC on the
            # RDN's port (which would steer RPN->client traffic back here).
            self.nic.transmit(
                packet.copy(dst_mac=entry.rpn_mac, src_mac=self.nic.mac)
            )
            if packet.flags._value_ & _TEARDOWN_BITS:
                # The client is tearing the connection down; keep the
                # entry briefly for retransmissions, then reclaim it.
                self.env.call_later(
                    self.config.conntable_linger_s, self.conntable.remove, quad
                )
            return

        self.ops.classifications += 1
        classification = self.classifier.classify(packet)

        if classification.packet_class is PacketClass.HANDSHAKE:
            self._emulate_handshake(packet, quad)
            return

        if classification.packet_class is PacketClass.REQUEST:
            if quad not in self._half_open and quad in self._delegated:
                # HandshakeComplete from the secondary is still in flight;
                # hold the request until it lands.
                self._awaiting_handshake[quad] = packet
                return
            self._accept_request(packet, quad, classification.subscriber)
            return

        # OTHER: packets of connections whose handshake was delegated are
        # relayed to the owning secondary; bare ACKs completing a locally
        # emulated handshake are absorbed; the rest is dropped.
        delegation = self._delegated.get(quad)
        if delegation is not None:
            self.ops.forwards += 1
            self.nic.transmit(
                packet.copy(dst_mac=delegation.mac, src_mac=self.nic.mac)
            )
            return
        half = self._half_open.get(quad)
        if half is not None:
            if TCPFlags.ACK in packet.flags and packet.payload_len == 0:
                half.established = True
                self.ops.absorbed += 1
                return
            if TCPFlags.RST in packet.flags or TCPFlags.FIN in packet.flags:
                del self._half_open[quad]
                self.ops.absorbed += 1
                return
        self.ops.rejected += 1

    # -- handshake emulation (§3.3: "emulating the three-way hand-shake") ------

    def _emulate_handshake(self, packet: Packet, quad: Quadruple) -> None:
        # A connection already emulated locally (including after a failed
        # delegation) stays local: a duplicate SYN re-sends the SYN-ACK.
        if self._secondaries and quad not in self._half_open:
            self._delegate_handshake(packet, quad)
            return
        self._emulate_local(quad, packet.seq, packet.src_mac)

    def _emulate_local(
        self, quad: Quadruple, client_isn: int, client_mac: MACAddress
    ) -> None:
        """Answer the handshake from the primary itself (no offload)."""
        half = self._half_open.get(quad)
        if half is None:
            half = HalfOpenConnection(
                quad=quad,
                client_isn=client_isn,
                rdn_isn=self._next_isn(),
                client_mac=client_mac,
            )
            self._half_open[quad] = half
            self.ops.connection_setups += 1
        # (On a duplicate SYN the same SYN-ACK is re-sent.)
        synack = Packet(
            src_mac=self.nic.mac,
            dst_mac=half.client_mac,
            src_ip=self.cluster_ip,
            dst_ip=quad.src_ip,
            src_port=quad.dst_port,
            dst_port=quad.src_port,
            seq=half.rdn_isn,
            ack=(half.client_isn + 1) % SEQ_SPACE,
            flags=_SYN_ACK,
        )
        self.nic.transmit(synack)

    def _delegate_handshake(self, packet: Packet, quad: Quadruple) -> None:
        """Asymmetric RDN cluster: push handshake work to a secondary."""
        if quad in self._delegated:
            delegation = self._delegated[quad]
        else:
            target = self._secondaries[self._next_secondary % len(self._secondaries)]
            self._next_secondary += 1
            delegation = _Delegation(
                mac=target, client_isn=packet.seq, client_mac=packet.src_mac
            )
            self._delegated[quad] = delegation
            self.env.call_later(
                self.config.delegate_timeout_s, self._check_delegation, quad, target
            )
        order = DelegateHandshake(
            quad=quad, client_isn=packet.seq, client_mac=packet.src_mac
        )
        self.ops.forwards += 1
        self.nic.transmit(
            Packet(
                src_mac=self.nic.mac,
                dst_mac=delegation.mac,
                src_ip=self.cluster_ip,
                dst_ip=self.cluster_ip,
                src_port=CONTROL_PORT,
                dst_port=CONTROL_PORT,
                payload=order,
                payload_len=CONTROL_PAYLOAD_LEN,
            )
        )

    def _check_delegation(self, quad: Quadruple, mac: MACAddress) -> None:
        """Delegation timeout: the secondary never reported back.

        Fires ``delegate_timeout_s`` after each delegation.  If the
        handshake is still outstanding with the same secondary, the
        secondary takes a strike (``secondary_failure_limit`` consecutive
        strikes ejects it from the offload rotation) and the primary
        takes the handshake over itself — it beats the client's SYN
        retransmission, so the client sees nothing but a slower SYN-ACK.
        """
        delegation = self._delegated.get(quad)
        if delegation is None or delegation.mac != mac or quad in self._half_open:
            return
        now = self.env.now
        self.failures.record(now, DELEGATE_TIMEOUT, str(mac))
        strikes = self._secondary_failures.get(mac, 0) + 1
        self._secondary_failures[mac] = strikes
        if strikes >= self.config.secondary_failure_limit and mac in self._secondaries:
            self._secondaries.remove(mac)
            self.failures.record(now, SECONDARY_DOWN, str(mac), detail=float(strikes))
        del self._delegated[quad]
        self._emulate_local(quad, delegation.client_isn, delegation.client_mac)

    def revive_secondary(self, mac: MACAddress) -> None:
        """Return an ejected secondary to the offload rotation."""
        self._secondary_failures[mac] = 0
        if mac not in self._secondaries:
            self._secondaries.append(mac)
            self.failures.record(self.env.now, SECONDARY_UP, str(mac))

    def _on_handshake_complete(self, done: HandshakeComplete) -> None:
        half = HalfOpenConnection(
            quad=done.quad,
            client_isn=done.client_isn,
            rdn_isn=done.rdn_isn,
            client_mac=done.client_mac,
            established=True,
        )
        self._half_open[done.quad] = half
        delegation = self._delegated.pop(done.quad, None)
        if delegation is not None:
            # A completed handshake clears the secondary's strike count:
            # ejection requires *consecutive* timeouts.
            self._secondary_failures[delegation.mac] = 0
        self.ops.connection_setups += 1
        raced = self._awaiting_handshake.pop(done.quad, None)
        if raced is not None:
            subscriber = self.classifier.classify_payload(raced.payload)
            if subscriber is not None:
                self._accept_request(raced, done.quad, subscriber)

    # -- request admission -----------------------------------------------------

    def _accept_request(self, packet: Packet, quad: Quadruple, subscriber: str) -> None:
        half = self._half_open.get(quad)
        if half is None:
            self.ops.rejected += 1
            return
        if half.request_enqueued:
            self.ops.absorbed += 1  # client retransmission while queued
            return
        pending = PendingRequest(
            subscriber=subscriber,
            request=packet.payload,
            request_bytes=packet.payload_len,
            quad=quad,
            client_isn=half.client_isn,
            rdn_isn=half.rdn_isn,
            client_mac=half.client_mac,
            enqueued_at=self.env.now,
        )
        queue = self.queues.get(subscriber)
        if queue is None:
            self.ops.rejected += 1
            return
        half.request_enqueued = True
        self.ops.enqueues += 1
        if not queue.offer(pending):
            # Queue full: the request is dropped (Table 1's column); reset
            # the client so it fails fast instead of retransmitting.
            del self._half_open[quad]
            reset = Packet(
                src_mac=self.nic.mac,
                dst_mac=half.client_mac,
                src_ip=self.cluster_ip,
                dst_ip=quad.src_ip,
                src_port=quad.dst_port,
                dst_port=quad.src_port,
                seq=(half.rdn_isn + 1) % SEQ_SPACE,
                ack=0,
                flags=TCPFlags.RST,
            )
            self.nic.transmit(reset)

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(
        self, item: object, rpn_id: str, subscriber: str, predicted: ResourceVector
    ) -> None:
        self.ops.dispatches += 1
        self._tm_dispatches.inc()
        self._note_dispatch_latency(item, subscriber)
        self._in_flight.setdefault(rpn_id, {}).setdefault(subscriber, deque()).append(
            item
        )
        if isinstance(item, PendingRequest):
            self._dispatch_packet_mode(item, rpn_id)
            return
        if self.flow_dispatch is None:
            raise RuntimeError("no flow_dispatch installed for flow-mode request")
        if self.hedges is not None:
            # Track *before* delivery so an instantaneous completion
            # (zero-cost request) still finds its entry.
            self.hedges.on_primary_dispatch(item, rpn_id, subscriber, predicted)
        self.flow_dispatch(item, rpn_id, subscriber)

    # -- hedging hooks (flow mode only) -------------------------------------------

    def _pick_clone_node(
        self, item: object, predicted: ResourceVector, exclude: frozenset
    ) -> Optional[str]:
        return self.node_scheduler.pick(predicted, request=item, exclude=exclude)

    def _charge_clone(
        self, subscriber: str, rpn_id: str, predicted: ResourceVector
    ) -> None:
        """A clone dispatch debits the ledger exactly like a primary one."""
        self.accounting.on_dispatch(subscriber, rpn_id, predicted)
        self.node_scheduler.on_dispatch(rpn_id, predicted)

    def _refund_clone(
        self, subscriber: str, rpn_id: str, predicted: ResourceVector
    ) -> bool:
        refunded = self.accounting.on_cancel(subscriber, rpn_id, predicted)
        if refunded:
            # The cancelled copy will never be reported complete, so its
            # share of the node's outstanding window is released here.
            self.node_scheduler.on_feedback(rpn_id, predicted)
        return refunded

    def _dispatch_clone(self, item: object, rpn_id: str, subscriber: str) -> None:
        self.ops.dispatches += 1
        self._tm_dispatches.inc()
        self._in_flight.setdefault(rpn_id, {}).setdefault(subscriber, deque()).append(
            item
        )
        if self.flow_dispatch is not None:
            self.flow_dispatch(item, rpn_id, subscriber)

    def _cancel_service(self, item: object, rpn_id: str) -> bool:
        if self.cancel_service is None:
            return False
        return self.cancel_service(item, rpn_id)

    def _discard_in_flight(self, item: object, rpn_id: str, subscriber: str) -> None:
        """Remove one cancelled copy from in-flight tracking, by identity."""
        items = self._in_flight.get(rpn_id, {}).get(subscriber)
        if not items:
            return
        for index, queued in enumerate(items):
            if queued is item:
                del items[index]
                return

    def _note_dispatch_latency(self, item: object, subscriber: str) -> None:
        """Histogram the queue-wait of one dispatched request."""
        enqueued = getattr(item, "enqueued_at", None)
        if enqueued is None:
            enqueued = getattr(item, "issued_at", None)
        if enqueued is None:
            return
        histogram = self._tm_dispatch_latency.get(subscriber)
        if histogram is None:
            histogram = get_registry().histogram(
                "repro.core.dispatch_latency_s", subscriber=subscriber
            )
            self._tm_dispatch_latency[subscriber] = histogram
        histogram.observe(max(0.0, self.env.now - enqueued))

    def _dispatch_packet_mode(self, pending: PendingRequest, rpn_id: str) -> None:
        rpn_mac = self._rpn_macs[rpn_id]
        rpn_ip = self._rpn_ips[rpn_id]
        self.conntable.insert(pending.quad, rpn_id, rpn_mac)
        self._half_open.pop(pending.quad, None)
        order = DispatchOrder(
            subscriber=pending.subscriber,
            request=pending.request,
            request_bytes=pending.request_bytes,
            quad=pending.quad,
            client_isn=pending.client_isn,
            rdn_isn=pending.rdn_isn,
            client_mac=pending.client_mac,
        )
        self.nic.transmit(
            Packet(
                src_mac=self.nic.mac,
                dst_mac=rpn_mac,
                src_ip=self.cluster_ip,
                dst_ip=rpn_ip,
                src_port=CONTROL_PORT,
                dst_port=CONTROL_PORT,
                payload=order,
                payload_len=CONTROL_PAYLOAD_LEN + pending.request_bytes,
            )
        )

    # -- feedback ----------------------------------------------------------------

    def on_feedback(self, message: AccountingMessage) -> None:
        """Apply an RPN accounting message (both transports).

        The message doubles as the node's heartbeat: its arrival updates
        the failure detector's watch, and a message from a node currently
        marked down re-admits it (with drained state) first, so the
        feedback below lands on a live account.
        """
        status = self.node_scheduler.get(message.rpn_id)
        if status is not None and not status.up:
            self._on_node_recovery(message.rpn_id)
        self._last_feedback[message.rpn_id] = self.env.now
        self._tm_feedback.inc()
        self._tm_report_lag.observe(message.age_s(self.env.now))
        self.scheduler.apply_feedback(message)
        per_node = self._in_flight.get(message.rpn_id)
        for name, report in message.per_subscriber.items():
            if per_node is not None and report.completed:
                items = per_node.get(name)
                if items:
                    for _ in range(min(report.completed, len(items))):
                        items.popleft()
            if report.completed:
                self.completion_log.append(
                    (message.cycle_end_s, name, report.completed)
                )
