"""A sharded control plane: partitioned schedulers under a global allocator.

The paper's RDN runs the credit-based WRR scheduler as a single instance
(§3.3-3.4).  This module partitions that control plane so it can run as
N independent instances — simulation shards or proxy worker processes —
while keeping the *global* per-subscriber GRPS guarantee:

- :class:`ShardMap` — stable subscriber→shard hashing, so any component
  can compute a subscriber's home shard without coordination;
- :class:`GlobalAllocator` — the paper's spare-capacity redistribution
  run *across shards* each accounting cycle: unused per-shard credits
  flow back and are re-granted in GRPS proportion — the same WRR
  invariant, one level up.  Credit is conserved: every rebalance's
  grants sum exactly to its reclaims (plus any carry reclaimed from a
  dead shard);
- :class:`SchedulerShard` / :class:`ShardedScheduler` — one partition's
  full queue/accounting/scheduler stack, and the facade that runs K of
  them with the allocator in the loop.

With one shard the allocator is a no-op by construction: cross-shard
redistribution only moves credit *between* shards, and the in-shard
spare pass already implements the paper's single-RDN spare pool.  That
is what makes the ``workers=1`` path decision-identical to the legacy
single-instance scheduler (pinned by a fixed-seed test and the golden
digest).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.accounting import RDNAccounting
from repro.core.config import GageConfig
from repro.core.credit import CreditLedger
from repro.core.feedback import AccountingMessage
from repro.core.grps import ResourceVector
from repro.core.node_scheduler import NodeScheduler
from repro.core.queues import SubscriberQueues
from repro.core.scheduler import RequestScheduler, ScheduleDecision
from repro.core.subscriber import Subscriber

#: Invoked for every dispatched request as (request, rpn_id, subscriber,
#: predicted) — the dispatch-time prediction rides along so downstream
#: layers (hedging, retries) can refund it on cancellation.
DispatchFn = Callable[[object, str, str, ResourceVector], None]


class ShardMap:
    """Stable subscriber→shard assignment by cryptographic hash.

    The assignment depends only on the subscriber name and the shard
    count, never on registration order or process identity, so the RDN,
    the proxy supervisor, and every worker agree on it without a
    directory service.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.num_shards = num_shards

    def shard_of(self, subscriber: str) -> int:
        """The home shard of one subscriber (0 .. num_shards-1)."""
        digest = hashlib.sha256(subscriber.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def assignments(self, names: Iterable[str]) -> Dict[str, int]:
        """name → shard for every given subscriber."""
        return {name: self.shard_of(name) for name in names}

    def partition(self, names: Iterable[str]) -> List[List[str]]:
        """The given names grouped by shard, input order preserved."""
        groups: List[List[str]] = [[] for _ in range(self.num_shards)]
        for name in names:
            groups[self.shard_of(name)].append(name)
        return groups


@dataclass(frozen=True)
class ShardCreditReport:
    """One shard's per-accounting-cycle credit report.

    ``unused`` is the credit the shard offers back to the global pool —
    positive balance its idle subscribers are hoarding beyond one
    cycle's refill.  ``backlog`` is the pending-request depth per
    subscriber (only backlogged entries matter to the allocator).
    """

    shard_id: int
    unused: Mapping[str, ResourceVector] = field(default_factory=dict)
    backlog: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class CreditGrant:
    """The allocator's answer to one shard for one accounting cycle.

    ``reclaims`` debits exactly what the shard offered as unused;
    ``grants`` credits its share of the redistributed pool.  Applying
    both (grant minus reclaim per subscriber) is one atomic balance
    adjustment.
    """

    grants: Mapping[str, ResourceVector] = field(default_factory=dict)
    reclaims: Mapping[str, ResourceVector] = field(default_factory=dict)

    def net(self) -> Dict[str, ResourceVector]:
        """Per-subscriber grant minus reclaim."""
        out: Dict[str, ResourceVector] = {}
        for name, vec in self.grants.items():
            out[name] = vec
        for name, vec in self.reclaims.items():
            out[name] = out.get(name, ResourceVector.ZERO) - vec
        return out


def _is_zero(vec: ResourceVector) -> bool:
    return vec.cpu_s == 0.0 and vec.disk_s == 0.0 and vec.net_bytes == 0.0


class GlobalAllocator:
    """Cross-shard spare-capacity redistribution (the hierarchy's top level).

    Each accounting cycle every shard reports the credit its idle
    subscribers are hoarding (``unused``) and its per-subscriber
    backlog.  The allocator reclaims the offered credit and re-grants
    it in two passes:

    1. **same-subscriber rebalancing** — a subscriber's unused credit on
       idle shards moves to the shards where that subscriber is
       backlogged (backlog-weighted).  This preserves each subscriber's
       *global* credit exactly while chasing the load — the fix for
       connection-level skew across ``SO_REUSEPORT`` workers;
    2. **cross-subscriber spare** — credit of subscribers idle on every
       shard becomes global spare, re-granted to backlogged
       (shard, subscriber) pairs weighted by the subscriber's GRPS
       reservation: "whatever spare resource remains ... is then
       distributed in a weighted fashion ... according to their resource
       reservations" (§3.4), one level up.

    If nothing is backlogged anywhere, each shard's offer is granted
    straight back (a net no-op), so credit is never destroyed.  The
    conservation invariant — Σ grants == Σ reclaims + carry consumed —
    holds for every rebalance and is pinned by a test.
    """

    def __init__(self, reservations: Mapping[str, float]) -> None:
        self.reservations: Dict[str, float] = dict(reservations)
        #: Credit reclaimed from dead shards, merged into the next
        #: rebalance's pool (the supervisor's worker-restart path).
        self._carry: Dict[str, ResourceVector] = {}
        self.rebalances = 0

    # -- subscriber churn ----------------------------------------------------

    def set_reservation(self, name: str, reservation_grps: float) -> None:
        """Admit (or update) one subscriber's spare-share weight."""
        self.reservations[name] = reservation_grps

    def remove_reservation(self, name: str) -> None:
        """Drop a departed subscriber from the spare-share weighting.

        Any carry still held for the name keeps riding the next
        rebalance — that credit was reclaimed from a live balance and is
        never destroyed; it lands via pass-1 if the name is ever
        backlogged again, or dissolves into spare otherwise.
        """
        self.reservations.pop(name, None)

    # -- dead-shard path ----------------------------------------------------

    def reclaim(self, balances: Mapping[str, ResourceVector]) -> None:
        """Fold a dead shard's outstanding credit back into the pool.

        Called by the supervisor when a worker is declared dead: the
        grants that worker was holding must not evaporate, so they ride
        the next rebalance to the surviving (or restarted) shards.
        """
        for name, vec in balances.items():
            positive = vec.clamped_min(0.0)
            if _is_zero(positive):
                continue
            self._carry[name] = self._carry.get(name, ResourceVector.ZERO) + positive

    def carry_total(self) -> ResourceVector:
        """Credit currently waiting to re-enter the pool."""
        total = ResourceVector.ZERO
        for vec in self._carry.values():
            total = total + vec
        return total

    # -- the per-accounting-cycle rebalance ---------------------------------

    def rebalance(
        self, reports: Iterable[ShardCreditReport]
    ) -> Dict[int, CreditGrant]:
        """One cross-shard redistribution round; returns grants per shard."""
        self.rebalances += 1
        ordered = sorted(reports, key=lambda r: r.shard_id)
        reclaims: Dict[int, Dict[str, ResourceVector]] = {}
        grants: Dict[int, Dict[str, ResourceVector]] = {}
        #: name → summed credit offered back this round (reports only).
        pool: Dict[str, ResourceVector] = {}
        #: name → [(shard_id, backlog), ...] over backlogged shards.
        demand: Dict[str, List[Tuple[int, int]]] = {}
        for report in ordered:
            reclaims[report.shard_id] = {}
            grants[report.shard_id] = {}
            for name, vec in sorted(report.unused.items()):
                offered = vec.clamped_min(0.0)
                if _is_zero(offered):
                    continue
                reclaims[report.shard_id][name] = offered
                pool[name] = pool.get(name, ResourceVector.ZERO) + offered
            for name, depth in sorted(report.backlog.items()):
                if depth > 0:
                    demand.setdefault(name, []).append((report.shard_id, depth))

        any_backlog = bool(demand)
        if not any_backlog:
            # Nobody anywhere can spend redistributed credit: hand every
            # shard's offer straight back (net no-op) and keep the carry
            # for a cycle when someone is backlogged.
            for shard_id, offered_map in reclaims.items():
                grants[shard_id] = dict(offered_map)
            return {
                shard_id: CreditGrant(grants=grants[shard_id], reclaims=reclaims[shard_id])
                for shard_id in grants
            }

        # The carry from dead shards re-enters the pool now that there is
        # at least one backlogged recipient.
        for name, vec in sorted(self._carry.items()):
            if _is_zero(vec):
                continue
            pool[name] = pool.get(name, ResourceVector.ZERO) + vec
        self._carry.clear()

        # Pass 1: same-subscriber rebalancing, backlog-weighted.
        spare = ResourceVector.ZERO
        for name in sorted(pool):
            amount = pool[name]
            recipients = demand.get(name)
            if not recipients:
                spare = spare + amount
                continue
            total_depth = float(sum(depth for _, depth in recipients))
            for shard_id, depth in recipients:
                share = amount.scaled(depth / total_depth)
                shard_grants = grants.setdefault(shard_id, {})
                shard_grants[name] = (
                    shard_grants.get(name, ResourceVector.ZERO) + share
                )

        # Pass 2: cross-subscriber spare in GRPS proportion over the
        # backlogged (shard, subscriber) pairs.
        if not _is_zero(spare):
            pairs: List[Tuple[int, str, float]] = []
            for name in sorted(demand):
                weight = self.reservations.get(name, 0.0)
                total_depth = float(sum(depth for _, depth in demand[name]))
                for shard_id, depth in demand[name]:
                    pairs.append((shard_id, name, weight * depth / total_depth))
            total_weight = sum(weight for _, _, weight in pairs)
            if total_weight <= 0.0:
                # All-zero reservations: equal shares, mirroring the
                # in-shard degenerate case.
                pairs = [(sid, name, 1.0) for sid, name, _ in pairs]
                total_weight = float(len(pairs))
            for shard_id, name, weight in pairs:
                share = spare.scaled(weight / total_weight)
                shard_grants = grants.setdefault(shard_id, {})
                shard_grants[name] = (
                    shard_grants.get(name, ResourceVector.ZERO) + share
                )

        return {
            shard_id: CreditGrant(
                grants=grants.get(shard_id, {}), reclaims=reclaims.get(shard_id, {})
            )
            for shard_id in grants
        }


class SchedulerShard:
    """One partition's full control-plane stack.

    Owns the partitioned :class:`SubscriberQueues`,
    :class:`RDNAccounting`, :class:`CreditLedger`, and
    :class:`RequestScheduler` for one subset of the subscribers, plus
    its (capacity-sliced) :class:`NodeScheduler` view of the cluster.
    """

    def __init__(
        self,
        shard_id: int,
        subscribers: List[Subscriber],
        config: GageConfig,
        node_scheduler: NodeScheduler,
        dispatch_fn: DispatchFn,
    ) -> None:
        self.shard_id = shard_id
        self.config = config
        names = [subscriber.name for subscriber in subscribers]
        # One SubscriberTable per shard spans its queues and accounting,
        # so both resolve a name to the same dense interned id (and the
        # scheduler runs its lazy O(active) walk).
        self.queues = SubscriberQueues(partition=names)
        self.accounting = RDNAccounting(partition=names, table=self.queues.table)
        self.node_scheduler = node_scheduler
        self.ledger = CreditLedger(config)
        self.scheduler = RequestScheduler(
            config,
            self.queues,
            self.accounting,
            node_scheduler,
            dispatch_fn=dispatch_fn,
            ledger=self.ledger,
            partition=names,
        )
        for subscriber in subscribers:
            self.queues.register(subscriber)
            self.accounting.register(subscriber)

    # -- subscriber churn ----------------------------------------------------

    def add_subscriber(self, subscriber: Subscriber) -> None:
        """Admit one subscriber into this shard mid-run (churn)."""
        self.queues.extend_partition(subscriber.name)
        self.accounting.extend_partition(subscriber.name)
        # The scheduler's registration hook extends its own partition.
        self.queues.register(subscriber)
        self.accounting.register(subscriber)

    def remove_subscriber(self, name: str) -> bool:
        """Remove one subscriber from this shard mid-run (churn).

        Pending requests are dropped; outstanding predictions fold into
        the accounting's ``total_forgotten`` so the conservation
        invariant (Σ charged == Σ backed out + refunded + forgotten +
        pending) survives the departure.
        """
        if name not in self.queues:
            return False
        self.accounting.unregister(name)
        self.queues.unregister(name)
        return True

    def offer(self, name: str, request: object) -> bool:
        """Enqueue one classified request (False = dropped/unknown)."""
        queue = self.queues.get(name)
        if queue is None:
            return False
        return queue.offer(request)

    def run_cycle(self) -> List[ScheduleDecision]:
        """One WRR scheduling cycle over this shard's queues."""
        return self.scheduler.run_cycle()

    def apply_feedback(self, message: AccountingMessage) -> None:
        """Apply one accounting message (already filtered to this shard)."""
        self.scheduler.apply_feedback(message)

    # -- hierarchical-credit hooks ------------------------------------------

    def credit_report(self) -> ShardCreditReport:
        """This shard's offer to the global allocator.

        An idle subscriber (no backlog) offers the positive balance it
        hoards beyond one cycle's refill — the next refill keeps it
        serving an arriving burst until the following grant round.
        """
        unused: Dict[str, ResourceVector] = {}
        backlog: Dict[str, int] = {}
        for queue in self.queues:
            name = queue.subscriber.name
            depth = len(queue)
            if depth > 0:
                backlog[name] = depth
                continue
            credit, _capped = self.ledger.cycle_credit(queue.subscriber)
            balance = self.accounting.account(name).balance
            offer = (balance - credit).clamped_min(0.0)
            if not _is_zero(offer):
                unused[name] = offer
        return ShardCreditReport(self.shard_id, unused=unused, backlog=backlog)

    def apply_grant(self, grant: CreditGrant) -> None:
        """Apply one allocator answer as atomic balance adjustments."""
        for name, delta in grant.net().items():
            if self.queues.get(name) is None or _is_zero(delta):
                continue
            self.accounting.credit(name, delta)


class ShardedScheduler:
    """K partitioned control-plane instances behind one facade.

    Subscribers are hash-partitioned by :class:`ShardMap`; each shard's
    :class:`NodeScheduler` sees every node at ``1/K`` of its capacity so
    the shards' combined view equals the whole cluster.  Each accounting
    cycle, :meth:`run_accounting_cycle` routes the shards' credit
    reports through the :class:`GlobalAllocator` and applies the grants.
    """

    def __init__(
        self,
        subscribers: List[Subscriber],
        node_capacities: Mapping[str, ResourceVector],
        config: Optional[GageConfig] = None,
        num_shards: int = 1,
        dispatch_fn: Optional[DispatchFn] = None,
    ) -> None:
        self.config = config if config is not None else GageConfig()
        self.shard_map = ShardMap(num_shards)
        self.allocator = GlobalAllocator(
            {subscriber.name: subscriber.reservation_grps for subscriber in subscribers}
        )
        self._dispatch_fn: DispatchFn = dispatch_fn if dispatch_fn is not None else (
            lambda request, rpn_id, name, predicted: None
        )
        by_name = {subscriber.name: subscriber for subscriber in subscribers}
        groups = self.shard_map.partition(list(by_name))
        self.shards: List[SchedulerShard] = []
        fraction = 1.0 / num_shards
        window_s = self.config.dispatch_window_s
        if window_s is None:  # GageConfig post-init always sets it
            window_s = 0.25
        for shard_id in range(num_shards):
            node_scheduler = NodeScheduler(
                policy=self.config.node_policy, window_s=window_s
            )
            for rpn_id, capacity in node_capacities.items():
                node_scheduler.add_node(rpn_id, capacity.scaled(fraction))
            self.shards.append(
                SchedulerShard(
                    shard_id,
                    [by_name[name] for name in groups[shard_id]],
                    self.config,
                    node_scheduler,
                    self._dispatch_fn,
                )
            )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, name: str) -> SchedulerShard:
        """The shard that owns one subscriber."""
        return self.shards[self.shard_map.shard_of(name)]

    # -- subscriber churn ----------------------------------------------------

    def add_subscriber(self, subscriber: Subscriber) -> SchedulerShard:
        """Admit one subscriber mid-run; returns its home shard."""
        shard = self.shard_for(subscriber.name)
        shard.add_subscriber(subscriber)
        self.allocator.set_reservation(
            subscriber.name, subscriber.reservation_grps
        )
        return shard

    def remove_subscriber(self, name: str) -> bool:
        """Remove one subscriber mid-run (requests dropped, id reused)."""
        removed = self.shard_for(name).remove_subscriber(name)
        if removed:
            self.allocator.remove_reservation(name)
        return removed

    def offer(self, name: str, request: object) -> bool:
        """Route one request to its home shard's queue."""
        return self.shard_for(name).offer(name, request)

    def run_cycle(self) -> List[ScheduleDecision]:
        """One scheduling cycle across every shard, in shard order."""
        decisions: List[ScheduleDecision] = []
        for shard in self.shards:
            decisions.extend(shard.run_cycle())
        return decisions

    def apply_feedback(self, message: AccountingMessage) -> None:
        """Split one RPN accounting message across the owning shards."""
        if self.num_shards == 1:
            self.shards[0].apply_feedback(message)
            return
        per_shard: Dict[int, Dict[str, object]] = {}
        for name, report in message.per_subscriber.items():
            per_shard.setdefault(self.shard_map.shard_of(name), {})[name] = report
        for shard_id, reports in per_shard.items():
            self.shards[shard_id].apply_feedback(
                AccountingMessage(
                    rpn_id=message.rpn_id,
                    cycle_start_s=message.cycle_start_s,
                    cycle_end_s=message.cycle_end_s,
                    total_usage=message.total_usage,
                    per_subscriber=dict(reports),  # type: ignore[arg-type]
                )
            )

    def run_accounting_cycle(self) -> Dict[int, CreditGrant]:
        """One cross-shard credit redistribution round.

        A no-op with one shard: there is nothing to move *between*
        shards, and the in-shard spare pass already implements the
        paper's single-RDN spare pool — which is exactly what keeps the
        1-shard path decision-identical to the legacy scheduler.
        """
        if self.num_shards == 1:
            return {}
        reports = [shard.credit_report() for shard in self.shards]
        answers = self.allocator.rebalance(reports)
        for shard in self.shards:
            grant = answers.get(shard.shard_id)
            if grant is not None:
                shard.apply_grant(grant)
        return answers
