"""TCP connection splicing remap rules (§3.2 of the paper).

Gage splices two TCP connections into one:

- the *first-leg* connection, client ⇄ RDN, characterized by
  ``<ClientIP, ClientPort, ClientSeq, RDN_IP, 80, RDN_Seq>``;
- the *second-leg* connection, client ⇄ RPN (set up locally at the RPN by
  the local service manager), characterized by
  ``<ClientIP, ClientPort, ClientSeq, RPN_IP, 80, RPN_Seq>``.

The client's address, port, and sequence numbers are identical on both
legs; only the server-side IP and initial sequence number differ.  The
splice therefore reduces to two rewrites performed at the RPN:

- **outgoing** (RPN → client): source IP becomes the cluster-wide RDN IP
  and the server sequence number is shifted by
  ``delta = RDN_ISN − RPN_ISN`` (mod 2³²), so the packet appears to
  continue the first-leg connection;
- **incoming** (client → RPN): destination IP becomes the RPN's real IP
  and the client's ACK number is shifted by ``−delta``, fooling the RPN's
  TCP stack into thinking the packet was always addressed to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import IPAddress, MACAddress
from repro.net.conn import Quadruple
from repro.net.packet import SEQ_SPACE, Packet, TCPFlags


@dataclass
class SpliceRule:
    """The per-connection remapping state held by a local service manager.

    Parameters
    ----------
    client_quad:
        The connection as the client sees it (src = client, dst = cluster).
    cluster_ip:
        The single public IP of the whole cluster (the RDN's IP).
    rpn_ip:
        The real IP of the RPN servicing this connection.
    rdn_isn:
        The ISN the RDN chose when it emulated the first-leg handshake.
    rpn_isn:
        The ISN the RPN's own TCP stack chose on the second-leg handshake.
    client_mac:
        Where outgoing frames should be addressed at layer 2 (the client,
        or the router towards it).
    """

    client_quad: Quadruple
    cluster_ip: IPAddress
    rpn_ip: IPAddress
    rdn_isn: int
    rpn_isn: int
    client_mac: MACAddress
    rpn_mac: MACAddress
    #: Packets remapped in each direction (observability).
    outgoing_remapped: int = field(default=0)
    incoming_remapped: int = field(default=0)

    @property
    def seq_delta(self) -> int:
        """``RDN_ISN − RPN_ISN`` in sequence space."""
        return (self.rdn_isn - self.rpn_isn) % SEQ_SPACE

    def matches_incoming(self, packet: Packet) -> bool:
        """True if ``packet`` is a client→cluster packet of this splice."""
        return (
            packet.src_ip == self.client_quad.src_ip
            and packet.src_port == self.client_quad.src_port
            and packet.dst_ip == self.client_quad.dst_ip
            and packet.dst_port == self.client_quad.dst_port
        )

    def matches_outgoing(self, packet: Packet) -> bool:
        """True if ``packet`` is an RPN→client packet of this splice."""
        return (
            packet.dst_ip == self.client_quad.src_ip
            and packet.dst_port == self.client_quad.src_port
            and packet.src_ip == self.rpn_ip
            and packet.src_port == self.client_quad.dst_port
        )

    def remap_incoming(self, packet: Packet) -> Packet:
        """Rewrite a client→cluster packet for the RPN's local stack."""
        self.incoming_remapped += 1
        ack = packet.ack
        if TCPFlags.ACK in packet.flags:
            ack = (packet.ack - self.seq_delta) % SEQ_SPACE
        return packet.copy(
            dst_ip=self.rpn_ip,
            dst_mac=self.rpn_mac,
            ack=ack,
        )

    def remap_outgoing(self, packet: Packet) -> Packet:
        """Rewrite an RPN→client packet to impersonate the cluster IP."""
        self.outgoing_remapped += 1
        return packet.copy(
            src_ip=self.cluster_ip,
            seq=(packet.seq + self.seq_delta) % SEQ_SPACE,
            dst_mac=self.client_mac,
        )
