"""Point-to-point network interfaces and links.

An :class:`Interface` is one end of a full-duplex link: it owns a bounded
transmit queue and a transmit process that serializes one frame at a time
at the configured bandwidth, then delivers to the peer interface after the
propagation latency.  Loss injection (for failure tests) drops frames
after serialization with a configurable probability.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.engine import Environment
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet

#: Default: Fast Ethernet, as in the paper's testbed.
DEFAULT_BANDWIDTH_BPS = 100e6
#: One switch hop of propagation/forwarding latency.
DEFAULT_LATENCY_S = 20e-6
#: Default transmit queue depth, in frames.
DEFAULT_QUEUE_FRAMES = 512

ReceiveHook = Callable[["Packet", "Interface"], None]


class Interface:
    """One end of a full-duplex link."""

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        latency_s: float = DEFAULT_LATENCY_S,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
        loss_rate: float = 0.0,
        loss_rng: Optional[random.Random] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must lie in [0, 1)")
        self.env = env
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.loss_rate = float(loss_rate)
        self._loss_rng = loss_rng or random.Random(0)
        self.peer: Optional[Interface] = None
        #: Administrative state: a downed interface neither transmits nor
        #: receives (frames are counted as losses) — failure injection.
        self.up = True
        #: Called with (packet, this interface) on frame arrival.
        self.on_receive: Optional[ReceiveHook] = None
        self._queue = Store(env, capacity=queue_frames)
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.dropped_full = 0
        self.dropped_loss = 0
        env.process(self._tx_loop())

    def __repr__(self) -> str:
        return "<Interface {} tx={} rx={}>".format(self.name, self.tx_frames, self.rx_frames)

    def connect(self, other: "Interface") -> None:
        """Wire this interface and ``other`` as the two ends of one link."""
        if self.peer is not None or other.peer is not None:
            raise RuntimeError("interface already connected")
        self.peer = other
        other.peer = self

    @property
    def queue_depth(self) -> int:
        """Frames currently waiting to be serialized."""
        return len(self._queue)

    def send(self, packet: "Packet") -> bool:
        """Queue a frame for transmission; False (and a drop) if full."""
        if self._queue.try_put(packet):
            return True
        self.dropped_full += 1
        return False

    def serialization_delay(self, packet: "Packet") -> float:
        """Seconds needed to clock the frame onto the wire."""
        return packet.total_len * 8.0 / self.bandwidth_bps

    def _tx_loop(self):
        while True:
            packet = yield self._queue.get()
            yield self.env.timeout(self.serialization_delay(packet))
            self.tx_frames += 1
            self.tx_bytes += packet.total_len
            if self.peer is None:
                continue
            if not self.up:
                self.dropped_loss += 1
                continue
            if self.loss_rate and self._loss_rng.random() < self.loss_rate:
                self.dropped_loss += 1
                continue
            self.env.call_later(self.latency_s, self.peer._deliver, packet)

    def _deliver(self, packet: "Packet") -> None:
        if not self.up:
            self.dropped_loss += 1
            return
        self.rx_frames += 1
        self.rx_bytes += packet.total_len
        if self.on_receive is not None:
            self.on_receive(packet, self)
