"""A simplified TCP implementation for the packet-level simulator.

Implements what Gage's splicing machinery exercises: the three-way
handshake, MSS-segmented data transfer with cumulative ACKs, out-of-order
buffering, optional timeout retransmission (for loss-injection tests),
and FIN/RST teardown.  Sequence numbers live in the full 32-bit modular
space so the splicing delta arithmetic is tested for real.

Congestion and flow control are intentionally absent: the paper's testbed
switch is uncontended ("network contention effect is negligible", §4) and
Gage operates above TCP's transmission policy.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Dict, List, Optional, Tuple

from repro.net.addresses import IPAddress, MACAddress
from repro.net.conn import Quadruple
from repro.net.packet import SEQ_SPACE, Packet, TCPFlags
from repro.sim.engine import Environment
from repro.sim.events import Event

#: Raw flag bits for the segment fast path: ``IntFlag.__contains__`` and
#: ``__or__`` allocate enum machinery per check, a measurable share of
#: per-segment cost in the state machine.
_SYN_BIT = TCPFlags.SYN._value_
_ACK_BIT = TCPFlags.ACK._value_
_RST_BIT = TCPFlags.RST._value_
_FIN_BIT = TCPFlags.FIN._value_
_SYN_ACK = TCPFlags.SYN | TCPFlags.ACK
_FIN_ACK = TCPFlags.FIN | TCPFlags.ACK

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.nic import NIC, FrameFilter

#: Maximum segment size (Ethernet MTU 1500 - 40 bytes of IP/TCP headers).
DEFAULT_MSS = 1460


def seq_add(seq: int, delta: int) -> int:
    """Sequence-space addition (mod 2**32)."""
    return (seq + delta) % SEQ_SPACE


def seq_lt(a: int, b: int) -> bool:
    """True if ``a`` precedes ``b`` in sequence space (RFC 1982 style)."""
    return a != b and ((b - a) % SEQ_SPACE) < (SEQ_SPACE // 2)


def seq_leq(a: int, b: int) -> bool:
    """True if ``a`` equals or precedes ``b`` in sequence space."""
    return a == b or seq_lt(a, b)


class TCPState(enum.Enum):
    """Connection states (the subset this simulator traverses)."""

    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSING = "CLOSING"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"
    CLOSED = "CLOSED"


class ConnectionError_(Exception):
    """A connection failed (reset, or retransmission gave up)."""


class _EOF:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<EOF>"


class Connection:
    """One TCP connection endpoint.

    Application code uses :meth:`send`, :meth:`receive`, and :meth:`close`;
    each returns a simulation event.  ``receive`` yields
    ``(payload, length)`` tuples per arriving segment (the sender's payload
    object rides on the final segment of each :meth:`send`), or
    :data:`Connection.EOF` after the peer's FIN.
    """

    #: Sentinel delivered to receivers when the peer closes.
    EOF: ClassVar[_EOF] = _EOF()

    def __init__(self, stack: "HostStack", quad: Quadruple, isn: int) -> None:
        self.stack = stack
        self.env: Environment = stack.env
        self.quad = quad
        self.state = TCPState.CLOSED
        self.snd_isn = isn
        self.snd_nxt = isn
        self.snd_una = isn
        self.rcv_isn: Optional[int] = None
        self.rcv_nxt: Optional[int] = None
        #: Fires with this connection once the handshake completes.
        self.established: Event = Event(self.env)
        #: Fires once the connection reaches CLOSED.
        self.closed: Event = Event(self.env)
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Free-form annotations (used by Gage to tag subscriber/request).
        self.user_data: Dict[str, object] = {}
        self._recv_ready: List[Tuple[object, int]] = []
        self._recv_waiters: List[Event] = []
        self._ooo: Dict[int, Packet] = {}
        self._send_waiters: List[Tuple[int, Event]] = []
        self._fin_sent = False
        self._eof_delivered = False
        self._failed: Optional[BaseException] = None

    def __repr__(self) -> str:
        return "<Connection {} {}>".format(self.quad, self.state.value)

    # -- application interface -----------------------------------------

    def send(self, length: int, payload: object = None) -> Event:
        """Transmit ``length`` bytes; event fires when fully acknowledged.

        ``payload`` (an arbitrary object standing for the bytes) is carried
        on the final segment so the receiver can recover application-level
        framing without the simulator materializing buffers.
        """
        if self.state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            raise ConnectionError_(
                "send on connection in state {}".format(self.state.value)
            )
        if length <= 0:
            raise ValueError("send length must be positive")
        mss = self.stack.mss
        done = Event(self.env)
        offset = 0
        while offset < length:
            chunk = min(mss, length - offset)
            last = offset + chunk >= length
            packet = self.stack._make_packet(
                self.quad,
                flags=TCPFlags.ACK | (TCPFlags.PSH if last else TCPFlags.NONE),
                seq=self.snd_nxt,
                ack=self.rcv_nxt or 0,
                payload=payload if last else None,
                payload_len=chunk,
            )
            self.snd_nxt = seq_add(self.snd_nxt, chunk)
            offset += chunk
            self.stack._transmit(packet)
            self.stack._arm_retransmit(self, packet)
        self._send_waiters.append((self.snd_nxt, done))
        self.bytes_sent += length
        return done

    def receive(self) -> Event:
        """Event firing with the next ``(payload, length)`` chunk or EOF."""
        event = Event(self.env)
        if self._failed is not None:
            event.fail(self._failed)
        elif self._recv_ready:
            event.succeed(self._recv_ready.pop(0))
        elif self._eof_delivered:
            event.succeed((Connection.EOF, 0))
        else:
            self._recv_waiters.append(event)
        return event

    def close(self) -> Event:
        """Send FIN (half-close); returns the :attr:`closed` event."""
        if self.state is TCPState.ESTABLISHED:
            self._send_fin()
            self._set_state(TCPState.FIN_WAIT_1)
        elif self.state is TCPState.CLOSE_WAIT:
            self._send_fin()
            self._set_state(TCPState.LAST_ACK)
        elif self.state in (TCPState.SYN_SENT, TCPState.SYN_RCVD):
            self._enter_closed()
        return self.closed

    def abort(self) -> None:
        """Send RST and tear the connection down immediately."""
        if self.state not in (TCPState.CLOSED, TCPState.TIME_WAIT):
            packet = self.stack._make_packet(
                self.quad,
                flags=TCPFlags.RST,
                seq=self.snd_nxt,
                ack=self.rcv_nxt or 0,
            )
            self.stack._transmit(packet)
        self._fail(ConnectionError_("connection aborted locally"))

    # -- internals -------------------------------------------------------

    def _send_fin(self) -> None:
        packet = self.stack._make_packet(
            self.quad,
            flags=_FIN_ACK,
            seq=self.snd_nxt,
            ack=self.rcv_nxt or 0,
        )
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self._fin_sent = True
        self.stack._transmit(packet)
        self.stack._arm_retransmit(self, packet)

    def _set_state(self, state: TCPState) -> None:
        self.state = state

    def _enter_established(self) -> None:
        self._set_state(TCPState.ESTABLISHED)
        if not self.established.triggered:
            self.established.succeed(self)

    def _enter_closed(self) -> None:
        if self.state is TCPState.CLOSED and self.closed.triggered:
            return
        self._set_state(TCPState.CLOSED)
        self.stack._forget(self)
        if not self.closed.triggered:
            self.closed.succeed(self)

    def _enter_time_wait(self) -> None:
        self._set_state(TCPState.TIME_WAIT)
        if self.stack.time_wait_s > 0:
            self.env.call_later(self.stack.time_wait_s, self._enter_closed)
        else:
            self._enter_closed()

    def _fail(self, exc: BaseException) -> None:
        self._failed = exc

        def fail_defused(event: Event) -> None:
            # A connection failure is an expected outcome, not a
            # programming error: if nobody happens to be waiting on this
            # particular event, it must not crash the event loop.
            event._defused = True
            event.fail(exc)

        for waiter in self._recv_waiters:
            fail_defused(waiter)
        self._recv_waiters.clear()
        for _end, waiter in self._send_waiters:
            if not waiter.triggered:
                fail_defused(waiter)
        self._send_waiters.clear()
        if not self.established.triggered:
            fail_defused(self.established)
        self._enter_closed()

    def _deliver(self, payload: object, length: int) -> None:
        self.bytes_received += length
        chunk = (payload, length)
        if self._recv_waiters:
            self._recv_waiters.pop(0).succeed(chunk)
        else:
            self._recv_ready.append(chunk)

    def _deliver_eof(self) -> None:
        if self._eof_delivered:
            return
        self._eof_delivered = True
        for waiter in self._recv_waiters:
            waiter.succeed((Connection.EOF, 0))
        self._recv_waiters.clear()

    def _acknowledge(self, ack: int) -> None:
        if seq_lt(self.snd_una, ack) and seq_leq(ack, self.snd_nxt):
            self.snd_una = ack
        still_waiting = []
        for end_seq, event in self._send_waiters:
            if seq_leq(end_seq, self.snd_una):
                if not event.triggered:
                    event.succeed(None)
            else:
                still_waiting.append((end_seq, event))
        self._send_waiters = still_waiting

    def _send_ack(self) -> None:
        packet = self.stack._make_packet(
            self.quad,
            flags=TCPFlags.ACK,
            seq=self.snd_nxt,
            ack=self.rcv_nxt or 0,
        )
        self.stack._transmit(packet)

    def handle(self, packet: Packet) -> None:
        """Advance the state machine with one arriving segment."""
        flag_bits = packet.flags._value_
        if flag_bits & _RST_BIT:
            self._fail(ConnectionError_("connection reset by peer"))
            return

        if self.state is TCPState.SYN_SENT:
            if flag_bits & _SYN_BIT and flag_bits & _ACK_BIT:
                if packet.ack != seq_add(self.snd_isn, 1):
                    return  # stale or bogus SYN-ACK
                self.rcv_isn = packet.seq
                self.rcv_nxt = seq_add(packet.seq, 1)
                self.snd_una = packet.ack
                self._send_ack()
                self._enter_established()
            return

        if self.state is TCPState.SYN_RCVD:
            if flag_bits & _ACK_BIT and packet.ack == self.snd_nxt:
                self.snd_una = packet.ack
                self._enter_established()
                self.stack._notify_accept(self)
                # The handshake ACK may already carry data; fall through.
            else:
                return

        if flag_bits & _ACK_BIT:
            self._acknowledge(packet.ack)
            if self.state is TCPState.FIN_WAIT_1 and self.snd_una == self.snd_nxt:
                self._set_state(TCPState.FIN_WAIT_2)
            elif self.state is TCPState.CLOSING and self.snd_una == self.snd_nxt:
                self._enter_time_wait()
            elif self.state is TCPState.LAST_ACK and self.snd_una == self.snd_nxt:
                self._enter_closed()
                return

        if packet.payload_len > 0:
            self._handle_data(packet)

        if flag_bits & _FIN_BIT:
            self._handle_fin(packet)

    def _handle_data(self, packet: Packet) -> None:
        assert self.rcv_nxt is not None
        if packet.seq == self.rcv_nxt:
            self.rcv_nxt = seq_add(self.rcv_nxt, packet.payload_len)
            self._deliver(packet.payload, packet.payload_len)
            # Drain any contiguous out-of-order segments.
            while self.rcv_nxt in self._ooo:
                buffered = self._ooo.pop(self.rcv_nxt)
                self.rcv_nxt = seq_add(self.rcv_nxt, buffered.payload_len)
                self._deliver(buffered.payload, buffered.payload_len)
            self._send_ack()
        elif seq_lt(packet.seq, self.rcv_nxt):
            self._send_ack()  # duplicate; re-ACK so the sender advances
        else:
            self._ooo[packet.seq] = packet
            self._send_ack()  # dup-ACK for the gap

    def _handle_fin(self, packet: Packet) -> None:
        if self.rcv_nxt is None or packet.seq != self.rcv_nxt:
            return  # FIN out of order; ignore (retransmission will retry)
        self.rcv_nxt = seq_add(self.rcv_nxt, 1)
        self._send_ack()
        self._deliver_eof()
        if self.state is TCPState.ESTABLISHED:
            self._set_state(TCPState.CLOSE_WAIT)
        elif self.state is TCPState.FIN_WAIT_1:
            # Peer's FIN arrived before (or with) the ACK of ours.
            if self.snd_una == self.snd_nxt:
                self._enter_time_wait()
            else:
                self._set_state(TCPState.CLOSING)
        elif self.state is TCPState.FIN_WAIT_2:
            self._enter_time_wait()


Acceptor = Callable[[Connection], None]


class HostStack:
    """Per-host TCP/IP endpoint: demultiplexing, handshakes, ARP.

    Parameters
    ----------
    env, ip, nic:
        Simulation environment, the host's IP, and its NIC.
    isn_rng:
        Callable returning initial sequence numbers (defaults to a
        deterministic counter; pass a seeded RNG's ``randrange`` for
        realistic ISNs).
    """

    def __init__(
        self,
        env: Environment,
        ip: IPAddress,
        nic: "NIC",
        isn_rng: Optional[Callable[[], int]] = None,
        mss: int = DEFAULT_MSS,
        rto_s: float = 0.2,
        max_retries: int = 8,
        retransmit: bool = True,
        time_wait_s: float = 0.0,
    ) -> None:
        self.env = env
        self.ip = ip
        self.nic = nic
        self.mss = int(mss)
        self.rto_s = float(rto_s)
        self.max_retries = int(max_retries)
        self.retransmit = bool(retransmit)
        self.time_wait_s = float(time_wait_s)
        self._isn_rng = isn_rng or self._sequential_isn()
        #: Static ARP table; unknown destinations go to ``default_mac``.
        self.arp: Dict[IPAddress, MACAddress] = {}
        self.default_mac: Optional[MACAddress] = None
        #: Optional dynamic resolver (see :mod:`repro.net.arp`): frames
        #: whose destination MAC could not be determined statically are
        #: resolved on the wire instead of broadcast.  Typed ``Any`` so the
        #: compiled build keeps it a plain boxed attribute — the resolver
        #: class lives in an uncompiled module assigned from outside.
        self.arp_service: Optional[Any] = None
        self._conns: Dict[Quadruple, Connection] = {}
        self._listeners: Dict[int, Acceptor] = {}
        self._filter: Optional["FrameFilter"] = None
        self._next_port = 10000
        self.rx_no_connection = 0
        nic.receive_handler = self._from_wire

    @staticmethod
    def _sequential_isn() -> Callable[[], int]:
        counter = [1000]

        def next_isn() -> int:
            counter[0] = (counter[0] + 64000) % SEQ_SPACE
            return counter[0]

        return next_isn

    def __repr__(self) -> str:
        return "<HostStack {} conns={}>".format(self.ip, len(self._conns))

    # -- wiring -----------------------------------------------------------

    def attach_filter(self, frame_filter: "FrameFilter") -> None:
        """Install a below-IP frame filter (Gage's LSM interposition point)."""
        self._filter = frame_filter

    @property
    def connections(self) -> Dict[Quadruple, Connection]:
        """Live connections keyed by local-view quadruple."""
        return self._conns

    def ephemeral_port(self) -> int:
        """Allocate the next client-side port."""
        port = self._next_port
        self._next_port += 1
        if self._next_port > 0xFFFF:
            self._next_port = 10000
        return port

    # -- application API ---------------------------------------------------

    def listen(self, port: int, acceptor: Acceptor) -> None:
        """Accept connections on ``port``; ``acceptor(conn)`` on establish."""
        if port in self._listeners:
            raise RuntimeError("port {} already listening".format(port))
        self._listeners[port] = acceptor

    def connect(
        self, dst_ip: IPAddress, dst_port: int, src_port: Optional[int] = None
    ) -> Connection:
        """Open a connection; wait on ``conn.established``."""
        if src_port is None:
            src_port = self.ephemeral_port()
        quad = Quadruple(self.ip, src_port, dst_ip, dst_port)
        if quad in self._conns:
            raise RuntimeError("connection already exists: {}".format(quad))
        conn = Connection(self, quad, isn=self._isn_rng())
        conn._set_state(TCPState.SYN_SENT)
        self._conns[quad] = conn
        packet = self._make_packet(
            quad, flags=TCPFlags.SYN, seq=conn.snd_nxt, ack=0
        )
        conn.snd_nxt = seq_add(conn.snd_nxt, 1)
        self._transmit(packet)
        self._arm_retransmit(conn, packet)
        return conn

    # -- packet paths -------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Deliver a packet into the stack as if it arrived from the wire,
        bypassing the frame filter (used by the local service manager)."""
        self.receive(packet)

    def _from_wire(self, packet: Packet) -> None:
        if self._filter is not None:
            filtered = self._filter.inbound(packet)
            if filtered is None:
                return
            packet = filtered
        self.receive(packet)

    def receive(self, packet: Packet) -> None:
        """Demultiplex one inbound segment."""
        if packet.dst_ip != self.ip:
            return
        key = Quadruple(packet.dst_ip, packet.dst_port, packet.src_ip, packet.src_port)
        conn = self._conns.get(key)
        if conn is not None:
            conn.handle(packet)
            return
        flag_bits = packet.flags._value_
        if flag_bits & _SYN_BIT and not flag_bits & _ACK_BIT:
            acceptor = self._listeners.get(packet.dst_port)
            if acceptor is not None:
                self._accept_syn(packet, key)
                return
        self.rx_no_connection += 1
        if not flag_bits & _RST_BIT:
            reset = self._make_packet(
                key, flags=TCPFlags.RST, seq=packet.ack, ack=0
            )
            self._transmit(reset)

    def _accept_syn(self, packet: Packet, key: Quadruple) -> None:
        conn = Connection(self, key, isn=self._isn_rng())
        conn._set_state(TCPState.SYN_RCVD)
        conn.rcv_isn = packet.seq
        conn.rcv_nxt = seq_add(packet.seq, 1)
        self._conns[key] = conn
        synack = self._make_packet(
            key,
            flags=_SYN_ACK,
            seq=conn.snd_nxt,
            ack=conn.rcv_nxt,
        )
        conn.snd_nxt = seq_add(conn.snd_nxt, 1)
        self._transmit(synack)
        self._arm_retransmit(conn, synack)

    def _notify_accept(self, conn: Connection) -> None:
        acceptor = self._listeners.get(conn.quad.src_port)
        if acceptor is not None:
            acceptor(conn)

    def _forget(self, conn: Connection) -> None:
        existing = self._conns.get(conn.quad)
        if existing is conn:
            del self._conns[conn.quad]

    def _make_packet(
        self,
        quad: Quadruple,
        flags: TCPFlags,
        seq: int,
        ack: int,
        payload: object = None,
        payload_len: int = 0,
    ) -> Packet:
        dst_mac = self.arp.get(quad.dst_ip) or self.default_mac
        if dst_mac is None:
            dst_mac = MACAddress.broadcast()
        return Packet(
            src_mac=self.nic.mac,
            dst_mac=dst_mac,
            src_ip=quad.src_ip,
            dst_ip=quad.dst_ip,
            src_port=quad.src_port,
            dst_port=quad.dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload=payload,
            payload_len=payload_len,
        )

    def _transmit(self, packet: Packet) -> None:
        if self._filter is not None:
            filtered = self._filter.outbound(packet)
            if filtered is None:
                return
            packet = filtered
        if packet.dst_mac.is_broadcast and self.arp_service is not None:
            self.arp_service.send_resolved(packet)
            return
        self.nic.transmit(packet)

    def _arm_retransmit(self, conn: Connection, packet: Packet) -> None:
        if not self.retransmit:
            return
        self._schedule_retransmit(conn, packet, retries_left=self.max_retries)

    def _schedule_retransmit(
        self, conn: Connection, packet: Packet, retries_left: int
    ) -> None:
        end_seq = seq_add(
            packet.seq,
            packet.payload_len
            + (1 if packet.flags._value_ & (_SYN_BIT | _FIN_BIT) else 0),
        )

        def check() -> None:
            if conn.state is TCPState.CLOSED:
                return
            if seq_leq(end_seq, conn.snd_una):
                return  # acknowledged; nothing to do
            if retries_left <= 0:
                conn._fail(ConnectionError_("retransmission limit reached"))
                return
            self._transmit(packet.copy())
            self._schedule_retransmit(conn, packet, retries_left - 1)

        self.env.call_later(self.rto_s, check)
