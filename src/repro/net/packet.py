"""Simulated Ethernet/IPv4/TCP packets with a real wire form.

Simulation-side code passes :class:`Packet` objects around directly (no
serialization on the hot path), but :meth:`Packet.pack` /
:meth:`Packet.unpack` implement genuine header encoding — 14-byte Ethernet
header, 20-byte IPv4 header with checksum, 20-byte TCP header with
checksum over the pseudo-header — so header handling can be property-tested
and the per-packet cost paths of Table 3 operate on realistic structures.
"""

from __future__ import annotations

import enum
import itertools
import struct
from typing import Optional

from repro.net.addresses import IPAddress, MACAddress
from repro.net.conn import Quadruple

#: Bytes of headers on every simulated frame (Ethernet 14 + IPv4 20 + TCP 20).
ETH_IP_TCP_HEADER_LEN = 54

#: EtherType for IPv4.
ETHERTYPE_IPV4 = 0x0800

#: TCP sequence-number space.
SEQ_SPACE = 1 << 32

_packet_ids = itertools.count(1)


class TCPFlags(enum.IntFlag):
    """The subset of TCP flags the simulator uses."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


class Packet:
    """One simulated Ethernet frame carrying an IPv4/TCP segment.

    ``payload`` is an arbitrary Python object (the simulation avoids
    materializing page bytes); ``payload_len`` is the number of wire bytes
    it stands for and is what all timing math uses.

    A ``__slots__`` class rather than a dataclass: forwarding-path code
    (splicing remaps, RDN MAC rewrites) copies packets at every header
    mutation point, and :meth:`copy` plus attribute access are the per-hop
    cost that Table 3 measures.
    """

    __slots__ = (
        "src_mac",
        "dst_mac",
        "src_ip",
        "dst_ip",
        "src_port",
        "dst_port",
        "seq",
        "ack",
        "flags",
        "payload",
        "payload_len",
        "pid",
    )

    def __init__(
        self,
        src_mac: MACAddress,
        dst_mac: MACAddress,
        src_ip: IPAddress,
        dst_ip: IPAddress,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: TCPFlags = TCPFlags.NONE,
        payload: object = None,
        payload_len: int = 0,
        pid: Optional[int] = None,
    ) -> None:
        if not 0 <= src_port <= 0xFFFF:
            raise ValueError("src_port out of range: {}".format(src_port))
        if not 0 <= dst_port <= 0xFFFF:
            raise ValueError("dst_port out of range: {}".format(dst_port))
        if payload_len < 0:
            raise ValueError("negative payload_len")
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq % SEQ_SPACE
        self.ack = ack % SEQ_SPACE
        self.flags = flags
        self.payload = payload
        self.payload_len = payload_len
        self.pid = next(_packet_ids) if pid is None else pid

    def __repr__(self) -> str:
        names = [flag.name for flag in TCPFlags if flag and flag in self.flags]
        return "<pkt#{} {} [{}] seq={} ack={} len={}>".format(
            self.pid,
            self.quadruple(),
            "|".join(names) or "-",
            self.seq,
            self.ack,
            self.payload_len,
        )

    # -- identity -------------------------------------------------------

    def quadruple(self) -> Quadruple:
        """The connection key as carried in this packet's headers."""
        # tuple.__new__ skips the generated NamedTuple __new__ (keyword
        # processing); this runs once per classified/forwarded packet.
        return tuple.__new__(
            Quadruple, (self.src_ip, self.src_port, self.dst_ip, self.dst_port)
        )

    @property
    def total_len(self) -> int:
        """Wire length: all headers plus payload."""
        return ETH_IP_TCP_HEADER_LEN + self.payload_len

    def copy(self, **changes: object) -> "Packet":
        """A field-for-field copy (fresh packet id) with optional overrides.

        This is the forwarding path's copy-on-mutate primitive: a direct
        positional constructor call (no ``__new__`` tricks — the compiled
        build forbids creating native instances without ``__init__``),
        touching only the headers the caller overrides afterwards.
        """
        new = Packet(
            self.src_mac,
            self.dst_mac,
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            self.flags,
            self.payload,
            self.payload_len,
        )
        if changes:
            for name, value in changes.items():
                setattr(new, name, value)
            new.seq %= SEQ_SPACE
            new.ack %= SEQ_SPACE
        return new

    # -- wire form ------------------------------------------------------

    def pack(self, payload_bytes: Optional[bytes] = None) -> bytes:
        """Encode to real wire bytes.

        If ``payload_bytes`` is None, ``payload_len`` zero bytes stand in
        for the logical payload.
        """
        if payload_bytes is None:
            payload_bytes = b"\x00" * self.payload_len
        elif len(payload_bytes) != self.payload_len:
            raise ValueError("payload_bytes length disagrees with payload_len")

        eth = self.dst_mac.packed() + self.src_mac.packed() + struct.pack(
            "!H", ETHERTYPE_IPV4
        )

        ip_total = 20 + 20 + self.payload_len
        ip_wo_checksum = struct.pack(
            "!BBHHHBBH4s4s",
            0x45,            # version 4, IHL 5
            0,               # DSCP/ECN
            ip_total,
            self.pid & 0xFFFF,
            0x4000,          # DF, no fragmentation
            64,              # TTL
            6,               # protocol: TCP
            0,               # checksum placeholder
            self.src_ip.packed(),
            self.dst_ip.packed(),
        )
        ip_checksum = _internet_checksum(ip_wo_checksum)
        ip = ip_wo_checksum[:10] + struct.pack("!H", ip_checksum) + ip_wo_checksum[12:]

        tcp_wo_checksum = struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            5 << 4,          # data offset 5 words
            int(self.flags),
            65535,           # advertised window
            0,               # checksum placeholder
            0,               # urgent pointer
        )
        pseudo = (
            self.src_ip.packed()
            + self.dst_ip.packed()
            + struct.pack("!BBH", 0, 6, 20 + self.payload_len)
        )
        tcp_checksum = _internet_checksum(pseudo + tcp_wo_checksum + payload_bytes)
        tcp = (
            tcp_wo_checksum[:16]
            + struct.pack("!H", tcp_checksum)
            + tcp_wo_checksum[18:]
        )
        return eth + ip + tcp + payload_bytes

    @classmethod
    def unpack(cls, data: bytes) -> "Packet":
        """Decode wire bytes produced by :meth:`pack`.

        Verifies the IPv4 and TCP checksums and raises ``ValueError`` on
        any malformation.
        """
        if len(data) < ETH_IP_TCP_HEADER_LEN:
            raise ValueError("frame shorter than minimum header length")
        dst_mac = MACAddress.from_packed(data[0:6])
        src_mac = MACAddress.from_packed(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        if ethertype != ETHERTYPE_IPV4:
            raise ValueError("unsupported ethertype 0x{:04x}".format(ethertype))

        ip = data[14:34]
        if ip[0] != 0x45:
            raise ValueError("unsupported IP version/IHL")
        if _internet_checksum(ip) != 0:
            raise ValueError("bad IPv4 checksum")
        (ip_total,) = struct.unpack("!H", ip[2:4])
        protocol = ip[9]
        if protocol != 6:
            raise ValueError("not a TCP packet (protocol={})".format(protocol))
        src_ip = IPAddress.from_packed(ip[12:16])
        dst_ip = IPAddress.from_packed(ip[16:20])
        payload_len = ip_total - 40
        if payload_len < 0 or 14 + ip_total > len(data):
            raise ValueError("inconsistent IP total length")

        tcp = data[34:54]
        payload_bytes = data[54 : 54 + payload_len]
        pseudo = (
            src_ip.packed()
            + dst_ip.packed()
            + struct.pack("!BBH", 0, 6, 20 + payload_len)
        )
        if _internet_checksum(pseudo + tcp + payload_bytes) != 0:
            raise ValueError("bad TCP checksum")
        src_port, dst_port, seq, ack = struct.unpack("!HHII", tcp[0:12])
        flags = TCPFlags(tcp[13])
        return cls(
            src_mac=src_mac,
            dst_mac=dst_mac,
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload=payload_bytes if payload_len else None,
            payload_len=payload_len,
        )


def _internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
