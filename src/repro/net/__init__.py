"""Packet-level network substrate.

Models the testbed of the paper: hosts with NICs, full-duplex links, a
store-and-forward learning switch, a simplified TCP state machine
(3-way handshake, segmented data transfer with cumulative ACKs, FIN
teardown), and the sequence-number/address remapping used by Gage's
distributed TCP connection splicing.

Layering on a simulated host::

    process  <->  HostStack (TCP)  <->  [frame filter]  <->  NIC  <->  link

The optional frame filter slot is where Gage's RDN logic and the RPN
local service manager live (see :mod:`repro.core`).
"""

from repro.net.addresses import IPAddress, MACAddress
from repro.net.arp import ArpError, ArpReply, ArpRequest, ArpService
from repro.net.conn import Quadruple
from repro.net.link import Interface
from repro.net.nic import NIC, FrameFilter
from repro.net.packet import ETH_IP_TCP_HEADER_LEN, Packet, TCPFlags
from repro.net.splicing import SpliceRule
from repro.net.switch import Switch
from repro.net.tcp import Connection, HostStack, TCPState
from repro.net.tracer import CapturedPacket, PacketTracer

__all__ = [
    "ArpError",
    "ArpReply",
    "ArpRequest",
    "ArpService",
    "CapturedPacket",
    "Connection",
    "ETH_IP_TCP_HEADER_LEN",
    "PacketTracer",
    "FrameFilter",
    "HostStack",
    "IPAddress",
    "Interface",
    "MACAddress",
    "NIC",
    "Packet",
    "Quadruple",
    "SpliceRule",
    "Switch",
    "TCPFlags",
    "TCPState",
]
