"""TCP connection identification.

The paper's connection table is "indexed on the quadruple of the packet
header, which includes source IP address, source port number, destination
IP, and destination port number" (§3.3).  :class:`Quadruple` is that key.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.net.addresses import IPAddress


class Quadruple(NamedTuple):
    """A (src_ip, src_port, dst_ip, dst_port) connection key."""

    src_ip: IPAddress
    src_port: int
    dst_ip: IPAddress
    dst_port: int

    def reversed(self) -> "Quadruple":
        """The same connection as seen from the other direction."""
        return Quadruple(self.dst_ip, self.dst_port, self.src_ip, self.src_port)

    def __str__(self) -> str:
        return "{}:{} -> {}:{}".format(
            self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
