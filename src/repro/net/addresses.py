"""IP and MAC address value types.

Thin, hashable wrappers over integers with the usual dotted/colon text
forms.  Using value types (rather than raw strings) catches a whole class
of wiring mistakes in the simulator at construction time.
"""

from __future__ import annotations

import re
from typing import Union

_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")
_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")

#: Parsed text forms, memoized: a simulation names a handful of hosts but
#: re-parses them at every packet/endpoint construction site.
_IP_PARSE_CACHE: dict = {}
_MAC_PARSE_CACHE: dict = {}


class IPAddress:
    """An IPv4 address."""

    __slots__ = ("_value", "_hash")

    def __init__(self, address: Union[str, int, "IPAddress"]) -> None:
        if isinstance(address, IPAddress):
            self._value = address._value
        elif isinstance(address, int):
            if not 0 <= address <= 0xFFFFFFFF:
                raise ValueError("IPv4 integer out of range: {}".format(address))
            self._value = address
        else:
            value = _IP_PARSE_CACHE.get(address)
            if value is None:
                match = _IP_RE.match(address)
                if not match:
                    raise ValueError("malformed IPv4 address: {!r}".format(address))
                octets = [int(part) for part in match.groups()]
                if any(octet > 255 for octet in octets):
                    raise ValueError("IPv4 octet out of range: {!r}".format(address))
                value = (
                    (octets[0] << 24)
                    | (octets[1] << 16)
                    | (octets[2] << 8)
                    | octets[3]
                )
                _IP_PARSE_CACHE[address] = value
            self._value = value
        # Cached: addresses hash on every connection-table and ARP lookup
        # (via the Quadruple tuple hash), several times per packet.
        self._hash = hash(("ip", self._value))

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        return "{}.{}.{}.{}".format(
            (self._value >> 24) & 0xFF,
            (self._value >> 16) & 0xFF,
            (self._value >> 8) & 0xFF,
            self._value & 0xFF,
        )

    def __repr__(self) -> str:
        return "IPAddress({!r})".format(str(self))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPAddress) and self._value == other._value

    def __hash__(self) -> int:
        return self._hash

    def packed(self) -> bytes:
        """The 4-byte big-endian wire form."""
        return self._value.to_bytes(4, "big")

    @classmethod
    def from_packed(cls, data: bytes) -> "IPAddress":
        """Parse the 4-byte big-endian wire form."""
        if len(data) != 4:
            raise ValueError("IPv4 wire form must be 4 bytes")
        return cls(int.from_bytes(data, "big"))


class MACAddress:
    """An Ethernet (EUI-48) address."""

    __slots__ = ("_value", "_hash")

    BROADCAST_INT = 0xFFFFFFFFFFFF

    def __init__(self, address: Union[str, int, "MACAddress"]) -> None:
        if isinstance(address, MACAddress):
            self._value = address._value
        elif isinstance(address, int):
            if not 0 <= address <= self.BROADCAST_INT:
                raise ValueError("MAC integer out of range: {}".format(address))
            self._value = address
        else:
            value = _MAC_PARSE_CACHE.get(address)
            if value is None:
                if not _MAC_RE.match(address):
                    raise ValueError("malformed MAC address: {!r}".format(address))
                value = int(address.replace(":", ""), 16)
                _MAC_PARSE_CACHE[address] = value
            self._value = value
        self._hash = hash(("mac", self._value))

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        raw = "{:012x}".format(self._value)
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return "MACAddress({!r})".format(str(self))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MACAddress) and self._value == other._value

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self._value == self.BROADCAST_INT

    def packed(self) -> bytes:
        """The 6-byte wire form."""
        return self._value.to_bytes(6, "big")

    @classmethod
    def from_packed(cls, data: bytes) -> "MACAddress":
        """Parse the 6-byte wire form."""
        if len(data) != 6:
            raise ValueError("MAC wire form must be 6 bytes")
        return cls(int.from_bytes(data, "big"))

    @classmethod
    def broadcast(cls) -> "MACAddress":
        """The Ethernet broadcast address."""
        return cls(cls.BROADCAST_INT)
