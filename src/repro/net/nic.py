"""Host network interface cards and frame filters.

A :class:`NIC` couples an :class:`~repro.net.link.Interface` with a MAC
address, destination filtering, an optional per-frame interrupt-cost sink
(used to model the RDN's interrupt-handling load, §4.3 of the paper) and a
pluggable receive handler.

:class:`FrameFilter` is the interposition point used by Gage: the RPN's
local service manager "resides above the Ethernet driver but below the IP
layer" (§3.2) — exactly between the NIC and the host TCP stack.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addresses import MACAddress
from repro.net.link import Interface
from repro.net.packet import Packet
from repro.sim.engine import Environment


class FrameFilter:
    """Interposes on a host's frame path, below IP.

    Subclasses override either hook; returning ``None`` swallows the
    packet (it never reaches the stack / the wire), returning a packet —
    possibly a rewritten copy — lets it continue.
    """

    def inbound(self, packet: Packet) -> Optional[Packet]:
        """Filter a frame arriving from the wire, before the stack sees it."""
        return packet

    def outbound(self, packet: Packet) -> Optional[Packet]:
        """Filter a frame leaving the stack, before it reaches the wire."""
        return packet


class NIC:
    """A host network interface card."""

    def __init__(
        self,
        env: Environment,
        mac: MACAddress,
        name: str = "nic",
        promiscuous: bool = False,
        interrupt_cost_s: float = 0.0,
        interrupt_sink: Optional[Callable[[float], None]] = None,
        **iface_kwargs: object,
    ) -> None:
        self.env = env
        self.mac = mac
        self.promiscuous = promiscuous
        self.interrupt_cost_s = interrupt_cost_s
        self.interrupt_sink = interrupt_sink
        #: Called with each accepted packet; installed by the host stack
        #: or directly by Gage's RDN logic.
        self.receive_handler: Optional[Callable[[Packet], None]] = None
        self.iface = Interface(env, name, **iface_kwargs)
        self.iface.on_receive = self._on_frame
        self.rx_accepted = 0
        self.rx_filtered = 0
        self.tx_sent = 0
        self.tx_dropped = 0

    def __repr__(self) -> str:
        return "<NIC {} mac={}>".format(self.iface.name, self.mac)

    def transmit(self, packet: Packet) -> bool:
        """Send a frame; returns False if the transmit queue was full."""
        if self.iface.send(packet):
            self.tx_sent += 1
            return True
        self.tx_dropped += 1
        return False

    def _on_frame(self, packet: Packet, _iface: Interface) -> None:
        if not self.promiscuous and packet.dst_mac != self.mac and not packet.dst_mac.is_broadcast:
            self.rx_filtered += 1
            return
        self.rx_accepted += 1
        if self.interrupt_sink is not None and self.interrupt_cost_s > 0:
            self.interrupt_sink(self.interrupt_cost_s)
        if self.receive_handler is not None:
            self.receive_handler(packet)
