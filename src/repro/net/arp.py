"""Address resolution over the simulated Ethernet.

The packet-mode cluster can wire MAC addresses statically (each stack's
``arp`` table), or resolve them with this ARP implementation: requests
are broadcast, the owner of the IP replies unicast, replies populate a
cache with positive entries, and unanswered requests retry then fail.

Gage's primary RDN answers ARP for the cluster's virtual IP — that is
how every client's traffic lands on the front end in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.addresses import IPAddress, MACAddress
from repro.net.nic import NIC
from repro.net.packet import Packet
from repro.sim.engine import Environment
from repro.sim.events import Event

#: Modeled wire size of an ARP payload (a real ARP frame is 28 bytes).
ARP_PAYLOAD_LEN = 28


@dataclass(frozen=True)
class ArpRequest:
    """Who has ``target_ip``?  Tell ``sender_ip``/``sender_mac``."""

    target_ip: IPAddress
    sender_ip: IPAddress
    sender_mac: MACAddress


@dataclass(frozen=True)
class ArpReply:
    """``target_ip`` is at ``target_mac``."""

    target_ip: IPAddress
    target_mac: MACAddress


class ArpError(Exception):
    """Resolution failed after all retries."""


def _arp_frame(src_mac: MACAddress, dst_mac: MACAddress, payload: object) -> Packet:
    # ARP is not TCP, but the simulator's single frame type carries an
    # opaque payload; ports 0 and no flags mark it as non-TCP traffic.
    return Packet(
        src_mac=src_mac,
        dst_mac=dst_mac,
        src_ip=IPAddress(0),
        dst_ip=IPAddress(0),
        src_port=0,
        dst_port=0,
        payload=payload,
        payload_len=ARP_PAYLOAD_LEN,
    )


class ArpService:
    """Per-host ARP: answers requests for the host's IP, resolves others.

    Installs itself *in front of* the NIC's existing receive handler:
    ARP payloads are consumed here, everything else passes through.
    """

    def __init__(
        self,
        env: Environment,
        nic: NIC,
        ip: IPAddress,
        timeout_s: float = 0.1,
        retries: int = 3,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout must be positive")
        if retries < 1:
            raise ValueError("need at least one attempt")
        self.env = env
        self.nic = nic
        self.ip = ip
        self.timeout_s = timeout_s
        self.retries = retries
        self.cache: Dict[IPAddress, MACAddress] = {}
        self._waiters: Dict[IPAddress, List[Event]] = {}
        self.requests_sent = 0
        self.replies_sent = 0
        self.failures = 0
        #: Queued frames discarded because their destination never resolved.
        self.dropped_unresolved = 0
        self._passthrough = nic.receive_handler
        nic.receive_handler = self._on_packet

    def __repr__(self) -> str:
        return "<ArpService {} cache={}>".format(self.ip, len(self.cache))

    # -- receive path -----------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        payload = packet.payload
        if isinstance(payload, ArpRequest):
            self.cache.setdefault(payload.sender_ip, payload.sender_mac)
            if payload.target_ip == self.ip:
                self._reply(payload)
            return
        if isinstance(payload, ArpReply):
            self._learn(payload.target_ip, payload.target_mac)
            return
        if self._passthrough is not None:
            self._passthrough(packet)

    def _reply(self, request: ArpRequest) -> None:
        self.replies_sent += 1
        self.nic.transmit(
            _arp_frame(
                self.nic.mac,
                request.sender_mac,
                ArpReply(target_ip=self.ip, target_mac=self.nic.mac),
            )
        )

    def _learn(self, ip: IPAddress, mac: MACAddress) -> None:
        self.cache[ip] = mac
        for waiter in self._waiters.pop(ip, []):
            if not waiter.triggered:
                waiter.succeed(mac)

    # -- resolution -----------------------------------------------------------

    def lookup(self, ip: IPAddress) -> Optional[MACAddress]:
        """Cached MAC for ``ip``, or None."""
        return self.cache.get(ip)

    def resolve(self, ip: IPAddress) -> Event:
        """Event that fires with the MAC of ``ip`` (or fails after retries)."""
        event = Event(self.env)
        cached = self.cache.get(ip)
        if cached is not None:
            event.succeed(cached)
            return event
        pending = ip in self._waiters
        self._waiters.setdefault(ip, []).append(event)
        if not pending:
            self.env.process(self._resolve_loop(ip))
        return event

    def _resolve_loop(self, ip: IPAddress):
        for _attempt in range(self.retries):
            if ip in self.cache:
                return
            self.requests_sent += 1
            self.nic.transmit(
                _arp_frame(
                    self.nic.mac,
                    MACAddress.broadcast(),
                    ArpRequest(target_ip=ip, sender_ip=self.ip, sender_mac=self.nic.mac),
                )
            )
            yield self.env.timeout(self.timeout_s)
        if ip not in self.cache:
            self.failures += 1
            for waiter in self._waiters.pop(ip, []):
                if not waiter.triggered:
                    waiter._defused = True
                    waiter.fail(ArpError("no ARP reply for {}".format(ip)))

    def send_resolved(self, packet: Packet) -> None:
        """Transmit ``packet``, resolving its destination MAC first.

        If the destination is unknown the frame is held until the reply
        arrives; it is dropped (counted as a failure) if resolution fails.
        """
        dst_ip = packet.dst_ip
        cached = self.cache.get(dst_ip)
        if cached is not None:
            self.nic.transmit(packet.copy(dst_mac=cached))
            return
        self.env.process(self._send_when_resolved(packet))

    def _send_when_resolved(self, packet: Packet):
        try:
            mac = yield self.resolve(packet.dst_ip)
        except ArpError:
            self.dropped_unresolved += 1
            return
        self.nic.transmit(packet.copy(dst_mac=mac))
