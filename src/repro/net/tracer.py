"""Packet capture for the simulated network.

A :class:`PacketTracer` hooks the delivery path of selected interfaces
and records every frame that arrives at them, with optional filtering —
the simulator's tcpdump.  Used by tests and by
``examples/packet_splicing_trace.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.net.link import Interface
from repro.net.packet import Packet
from repro.sim.engine import Environment

#: Predicate deciding whether a frame is recorded.
PacketFilter = Callable[[Packet], bool]


@dataclass(frozen=True)
class CapturedPacket:
    """One captured frame."""

    at_s: float
    interface: str
    packet: Packet


class PacketTracer:
    """Records frames delivered to a set of interfaces.

    Usable as a context manager::

        with PacketTracer(env, cluster_interfaces()) as tracer:
            cluster.run(2.0)
        for entry in tracer.matching(lambda p: p.dst_port == 80):
            ...
    """

    def __init__(
        self,
        env: Environment,
        interfaces: Iterable[Interface],
        packet_filter: Optional[PacketFilter] = None,
        max_packets: int = 100_000,
    ) -> None:
        if max_packets < 1:
            raise ValueError("max_packets must be positive")
        self.env = env
        self.packet_filter = packet_filter
        self.max_packets = max_packets
        self.captured: List[CapturedPacket] = []
        self.dropped_over_limit = 0
        self._interfaces = list(interfaces)
        self._originals: List[Optional[Callable]] = []
        self._attached = False

    def __enter__(self) -> "PacketTracer":
        self.attach()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.detach()

    def attach(self) -> None:
        """Start capturing (wraps each interface's receive hook)."""
        if self._attached:
            raise RuntimeError("tracer already attached")
        self._attached = True
        self._originals = []
        for iface in self._interfaces:
            original = iface.on_receive
            self._originals.append(original)
            iface.on_receive = self._make_hook(iface, original)

    def detach(self) -> None:
        """Stop capturing and restore the original hooks."""
        if not self._attached:
            return
        for iface, original in zip(self._interfaces, self._originals):
            iface.on_receive = original
        self._originals = []
        self._attached = False

    def _make_hook(self, iface: Interface, original):
        def hook(packet: Packet, where: Interface) -> None:
            if self.packet_filter is None or self.packet_filter(packet):
                if len(self.captured) < self.max_packets:
                    self.captured.append(
                        CapturedPacket(self.env.now, iface.name, packet)
                    )
                else:
                    self.dropped_over_limit += 1
            if original is not None:
                original(packet, where)

        return hook

    def __len__(self) -> int:
        return len(self.captured)

    def matching(self, predicate: PacketFilter) -> List[CapturedPacket]:
        """Captured frames whose packet satisfies ``predicate``."""
        return [entry for entry in self.captured if predicate(entry.packet)]

    def on_interface(self, name: str) -> List[CapturedPacket]:
        """Captured frames that arrived at one named interface."""
        return [entry for entry in self.captured if entry.interface == name]

    def clear(self) -> None:
        """Discard everything captured so far."""
        self.captured.clear()
        self.dropped_over_limit = 0
