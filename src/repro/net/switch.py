"""A store-and-forward learning Ethernet switch.

Models the paper's testbed interconnect: a 16-port Fast Ethernet switch
with a cross-section bandwidth high enough that "network contention effect
is negligible" — each port has its own full-rate egress queue, so flows on
disjoint port pairs never interfere.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.addresses import MACAddress
from repro.net.link import Interface
from repro.net.packet import Packet
from repro.sim.engine import Environment


class Switch:
    """An N-port learning switch."""

    def __init__(
        self,
        env: Environment,
        ports: int = 16,
        name: str = "switch",
        bandwidth_bps: float = 100e6,
        latency_s: float = 5e-6,
        mac_aging_s: Optional[float] = None,
    ) -> None:
        if ports < 2:
            raise ValueError("a switch needs at least 2 ports")
        if mac_aging_s is not None and mac_aging_s <= 0:
            raise ValueError("MAC aging time must be positive")
        self.env = env
        self.name = name
        #: Learned entries older than this are forgotten (None = never) —
        #: real switches age entries out after ~300 s.
        self.mac_aging_s = mac_aging_s
        self.ports: List[Interface] = []
        for index in range(ports):
            port = Interface(
                env,
                "{}.p{}".format(name, index),
                bandwidth_bps=bandwidth_bps,
                latency_s=latency_s,
            )
            port.on_receive = self._on_frame
            self.ports.append(port)
        self._mac_table: Dict[MACAddress, "Tuple[Interface, float]"] = {}
        self.forwarded = 0
        self.flooded = 0

    def __repr__(self) -> str:
        return "<Switch {} ports={} learned={}>".format(
            self.name, len(self.ports), len(self._mac_table)
        )

    def free_port(self) -> Interface:
        """The lowest-numbered unconnected port."""
        for port in self.ports:
            if port.peer is None:
                return port
        raise RuntimeError("switch {} has no free ports".format(self.name))

    def attach(self, iface: Interface) -> Interface:
        """Connect a host interface to the next free port; returns the port."""
        port = self.free_port()
        port.connect(iface)
        return port

    def lookup(self, mac: MACAddress) -> Optional[Interface]:
        """The learned (unexpired) egress port for ``mac``, if any."""
        entry = self._mac_table.get(mac)
        if entry is None:
            return None
        port, learned_at = entry
        if self.mac_aging_s is not None and self.env.now - learned_at > self.mac_aging_s:
            del self._mac_table[mac]
            return None
        return port

    def _on_frame(self, packet: Packet, ingress: Interface) -> None:
        self._mac_table[packet.src_mac] = (ingress, self.env.now)
        if packet.dst_mac.is_broadcast:
            self._flood(packet, ingress)
            return
        egress = self.lookup(packet.dst_mac)
        if egress is None:
            self._flood(packet, ingress)
            return
        if egress is ingress:
            return  # destination is back where it came from; drop
        self.forwarded += 1
        egress.send(packet)

    def _flood(self, packet: Packet, ingress: Interface) -> None:
        self.flooded += 1
        for port in self.ports:
            if port is not ingress and port.peer is not None:
                port.send(packet)
