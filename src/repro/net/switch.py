"""A store-and-forward learning Ethernet switch.

Models the paper's testbed interconnect: a 16-port Fast Ethernet switch
with a cross-section bandwidth high enough that "network contention effect
is negligible" — each port has its own full-rate egress queue, so flows on
disjoint port pairs never interfere.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.addresses import MACAddress
from repro.net.link import Interface
from repro.net.packet import Packet
from repro.sim.engine import Environment


class Switch:
    """An N-port learning switch."""

    def __init__(
        self,
        env: Environment,
        ports: int = 16,
        name: str = "switch",
        bandwidth_bps: float = 100e6,
        latency_s: float = 5e-6,
        mac_aging_s: Optional[float] = None,
    ) -> None:
        if ports < 2:
            raise ValueError("a switch needs at least 2 ports")
        if mac_aging_s is not None and mac_aging_s <= 0:
            raise ValueError("MAC aging time must be positive")
        self.env = env
        self.name = name
        #: Learned entries older than this are forgotten (None = never) —
        #: real switches age entries out after ~300 s.
        self.mac_aging_s = mac_aging_s
        self.ports: List[Interface] = []
        for index in range(ports):
            port = Interface(
                env,
                "{}.p{}".format(name, index),
                bandwidth_bps=bandwidth_bps,
                latency_s=latency_s,
            )
            port.on_receive = self._on_frame
            self.ports.append(port)
        self._mac_table: Dict[MACAddress, "Tuple[Interface, float]"] = {}
        self.forwarded = 0
        self.flooded = 0

    def __repr__(self) -> str:
        return "<Switch {} ports={} learned={}>".format(
            self.name, len(self.ports), len(self._mac_table)
        )

    def free_port(self) -> Interface:
        """The lowest-numbered unconnected port."""
        for port in self.ports:
            if port.peer is None:
                return port
        raise RuntimeError("switch {} has no free ports".format(self.name))

    def attach(
        self,
        iface: Interface,
        bandwidth_bps: Optional[float] = None,
        latency_s: Optional[float] = None,
    ) -> Interface:
        """Connect a host interface to the next free port; returns the port.

        ``bandwidth_bps``/``latency_s`` override the port's link
        parameters before connecting, so a tiered topology can give each
        access link its own rate (the egress queue toward a slow host
        serializes at the slow link's speed, not the fabric default).
        """
        port = self.free_port()
        if bandwidth_bps is not None:
            if bandwidth_bps <= 0:
                raise ValueError("port bandwidth must be positive")
            port.bandwidth_bps = float(bandwidth_bps)
        if latency_s is not None:
            if latency_s < 0:
                raise ValueError("port latency must be non-negative")
            port.latency_s = float(latency_s)
        port.connect(iface)
        return port

    def interconnect(
        self,
        other: "Switch",
        bandwidth_bps: Optional[float] = None,
        latency_s: Optional[float] = None,
    ) -> Tuple[Interface, Interface]:
        """Trunk this switch to ``other`` over one port pair (an uplink).

        Both ends take the uplink tier's parameters.  Learning and
        flooding compose across the trunk: frames for hosts behind the
        far switch are forwarded (or flooded) out the uplink port and
        re-switched there.  Keep the fabric a tree — the learning switch
        has no spanning-tree protocol, so a loop floods forever.
        """
        local = self.free_port()
        remote = other.free_port()
        for port in (local, remote):
            if bandwidth_bps is not None:
                if bandwidth_bps <= 0:
                    raise ValueError("uplink bandwidth must be positive")
                port.bandwidth_bps = float(bandwidth_bps)
            if latency_s is not None:
                if latency_s < 0:
                    raise ValueError("uplink latency must be non-negative")
                port.latency_s = float(latency_s)
        local.connect(remote)
        return local, remote

    def lookup(self, mac: MACAddress) -> Optional[Interface]:
        """The learned (unexpired) egress port for ``mac``, if any."""
        entry = self._mac_table.get(mac)
        if entry is None:
            return None
        port, learned_at = entry
        if self.mac_aging_s is not None and self.env.now - learned_at > self.mac_aging_s:
            del self._mac_table[mac]
            return None
        return port

    def _on_frame(self, packet: Packet, ingress: Interface) -> None:
        self._mac_table[packet.src_mac] = (ingress, self.env.now)
        if packet.dst_mac.is_broadcast:
            self._flood(packet, ingress)
            return
        egress = self.lookup(packet.dst_mac)
        if egress is None:
            self._flood(packet, ingress)
            return
        if egress is ingress:
            return  # destination is back where it came from; drop
        self.forwarded += 1
        egress.send(packet)

    def _flood(self, packet: Packet, ingress: Interface) -> None:
        self.flooded += 1
        for port in self.ports:
            if port is not ingress and port.peer is not None:
                port.send(packet)
