"""Gage — performance guarantees for cluster-based Internet services.

A from-scratch Python reproduction of *Performance Guarantees for
Cluster-Based Internet Services* (Li, Peng, Gopalan, Chiueh — ICDCS
2003): the Gage QoS-aware request distribution system, every substrate it
runs on (discrete-event kernel, packet-level network with TCP splicing,
cluster-node models, workload generators), an asyncio real-socket
implementation of the same architecture, and the benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro import Environment, GageCluster, Subscriber, SyntheticWorkload

    env = Environment()
    subs = [Subscriber("gold.example.com", reservation_grps=200),
            Subscriber("bronze.example.com", reservation_grps=50)]
    load = SyntheticWorkload(
        rates={"gold.example.com": 190.0, "bronze.example.com": 400.0},
        duration_s=10.0, file_bytes=2000)
    cluster = GageCluster(
        env, subs, {s.name: load.site_files(s.name) for s in subs},
        num_rpns=4)
    cluster.load_trace(load.generate())
    cluster.run(10.0)
    for report in cluster.all_reports(2.0, 10.0):
        print(report.subscriber, report.served_rate, report.dropped_rate)

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.sim` — deterministic discrete-event kernel;
- :mod:`repro.net` — packets, links, switch, TCP, splice remapping;
- :mod:`repro.cluster` — CPU/disk/cache/process-accounting node model;
- :mod:`repro.workload` — synthetic and SPECWeb99-shaped workloads;
- :mod:`repro.core` — the Gage layer (the paper's contribution);
- :mod:`repro.baselines` — best-effort and strict-priority comparators;
- :mod:`repro.proxy` — asyncio implementation on real sockets;
- :mod:`repro.harness` — per-table/figure experiment runners.
"""

# The compiled-core loader must decide *before* any hot module is
# imported whether mypyc extensions (if built) may serve repro.sim /
# repro.net — and pin the pure sources when they may not.
from repro import _compiled as _compiled

_compiled.install()

from repro.core import (  # noqa: E402
    GageCluster,
    GageConfig,
    GENERIC_REQUEST,
    PrimaryRDN,
    ServiceReport,
    Subscriber,
    grps,
)
from repro.resources import ResourceVector  # noqa: E402
from repro.sim import Environment  # noqa: E402
from repro.workload import SpecWeb99Workload, SyntheticWorkload  # noqa: E402

__version__ = "1.0.0"

__all__ = [
    "Environment",
    "GageCluster",
    "GageConfig",
    "GENERIC_REQUEST",
    "PrimaryRDN",
    "ResourceVector",
    "ServiceReport",
    "SpecWeb99Workload",
    "Subscriber",
    "SyntheticWorkload",
    "__version__",
    "grps",
]
