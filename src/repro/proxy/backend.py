"""The back-end HTTP server of the asyncio deployment.

Serves synthetic site content from an in-memory catalog, models CPU/disk
service time (as event-loop sleeps, scaled by a cost model), and attaches
the per-request resource usage to every response in an ``X-Gage-Usage``
header — the real-socket analogue of the RPN's resource usage accounting
(§3.5): here the *server* measures usage, and the front end collects it.

The server speaks HTTP/1.1 keep-alive: one connection (typically a
pooled socket held by the front end) carries many requests, with an idle
timeout reclaiming abandoned ones.  Response head + body go out in a
single vectored write (one ``sendmsg`` when the transport buffer is
empty) from a preallocated body buffer, draining only when the
transport's write buffer passes its high-water mark.  Warm ("buffer
cache") bodies are additionally served zero-copy from a file via
``os.sendfile`` when ``use_sendfile`` is on — the analogue of the
paper's cache-served static content never crossing userspace.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from typing import Callable, Dict, Optional, Tuple

from repro.proxy.http import (
    HTTPError,
    HTTPResponseHead,
    USAGE_HEADER,
    read_request_head,
    render_response_head,
    wants_keep_alive,
)
from repro.proxy.splice import (
    over_high_water,
    sendfile_exactly,
    tune_transport,
    vectored_write,
)
from repro.workload.request import CostModel, WebRequest

#: Body chunk written at a time, bytes.
CHUNK_BYTES = 16 * 1024

#: Vectored-write batch: at most this many chunks per writelines call.
_BATCH_CHUNKS = 16

#: The synthetic body content, allocated once and sliced per response.
_BODY_VIEW = memoryview(b"x" * CHUNK_BYTES)


class BackendServer:
    """One back-end node: asyncio HTTP server over an in-memory file set.

    Parameters
    ----------
    sites:
        host → {path → size_bytes}; requests for other hosts/paths get 404.
    cost_model:
        Converts a request into modeled CPU/disk service time; set
        ``time_scale`` below 1.0 to shrink modeled sleeps in tests.
    keepalive_idle_s:
        How long an idle keep-alive connection is held before closing.
    extra_delay_fn:
        Optional ``(host, path) -> seconds`` of extra wall-clock service
        delay, added verbatim (not scaled by ``time_scale``).  Lets
        tests and benchmarks inject heavy-tailed (e.g. Pareto) or
        fault-shaped service times without touching the cost model.
    use_sendfile:
        Serve warm (cache-hit) bodies zero-copy from a file via
        ``os.sendfile``; cold bodies (the ones charged disk time) and
        every fallback keep the buffered vectored-write path.  The
        served bytes are identical either way.
    """

    def __init__(
        self,
        sites: Dict[str, Dict[str, int]],
        cost_model: Optional[CostModel] = None,
        time_scale: float = 1.0,
        host: str = "127.0.0.1",
        keepalive_idle_s: float = 15.0,
        extra_delay_fn: Optional[Callable[[str, str], float]] = None,
        use_sendfile: bool = True,
    ) -> None:
        if time_scale < 0:
            raise ValueError("negative time scale")
        if keepalive_idle_s <= 0:
            raise ValueError("keepalive_idle_s must be positive")
        self.sites = sites
        self.cost_model = cost_model or CostModel()
        self.time_scale = time_scale
        self.host = host
        self.keepalive_idle_s = keepalive_idle_s
        self.extra_delay_fn = extra_delay_fn
        self.use_sendfile = use_sendfile
        self.port: Optional[int] = None
        self.requests_served = 0
        self.errors = 0
        self.bytes_sent = 0
        #: Responses whose body went out via the sendfile path.
        self.sendfile_served = 0
        #: host → cached flag per path (one-shot "buffer cache").
        self._warm: Dict[Tuple[str, str], bool] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._body_path: Optional[str] = None
        self._body_len = 0

    async def start(self, port: int = 0) -> int:
        """Bind and start serving; returns the bound port."""
        if self.use_sendfile and self._body_path is None:
            self._make_body_file()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop accepting and close the server."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._body_path is not None:
            try:
                os.unlink(self._body_path)
            except OSError:
                pass
            self._body_path = None
            self._body_len = 0

    def _make_body_file(self) -> None:
        """Materialize the synthetic body as a file for ``os.sendfile``.

        Sized to the largest object in the catalog so any response body
        is a prefix of it; content matches ``_BODY_VIEW`` byte for byte,
        so sendfile- and buffer-served responses are indistinguishable.
        """
        largest = max(
            (size for site in self.sites.values() for size in site.values()),
            default=0,
        )
        if largest <= 0:
            return
        fd, path = tempfile.mkstemp(prefix="repro-backend-", suffix=".body")
        try:
            with os.fdopen(fd, "wb") as fh:
                remaining = largest
                while remaining > 0:
                    take = min(CHUNK_BYTES, remaining)
                    fh.write(_BODY_VIEW[:take])
                    remaining -= take
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
            return
        self._body_path = path
        self._body_len = largest

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) once started."""
        if self.port is None:
            raise RuntimeError("backend not started")
        return self.host, self.port

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tune_transport(writer.transport)
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        read_request_head(reader), timeout=self.keepalive_idle_s
                    )
                except asyncio.TimeoutError:
                    return
                body_len = head.content_length
                if body_len:
                    await self._discard(reader, body_len)
                keep_alive = wants_keep_alive(head)
                await self._respond(head, writer, keep_alive)
                if not keep_alive:
                    return
        except (HTTPError, ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown with the connection parked (a pooled
            # keep-alive socket); exit quietly instead of letting the
            # server's done-callback log the cancellation.
            pass
        finally:
            writer.close()

    @staticmethod
    async def _discard(reader: asyncio.StreamReader, nbytes: int) -> None:
        """Consume a request body so the next head starts at a boundary."""
        remaining = nbytes
        while remaining > 0:
            chunk = await reader.read(min(CHUNK_BYTES, remaining))
            if not chunk:
                raise asyncio.IncompleteReadError(partial=b"", expected=remaining)
            remaining -= len(chunk)

    async def _respond(
        self, head, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        host = head.host or ""
        site = self.sites.get(host)
        size = site.get(head.path) if site is not None else None
        connection = "keep-alive" if keep_alive else "close"
        if size is None:
            self.errors += 1
            response = HTTPResponseHead(
                version="HTTP/1.1",
                status=404,
                reason="Not Found",
                headers={"content-length": "0", "connection": connection},
            )
            writer.write(render_response_head(response))
            if over_high_water(writer):
                await writer.drain()
            return

        request = WebRequest(host=host, path=head.path, size_bytes=size)
        cpu_s = self.cost_model.cpu_seconds(request)
        key = (host, head.path)
        was_warm = bool(self._warm.get(key))
        disk_s = 0.0
        if not was_warm:
            disk_s = self.cost_model.disk_seconds(request)
            self._warm[key] = True
        service_s = (cpu_s + disk_s) * self.time_scale
        if self.extra_delay_fn is not None:
            service_s += self.extra_delay_fn(host, head.path)
        if service_s > 0:
            await asyncio.sleep(service_s)

        response = HTTPResponseHead(
            version="HTTP/1.1",
            status=200,
            reason="OK",
            headers={
                "content-length": str(size),
                "content-type": "text/html",
                "connection": connection,
                USAGE_HEADER: "{:.6f},{:.6f},{}".format(cpu_s, disk_s, size),
            },
        )
        head_bytes = render_response_head(response)
        if was_warm and 0 < size <= self._body_len and self._body_path is not None:
            # Cache-hit body: head vectored out, body straight from the
            # page cache via sendfile.  Per-request file handle — the
            # sendfile fallback paths seek, so sharing one would race.
            # Counted at path-selection time: the increment after the
            # await would race observers that stop the server as soon as
            # the client has the last byte.
            self.sendfile_served += 1
            vectored_write(writer, [head_bytes])
            with open(self._body_path, "rb") as body_file:
                await sendfile_exactly(writer, body_file, size)
        else:
            pieces = [head_bytes]
            remaining = size
            while True:
                while remaining > 0 and len(pieces) < _BATCH_CHUNKS:
                    take = min(CHUNK_BYTES, remaining)
                    pieces.append(_BODY_VIEW[:take])
                    remaining -= take
                if pieces:
                    vectored_write(writer, pieces)
                    pieces = []
                if remaining <= 0:
                    break
                if over_high_water(writer):
                    await writer.drain()
        if over_high_water(writer):
            await writer.drain()
        self.requests_served += 1
        self.bytes_sent += size
