"""The back-end HTTP server of the asyncio deployment.

Serves synthetic site content from an in-memory catalog, models CPU/disk
service time (as event-loop sleeps, scaled by a cost model), and attaches
the per-request resource usage to every response in an ``X-Gage-Usage``
header — the real-socket analogue of the RPN's resource usage accounting
(§3.5): here the *server* measures usage, and the front end collects it.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from repro.proxy.http import (
    HTTPError,
    HTTPResponseHead,
    USAGE_HEADER,
    read_request_head,
    render_response_head,
)
from repro.workload.request import CostModel, WebRequest

#: Body chunk written at a time, bytes.
CHUNK_BYTES = 16 * 1024


class BackendServer:
    """One back-end node: asyncio HTTP server over an in-memory file set.

    Parameters
    ----------
    sites:
        host → {path → size_bytes}; requests for other hosts/paths get 404.
    cost_model:
        Converts a request into modeled CPU/disk service time; set
        ``time_scale`` below 1.0 to shrink modeled sleeps in tests.
    """

    def __init__(
        self,
        sites: Dict[str, Dict[str, int]],
        cost_model: Optional[CostModel] = None,
        time_scale: float = 1.0,
        host: str = "127.0.0.1",
    ) -> None:
        if time_scale < 0:
            raise ValueError("negative time scale")
        self.sites = sites
        self.cost_model = cost_model or CostModel()
        self.time_scale = time_scale
        self.host = host
        self.port: Optional[int] = None
        self.requests_served = 0
        self.errors = 0
        self.bytes_sent = 0
        #: host → cached flag per path (one-shot "buffer cache").
        self._warm: Dict[Tuple[str, str], bool] = {}
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self, port: int = 0) -> int:
        """Bind and start serving; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop accepting and close the server."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) once started."""
        if self.port is None:
            raise RuntimeError("backend not started")
        return self.host, self.port

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await read_request_head(reader)
        except (HTTPError, asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        try:
            await self._respond(head, writer)
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _respond(self, head, writer: asyncio.StreamWriter) -> None:
        host = head.host or ""
        site = self.sites.get(host)
        size = site.get(head.path) if site is not None else None
        if size is None:
            self.errors += 1
            response = HTTPResponseHead(
                version="HTTP/1.0",
                status=404,
                reason="Not Found",
                headers={"content-length": "0", "connection": "close"},
            )
            writer.write(render_response_head(response))
            await writer.drain()
            return

        request = WebRequest(host=host, path=head.path, size_bytes=size)
        cpu_s = self.cost_model.cpu_seconds(request)
        key = (host, head.path)
        disk_s = 0.0
        if not self._warm.get(key):
            disk_s = self.cost_model.disk_seconds(request)
            self._warm[key] = True
        service_s = (cpu_s + disk_s) * self.time_scale
        if service_s > 0:
            await asyncio.sleep(service_s)

        response = HTTPResponseHead(
            version="HTTP/1.0",
            status=200,
            reason="OK",
            headers={
                "content-length": str(size),
                "content-type": "text/html",
                "connection": "close",
                USAGE_HEADER: "{:.6f},{:.6f},{}".format(cpu_s, disk_s, size),
            },
        )
        writer.write(render_response_head(response))
        remaining = size
        while remaining > 0:
            chunk = min(CHUNK_BYTES, remaining)
            writer.write(b"x" * chunk)
            remaining -= chunk
            await writer.drain()
        self.requests_served += 1
        self.bytes_sent += size
