"""The asyncio real-socket implementation of the Gage architecture.

The in-kernel packet remapping of the paper cannot be reproduced from
userspace Python, so this package implements the closest real-network
equivalent (documented in DESIGN.md): an application-layer front end that
classifies by Host header, queues per subscriber, runs the *same*
credit-based scheduler as the simulator (:mod:`repro.core`), dispatches to
back-end HTTP servers, and splices the two sockets with a bidirectional
relay.  Back ends report per-request resource usage in an
``X-Gage-Usage`` response header that the front end strips and feeds into
the shared accounting code.

Throughput fidelity is necessarily lower than the paper's kernel module
(GIL, syscall costs), which is why the paper-shape experiments run on the
simulator; this package demonstrates the architecture end-to-end on real
sockets.
"""

from repro.proxy.backend import BackendServer
from repro.proxy.backend_pool import BackendPool
from repro.proxy.frontend import GageProxy, ProxyStats
from repro.proxy.http import (
    HTTPRequestHead,
    HTTPResponseHead,
    read_request_head,
    read_response_head,
    render_request_head,
    render_response_head,
    wants_keep_alive,
)
from repro.proxy.workers import WorkerSpec, WorkerSupervisor

__all__ = [
    "BackendPool",
    "BackendServer",
    "GageProxy",
    "HTTPRequestHead",
    "HTTPResponseHead",
    "ProxyStats",
    "WorkerSpec",
    "WorkerSupervisor",
    "read_request_head",
    "read_response_head",
    "render_request_head",
    "render_response_head",
    "wants_keep_alive",
]
