"""A minimal HTTP/1.x head parser for the asyncio proxy.

Supports exactly what the Gage front end needs: reading a request line +
headers to extract the Host (classification key, §3.3) and
Content-Length, reading a response head to extract Content-Length and
the back end's ``X-Gage-Usage`` accounting header, and deciding
keep-alive semantics (HTTP/1.1 persistent connections are what makes
the pooled data plane pay off).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

#: Upper bound on a message head, to bound memory per connection.
MAX_HEAD_BYTES = 16 * 1024

#: The accounting header the back end attaches and the front end strips.
USAGE_HEADER = "x-gage-usage"


class HTTPError(Exception):
    """Malformed or oversized HTTP message head."""


@dataclass
class HTTPRequestHead:
    """Parsed request line + headers."""

    method: str
    path: str
    version: str
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def host(self) -> Optional[str]:
        """The Host header without any :port suffix."""
        raw = self.headers.get("host")
        if raw is None:
            return None
        return raw.split(":", 1)[0].strip()

    @property
    def content_length(self) -> int:
        """Declared body length (0 if absent, e.g. a POST without one)."""
        return _content_length(self.headers)


@dataclass
class HTTPResponseHead:
    """Parsed status line + headers."""

    version: str
    status: int
    reason: str
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def content_length(self) -> int:
        """Declared body length (0 if absent)."""
        return _content_length(self.headers)

    def usage(self) -> Optional[Tuple[float, float, float]]:
        """The (cpu_s, disk_s, net_bytes) triple from X-Gage-Usage."""
        raw = self.headers.get(USAGE_HEADER)
        if raw is None:
            return None
        parts = raw.split(",")
        if len(parts) != 3:
            raise HTTPError("malformed {} header: {!r}".format(USAGE_HEADER, raw))
        return float(parts[0]), float(parts[1]), float(parts[2])


def _content_length(headers: Dict[str, str]) -> int:
    raw = headers.get("content-length")
    if raw is None:
        return 0
    try:
        value = int(raw)
    except ValueError as exc:
        raise HTTPError("malformed content-length: {!r}".format(raw)) from exc
    if value < 0:
        raise HTTPError("negative content-length: {!r}".format(raw))
    return value


def wants_keep_alive(head: Union[HTTPRequestHead, HTTPResponseHead]) -> bool:
    """Whether this message's connection should persist afterwards.

    HTTP/1.1 defaults to keep-alive unless ``Connection: close``;
    HTTP/1.0 defaults to close unless ``Connection: keep-alive``.
    """
    connection = head.headers.get("connection", "").strip().lower()
    if connection == "keep-alive":
        return True
    if connection == "close":
        return False
    return head.version.upper() == "HTTP/1.1"


async def _read_head_block(reader: asyncio.StreamReader) -> str:
    try:
        data = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError as exc:
        # The head outgrew the StreamReader's buffer limit without ever
        # terminating — same verdict as an oversized-but-complete head.
        raise HTTPError("message head too large") from exc
    if len(data) > MAX_HEAD_BYTES:
        raise HTTPError("message head too large")
    return data.decode("latin-1")


def _parse_headers(lines) -> Dict[str, str]:
    headers: Dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        if ":" not in line:
            raise HTTPError("malformed header line: {!r}".format(line))
        name, value = line.split(":", 1)
        name = name.strip().lower()
        if name == "host" and "host" in headers:
            # Two Hosts would make classification ambiguous (RFC 7230
            # §5.4 calls for rejection); refuse rather than guess.
            raise HTTPError("multiple host headers")
        headers[name] = value.strip()
    return headers


async def read_request_head(reader: asyncio.StreamReader) -> HTTPRequestHead:
    """Read and parse one request head from the stream."""
    block = await _read_head_block(reader)
    lines = block.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HTTPError("malformed request line: {!r}".format(lines[0]))
    method, path, version = parts
    return HTTPRequestHead(
        method=method, path=path, version=version, headers=_parse_headers(lines[1:])
    )


async def read_response_head(reader: asyncio.StreamReader) -> HTTPResponseHead:
    """Read and parse one response head from the stream."""
    block = await _read_head_block(reader)
    lines = block.split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2:
        raise HTTPError("malformed status line: {!r}".format(lines[0]))
    version = parts[0]
    status = int(parts[1])
    reason = parts[2] if len(parts) > 2 else ""
    return HTTPResponseHead(
        version=version, status=status, reason=reason, headers=_parse_headers(lines[1:])
    )


def render_request_head(head: HTTPRequestHead) -> bytes:
    """Serialize a request head back to wire form."""
    lines = ["{} {} {}".format(head.method, head.path, head.version)]
    lines.extend("{}: {}".format(name, value) for name, value in head.headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def render_response_head(head: HTTPResponseHead, drop_usage: bool = False) -> bytes:
    """Serialize a response head; optionally strip the accounting header."""
    lines = ["{} {} {}".format(head.version, head.status, head.reason).rstrip()]
    for name, value in head.headers.items():
        if drop_usage and name == USAGE_HEADER:
            continue
        lines.append("{}: {}".format(name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
