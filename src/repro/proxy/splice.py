"""Byte-stream splicing for the asyncio deployment.

The userspace analogue of the paper's TCP connection splicing: once the
front end has classified a request and chosen a back end, the two sockets
are joined by relaying bytes.  (In-kernel Gage rewrites
sequence numbers so the back end answers the client directly; from
userspace the bytes must flow through the proxy — the known fidelity cost
of this deployment, documented in DESIGN.md.)
"""

from __future__ import annotations

import asyncio

#: Relay buffer size, bytes.
RELAY_CHUNK = 64 * 1024


async def relay_exactly(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, nbytes: int
) -> int:
    """Copy exactly ``nbytes`` from ``reader`` to ``writer``.

    Returns the number of bytes copied; raises ``IncompleteReadError`` if
    the source ends early.
    """
    remaining = nbytes
    copied = 0
    while remaining > 0:
        chunk = await reader.read(min(RELAY_CHUNK, remaining))
        if not chunk:
            raise asyncio.IncompleteReadError(partial=b"", expected=remaining)
        writer.write(chunk)
        copied += len(chunk)
        remaining -= len(chunk)
        await writer.drain()
    return copied


async def relay_until_eof(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> int:
    """Copy from ``reader`` to ``writer`` until EOF; returns bytes copied."""
    copied = 0
    while True:
        chunk = await reader.read(RELAY_CHUNK)
        if not chunk:
            return copied
        writer.write(chunk)
        copied += len(chunk)
        await writer.drain()
