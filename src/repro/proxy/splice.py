"""Byte-stream splicing for the asyncio deployment.

The userspace analogue of the paper's TCP connection splicing: once the
front end has classified a request and chosen a back end, the two sockets
are joined by relaying bytes.  (In-kernel Gage rewrites sequence numbers
so the back end answers the client directly; from userspace the bytes
must flow through the proxy — the known fidelity cost of this
deployment, documented in DESIGN.md.)

Zero-copy primitives (used by the relay paths and the back-end server):

- :func:`vectored_write` — writes a head + body piece list with one
  direct ``socket.sendmsg`` syscall when the destination transport's
  write buffer is empty (so ordering cannot be violated), falling back
  to buffered ``writelines`` otherwise;
- :func:`sendfile_exactly` — pushes a file-backed body with
  ``os.sendfile`` via ``loop.sendfile`` (kernel-to-kernel, no userspace
  copy), with a chunked read/write fallback for loops or destinations
  that cannot do it.

Both record what they did into :data:`splice_stats` so benchmarks and
tests can assert which path actually ran.

Two relay paths exist:

- :func:`splice_exactly` — the fast path.  It swaps an
  :class:`asyncio.Protocol` onto the *source* transport for the duration
  of one bounded body copy, so every ``data_received`` chunk goes
  straight to the destination transport without passing through a
  ``StreamReader`` buffer, and backpressure is transport flow control:
  when the destination's write buffer crosses its high-water mark the
  source is ``pause_reading()``-ed until the destination drains back
  under its low-water mark.  No per-chunk ``drain()``.
- :func:`relay_exactly` / :func:`relay_until_eof` — the stream fallback
  (used under test doubles or non-transport readers).  Since the data
  plane rework these also drain only when the destination's write
  buffer exceeds its high-water mark, and refuse to write into a
  transport that is already closing.
"""

from __future__ import annotations

import asyncio
import os
import socket
from typing import BinaryIO, List, Optional, Sequence, Union

#: Relay buffer size, bytes (stream fallback path).
RELAY_CHUNK = 64 * 1024

#: Destination write-buffer watermarks, bytes.  ``drain()``/
#: ``pause_reading()`` engage above HIGH and release below LOW; sized
#: well above one relay chunk so steady-state relaying never stalls on
#: flow control.
WRITE_HIGH_WATER = 256 * 1024
WRITE_LOW_WATER = 64 * 1024

#: Kernel socket send/receive buffer request, bytes.
SOCKET_BUFFER_BYTES = 256 * 1024

#: One buffer piece as accepted by ``sendmsg``/``writelines``.
Piece = Union[bytes, bytearray, memoryview]


class SpliceStats:
    """Process-wide counters for which write path actually ran.

    Purely observational (no control-flow reads them): benchmarks stamp
    these into ``perf_`` keys and the integration tests assert the
    zero-copy paths really engaged rather than silently falling back.
    """

    __slots__ = (
        "sendmsg_writes",
        "sendmsg_bytes",
        "sendfile_writes",
        "sendfile_bytes",
        "buffered_writes",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.sendmsg_writes = 0
        self.sendmsg_bytes = 0
        self.sendfile_writes = 0
        self.sendfile_bytes = 0
        self.buffered_writes = 0

    def snapshot(self) -> dict:
        return {
            "sendmsg_writes": self.sendmsg_writes,
            "sendmsg_bytes": self.sendmsg_bytes,
            "sendfile_writes": self.sendfile_writes,
            "sendfile_bytes": self.sendfile_bytes,
            "buffered_writes": self.buffered_writes,
        }

    def __repr__(self) -> str:
        return "<SpliceStats {}>".format(self.snapshot())


#: The process-wide instance (per worker process; workers do not share it).
splice_stats = SpliceStats()


def tune_transport(transport) -> None:
    """Throughput-tune one TCP transport.

    ``TCP_NODELAY`` (no Nagle stalls on head-then-body writes), larger
    kernel socket buffers, and write-buffer watermarks matched to the
    relay's flow-control thresholds.  Best-effort: a transport or OS
    that refuses any knob keeps its defaults.
    """
    if transport is None:
        return
    sock = transport.get_extra_info("socket")
    if sock is not None and sock.family in (socket.AF_INET, socket.AF_INET6):
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, SOCKET_BUFFER_BYTES)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, SOCKET_BUFFER_BYTES)
        except OSError:
            pass
    try:
        transport.set_write_buffer_limits(
            high=WRITE_HIGH_WATER, low=WRITE_LOW_WATER
        )
    except (AttributeError, NotImplementedError):
        pass


def _transport_of(writer):
    return getattr(writer, "transport", None)


def destination_closing(writer) -> bool:
    """Whether the writer's transport is already shutting down."""
    transport = _transport_of(writer)
    return transport is not None and transport.is_closing()


def over_high_water(writer) -> bool:
    """Whether the writer's transport buffer is past its high-water mark.

    Unknown transports (test doubles) report True so the stream relay
    falls back to draining conservatively.
    """
    transport = _transport_of(writer)
    if transport is None:
        return True
    try:
        high = transport.get_write_buffer_limits()[1]
        return transport.get_write_buffer_size() > high
    except (AttributeError, NotImplementedError):
        return True


def _direct_socket(writer) -> Optional[socket.socket]:
    """The destination's raw TCP socket, when writing to it directly is safe.

    Safe means: a real transport, not closing, not TLS, and — critically —
    an **empty** transport write buffer, so bytes pushed straight into the
    socket cannot overtake bytes the transport already queued.
    """
    transport = _transport_of(writer)
    if transport is None or transport.is_closing():
        return None
    try:
        if transport.get_write_buffer_size() != 0:
            return None
        if transport.get_extra_info("sslcontext") is not None:
            return None
        sock = transport.get_extra_info("socket")
    except (AttributeError, NotImplementedError):
        return None
    if sock is None:
        return None
    try:
        if sock.family not in (socket.AF_INET, socket.AF_INET6):
            return None
    except AttributeError:
        return None
    return sock


def _tail_after(pieces: List[Piece], sent: int) -> List[Piece]:
    """The piece views remaining after ``sent`` bytes went out."""
    remainder: List[Piece] = []
    skipped = 0
    for piece in pieces:
        length = len(piece)
        if skipped + length <= sent:
            skipped += length
            continue
        start = sent - skipped if skipped < sent else 0
        remainder.append(memoryview(piece)[start:] if start else piece)
        skipped += length
    return remainder


def vectored_write(writer, pieces: Sequence[Piece]) -> int:
    """Write a head+body piece list, preferring one ``sendmsg`` syscall.

    When the transport's write buffer is empty the whole piece list goes
    out with a single vectored ``socket.sendmsg`` — no per-piece copies
    into the transport buffer, no extra syscalls.  Any unsent tail (short
    write on a full socket buffer) and every unsafe case falls back to
    buffered ``writelines``; either way all bytes are accepted, with
    backpressure still signalled by the transport's watermarks.  Returns
    the number of bytes that went out directly (0 = fully buffered).
    """
    pieces = [piece for piece in pieces if len(piece)]
    if not pieces:
        return 0
    sock = _direct_socket(writer)
    if sock is not None:
        try:
            # Real sockets expose sendmsg; asyncio's TransportSocket
            # wrapper (3.9+) strips the I/O methods, so go through the
            # fd with writev — the identical vectored syscall without
            # ancillary data.
            sendmsg = getattr(sock, "sendmsg", None)
            if sendmsg is not None:
                sent = sendmsg(pieces)
            else:
                sent = os.writev(sock.fileno(), pieces)
        except (BlockingIOError, InterruptedError, ValueError):
            sent = 0
        except OSError:
            # A hard socket error: hand the bytes to the transport, which
            # owns failure detection and will surface it to the caller.
            sent = 0
        if sent:
            splice_stats.sendmsg_writes += 1
            splice_stats.sendmsg_bytes += sent
            remainder = _tail_after(pieces, sent)
            if remainder:
                splice_stats.buffered_writes += 1
                writer.writelines(remainder)
            return sent
    splice_stats.buffered_writes += 1
    writer.writelines(pieces)
    return 0


async def sendfile_exactly(
    writer: asyncio.StreamWriter,
    file_obj: BinaryIO,
    count: int,
    offset: int = 0,
) -> int:
    """Send exactly ``count`` bytes of ``file_obj`` from ``offset``.

    Uses ``loop.sendfile`` (``os.sendfile`` under the hood on the native
    path: the kernel moves page-cache bytes straight to the socket) with
    asyncio's own chunked fallback; test doubles without a real transport
    get a plain read/write loop.  The caller must not share ``file_obj``
    with concurrent senders — the fallback paths seek it.

    Raises ``IncompleteReadError`` if the file ends early and
    ``ConnectionResetError`` if the destination goes away.
    """
    if count <= 0:
        return 0
    if destination_closing(writer):
        raise ConnectionResetError("destination closed during sendfile")
    transport = _transport_of(writer)
    loop = asyncio.get_event_loop()
    if transport is not None and hasattr(loop, "sendfile"):
        try:
            sent = await loop.sendfile(
                transport, file_obj, offset=offset, count=count, fallback=True
            )
        except RuntimeError as exc:
            raise ConnectionResetError(
                "destination closed during sendfile"
            ) from exc
        splice_stats.sendfile_writes += 1
        splice_stats.sendfile_bytes += sent
        if sent != count:
            raise asyncio.IncompleteReadError(partial=b"", expected=count - sent)
        return sent
    splice_stats.buffered_writes += 1
    file_obj.seek(offset)
    remaining = count
    while remaining > 0:
        chunk = file_obj.read(min(RELAY_CHUNK, remaining))
        if not chunk:
            raise asyncio.IncompleteReadError(partial=b"", expected=remaining)
        if destination_closing(writer):
            raise ConnectionResetError("destination closed during sendfile")
        writer.write(chunk)
        remaining -= len(chunk)
        if remaining and over_high_water(writer):
            await writer.drain()
    return count


async def relay_exactly(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, nbytes: int
) -> int:
    """Copy exactly ``nbytes`` from ``reader`` to ``writer`` (stream path).

    Returns the number of bytes copied; raises ``IncompleteReadError`` if
    the source ends early, ``ConnectionResetError`` if the destination
    transport closes mid-copy.  Drains only past the high-water mark;
    the caller owns the final flush.
    """
    remaining = nbytes
    copied = 0
    while remaining > 0:
        chunk = await reader.read(min(RELAY_CHUNK, remaining))
        if not chunk:
            raise asyncio.IncompleteReadError(partial=b"", expected=remaining)
        if destination_closing(writer):
            raise ConnectionResetError("destination closed during relay")
        writer.write(chunk)
        copied += len(chunk)
        remaining -= len(chunk)
        if remaining and over_high_water(writer):
            await writer.drain()
    return copied


async def relay_until_eof(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> int:
    """Copy from ``reader`` to ``writer`` until EOF; returns bytes copied."""
    copied = 0
    while True:
        chunk = await reader.read(RELAY_CHUNK)
        if not chunk:
            return copied
        if destination_closing(writer):
            raise ConnectionResetError("destination closed during relay")
        writer.write(chunk)
        copied += len(chunk)
        if over_high_water(writer):
            await writer.drain()


class _SpliceProtocol(asyncio.Protocol):
    """Installed on the source transport for one bounded body copy.

    Chunks go from ``data_received`` straight into the destination
    transport; bytes past the body boundary (keep-alive pipelining) are
    stashed in ``overflow`` for the caller to push back into the
    source's ``StreamReader``.
    """

    def __init__(self, src_transport, dst_writer, nbytes: int) -> None:
        self._src = src_transport
        self._dst_writer = dst_writer
        self._dst = dst_writer.transport
        try:
            self._dst_high = self._dst.get_write_buffer_limits()[1]
        except (AttributeError, NotImplementedError):
            self._dst_high = WRITE_HIGH_WATER
        self._remaining = nbytes
        self.copied = 0
        self.overflow = bytearray()
        self.saw_eof = False
        self.lost = False
        self.lost_exc: Optional[BaseException] = None
        self._loop = asyncio.get_event_loop()
        self.done: asyncio.Future = self._loop.create_future()
        self._drainer: Optional[asyncio.Task] = None

    # -- protocol callbacks -------------------------------------------------

    def data_received(self, data: bytes) -> None:
        if self.done.done() or self._remaining <= 0:
            self.overflow += data
            return
        if len(data) > self._remaining:
            view = memoryview(data)
            take = view[: self._remaining]
            self.overflow += view[self._remaining:]
        else:
            take = data
        if self._dst.is_closing():
            self._finish(ConnectionResetError("destination closed during splice"))
            return
        self._dst.write(take)
        self.copied += len(take)
        self._remaining -= len(take)
        if self._remaining == 0:
            self._finish(None)
        elif self._dst.get_write_buffer_size() > self._dst_high:
            # Destination backpressure: stop reading the source until the
            # destination's write buffer falls back under its low-water
            # mark (its FlowControlMixin wakes the drain below).
            self._src.pause_reading()
            self._drainer = self._loop.create_task(self._drain_destination())

    def eof_received(self) -> bool:
        self.saw_eof = True
        if self._remaining > 0:
            self._finish(
                asyncio.IncompleteReadError(partial=b"", expected=self._remaining)
            )
        else:
            self._finish(None)
        # Keep the transport open: the caller restores the stream
        # protocol and forwards the EOF to its reader.
        return True

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        self.lost = True
        self.lost_exc = exc
        if self._remaining > 0:
            self._finish(
                exc
                if exc is not None
                else asyncio.IncompleteReadError(
                    partial=b"", expected=self._remaining
                )
            )
        else:
            self._finish(None)

    # -- internals ----------------------------------------------------------

    def _finish(self, exc: Optional[BaseException]) -> None:
        if self.done.done():
            return
        if exc is None:
            self.done.set_result(self.copied)
        else:
            self.done.set_exception(exc)

    async def _drain_destination(self) -> None:
        try:
            await self._dst_writer.drain()
        except (ConnectionError, RuntimeError) as exc:
            self._finish(exc)
            return
        if not self.done.done():
            self._src.resume_reading()

    def detach(self) -> None:
        """Cancel any in-flight drain waiter (called on protocol restore)."""
        if self._drainer is not None and not self._drainer.done():
            self._drainer.cancel()
        self._drainer = None
        if not self.done.done():
            self.done.cancel()


def _stream_buffer_len(reader) -> Optional[int]:
    """Bytes sitting in the StreamReader's internal buffer (None if opaque)."""
    buffer = getattr(reader, "_buffer", None)
    return len(buffer) if buffer is not None else None


async def splice_exactly(
    src_reader: asyncio.StreamReader,
    src_writer: asyncio.StreamWriter,
    dst_writer: asyncio.StreamWriter,
    nbytes: int,
    prefix: Optional[bytes] = None,
) -> int:
    """Copy exactly ``nbytes`` from the source connection to ``dst_writer``.

    ``prefix`` (a rendered message head) is written ahead of the body in
    the same vectored write as the first chunk, cutting a syscall per
    message.  Bytes already parsed into the source ``StreamReader``'s
    buffer are flushed first; the remainder is relayed transport-to-
    transport via :class:`_SpliceProtocol`.  Falls back to the stream
    relay when either side lacks a real transport.  The caller owns the
    final ``drain()`` of ``dst_writer``.
    """
    src_transport = _transport_of(src_writer)
    dst_transport = _transport_of(dst_writer)
    buffered = _stream_buffer_len(src_reader)
    if (
        src_transport is None
        or dst_transport is None
        or buffered is None
        or not hasattr(src_transport, "set_protocol")
    ):
        if prefix:
            dst_writer.write(prefix)
        if nbytes <= 0:
            return 0
        return await relay_exactly(src_reader, dst_writer, nbytes)

    # Phase 1: whatever the head parse already pulled into the reader's
    # buffer goes out vectored together with the prefix.
    pieces = [prefix] if prefix else []
    copied = 0
    remaining = nbytes
    while remaining > 0 and (_stream_buffer_len(src_reader) or 0) > 0:
        chunk = await src_reader.read(min(RELAY_CHUNK, remaining))
        if not chunk:
            raise asyncio.IncompleteReadError(partial=b"", expected=remaining)
        pieces.append(chunk)
        copied += len(chunk)
        remaining -= len(chunk)
    if pieces:
        if destination_closing(dst_writer):
            raise ConnectionResetError("destination closed during splice")
        vectored_write(dst_writer, pieces)
    if remaining <= 0:
        return copied
    if src_reader.at_eof():
        raise asyncio.IncompleteReadError(partial=b"", expected=remaining)
    if over_high_water(dst_writer):
        await dst_writer.drain()

    # Phase 2: transport-to-transport relay under flow control.
    original = src_transport.get_protocol()
    protocol = _SpliceProtocol(src_transport, dst_writer, remaining)
    src_transport.set_protocol(protocol)
    try:
        src_transport.resume_reading()
    except (AttributeError, RuntimeError):
        pass
    try:
        copied += await protocol.done
    finally:
        protocol.detach()
        src_transport.set_protocol(original)
        try:
            src_transport.resume_reading()
        except (AttributeError, RuntimeError):
            pass
        if protocol.overflow:
            src_reader.feed_data(bytes(protocol.overflow))
        if protocol.lost:
            # The stream protocol never saw the loss; forward it so
            # later reads fail fast instead of hanging.
            original.connection_lost(protocol.lost_exc)
        elif protocol.saw_eof:
            src_reader.feed_eof()
    return copied
