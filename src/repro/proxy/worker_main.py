"""Subprocess entry point for one proxy worker process.

A dedicated runnable module: the supervisor launches workers as
``python -m repro.proxy.worker_main <spec-file>``.  Running
:mod:`repro.proxy.workers` itself with ``-m`` would execute it a second
time under the name ``__main__``, so the pickled
:class:`~repro.proxy.workers.WorkerSpec` (whose class lives in the
canonical module) would fail the entry point's ``isinstance`` check.
This thin wrapper keeps the module imported exactly once.
"""

from repro.proxy.workers import main

if __name__ == "__main__":
    raise SystemExit(main())
