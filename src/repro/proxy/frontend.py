"""The Gage front end on real sockets.

Runs the *identical* scheduling/accounting code as the simulator —
:class:`~repro.core.queues.SubscriberQueues`,
:class:`~repro.core.scheduler.RequestScheduler`,
:class:`~repro.core.node_scheduler.NodeScheduler`,
:class:`~repro.core.accounting.RDNAccounting` — driven by asyncio tasks
instead of simulated processes:

- the **scheduler task** wakes every scheduling cycle (10 ms) and runs
  one WRR credit cycle; dispatched connections become asyncio tasks that
  connect to the chosen back end and splice the two sockets;
- the **accounting task** wakes every accounting cycle, turns the usage
  collected from ``X-Gage-Usage`` response headers into
  :class:`~repro.core.feedback.AccountingMessage` objects (one per back
  end), and applies them exactly as the simulated RDN would.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.accounting import RDNAccounting
from repro.core.classifier import RequestClassifier
from repro.core.config import GageConfig
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.node_scheduler import NodeScheduler
from repro.core.queues import SubscriberQueues
from repro.core.scheduler import RequestScheduler
from repro.core.subscriber import Subscriber
from repro.proxy.http import (
    HTTPError,
    HTTPRequestHead,
    read_request_head,
    read_response_head,
    render_request_head,
    render_response_head,
)
from repro.proxy.splice import relay_exactly
from repro.resources import ResourceVector


@dataclass
class ProxyStats:
    """Counters across the proxy's lifetime."""

    accepted: int = 0
    rejected_unknown_host: int = 0
    dropped_queue_full: int = 0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    bytes_relayed: int = 0


@dataclass
class _PendingConnection:
    """A classified, queued client connection awaiting dispatch."""

    head: HTTPRequestHead
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    subscriber: str


#: Default per-backend capacity: one CPU-second and disk-second per
#: second, 12.5 MB/s of link — mirrors the simulator's node capacity.
DEFAULT_BACKEND_CAPACITY = ResourceVector(1.0, 1.0, 12_500_000.0)


class GageProxy:
    """The front-end request distribution proxy."""

    def __init__(
        self,
        subscribers: List[Subscriber],
        backends: Dict[str, Tuple[str, int]],
        config: Optional[GageConfig] = None,
        host: str = "127.0.0.1",
        backend_capacity: ResourceVector = DEFAULT_BACKEND_CAPACITY,
    ) -> None:
        if not backends:
            raise ValueError("need at least one backend")
        self.config = config or GageConfig()
        self.host = host
        self.port: Optional[int] = None
        self.backends = dict(backends)
        self.stats = ProxyStats()
        self.classifier = RequestClassifier(host_extractor=lambda head: head.host)
        self.queues = SubscriberQueues()
        self.accounting = RDNAccounting()
        self.accounting.keep_usage_log = False
        self.node_scheduler = NodeScheduler(
            policy=self.config.node_policy, window_s=self.config.dispatch_window_s
        )
        self.scheduler = RequestScheduler(
            self.config,
            self.queues,
            self.accounting,
            self.node_scheduler,
            dispatch_fn=self._dispatch,
        )
        for subscriber in subscribers:
            self.queues.register(subscriber)
            self.accounting.register(subscriber)
            self.classifier.register_host(subscriber.name, subscriber.name)
        for backend_id in backends:
            self.node_scheduler.add_node(backend_id, backend_capacity)
        #: backend -> subscriber -> [usage, completed] since last flush.
        self._buckets: Dict[str, Dict[str, List[object]]] = {
            backend_id: {} for backend_id in backends
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self, port: int = 0) -> int:
        """Bind, start serving, and start the scheduler/accounting tasks."""
        self._server = await asyncio.start_server(self._handle, host=self.host, port=port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._tasks.append(asyncio.ensure_future(self._scheduler_loop()))
        self._tasks.append(asyncio.ensure_future(self._accounting_loop()))
        return self.port

    async def stop(self) -> None:
        """Stop serving and cancel the background tasks."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) once started."""
        if self.port is None:
            raise RuntimeError("proxy not started")
        return self.host, self.port

    # -- background loops --------------------------------------------------

    async def _scheduler_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.config.scheduling_cycle_s)
            self.scheduler.run_cycle()

    async def _accounting_loop(self) -> None:
        loop = asyncio.get_event_loop()
        last = loop.time()
        while not self._stopping:
            await asyncio.sleep(self.config.accounting_cycle_s)
            now = loop.time()
            for backend_id in self.backends:
                message = self._flush_bucket(backend_id, last, now)
                if message.per_subscriber:
                    self.scheduler.apply_feedback(message)
            last = now

    def _flush_bucket(self, backend_id: str, start: float, end: float) -> AccountingMessage:
        bucket = self._buckets[backend_id]
        per_subscriber = {}
        total = ResourceVector.ZERO
        for name, (usage, completed) in bucket.items():
            per_subscriber[name] = RPNUsageReport(usage, completed)
            total = total + usage
        bucket.clear()
        return AccountingMessage(
            rpn_id=backend_id,
            cycle_start_s=start,
            cycle_end_s=end,
            total_usage=total,
            per_subscriber=per_subscriber,
        )

    # -- client admission ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.accepted += 1
        try:
            head = await read_request_head(reader)
        except (HTTPError, asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        subscriber = self.classifier.classify_payload(head)
        if subscriber is None:
            self.stats.rejected_unknown_host += 1
            await self._refuse(writer, 404, "Not Found")
            return
        pending = _PendingConnection(head, reader, writer, subscriber)
        queue = self.queues.get(subscriber)
        if queue is None or not queue.offer(pending):
            self.stats.dropped_queue_full += 1
            await self._refuse(writer, 503, "Service Unavailable")
            return

    @staticmethod
    async def _refuse(writer: asyncio.StreamWriter, status: int, reason: str) -> None:
        try:
            writer.write(
                "HTTP/1.0 {} {}\r\ncontent-length: 0\r\n\r\n".format(
                    status, reason
                ).encode("latin-1")
            )
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, item: object, backend_id: str, subscriber: str) -> None:
        assert isinstance(item, _PendingConnection)
        self.stats.dispatched += 1
        task = asyncio.ensure_future(self._serve(item, backend_id, subscriber))
        self._tasks.append(task)
        self._tasks = [t for t in self._tasks if not t.done()]

    async def _serve(
        self, pending: _PendingConnection, backend_id: str, subscriber: str
    ) -> None:
        client_reader, client_writer = pending.reader, pending.writer
        backend_host, backend_port = self.backends[backend_id]
        try:
            backend_reader, backend_writer = await asyncio.open_connection(
                backend_host, backend_port
            )
        except OSError:
            self.stats.failed += 1
            self._record(backend_id, subscriber, ResourceVector.ZERO, completed=1)
            await self._refuse(client_writer, 502, "Bad Gateway")
            return
        try:
            backend_writer.write(render_request_head(pending.head))
            body_len = pending.head.content_length
            if body_len:
                await relay_exactly(client_reader, backend_writer, body_len)
            await backend_writer.drain()

            response = await read_response_head(backend_reader)
            usage_triple = response.usage()
            client_writer.write(render_response_head(response, drop_usage=True))
            relayed = await relay_exactly(
                backend_reader, client_writer, response.content_length
            )
            await client_writer.drain()
            self.stats.completed += 1
            self.stats.bytes_relayed += relayed
            usage = (
                ResourceVector(*usage_triple)
                if usage_triple is not None
                else ResourceVector(0.0, 0.0, float(relayed))
            )
            self._record(backend_id, subscriber, usage, completed=1)
        except (HTTPError, ConnectionError, asyncio.IncompleteReadError):
            self.stats.failed += 1
            self._record(backend_id, subscriber, ResourceVector.ZERO, completed=1)
        finally:
            backend_writer.close()
            client_writer.close()

    def _record(
        self, backend_id: str, subscriber: str, usage: ResourceVector, completed: int
    ) -> None:
        bucket = self._buckets[backend_id]
        if subscriber not in bucket:
            bucket[subscriber] = [ResourceVector.ZERO, 0]
        bucket[subscriber][0] = bucket[subscriber][0] + usage
        bucket[subscriber][1] += completed
