"""The Gage front end on real sockets.

Runs the *identical* scheduling/accounting code as the simulator —
:class:`~repro.core.queues.SubscriberQueues`,
:class:`~repro.core.scheduler.RequestScheduler`,
:class:`~repro.core.node_scheduler.NodeScheduler`,
:class:`~repro.core.accounting.RDNAccounting` — driven by asyncio tasks
instead of simulated processes:

- the **scheduler task** wakes every scheduling cycle (10 ms) and runs
  one WRR credit cycle; dispatched connections become asyncio tasks that
  connect to the chosen back end and splice the two sockets;
- the **accounting task** wakes every accounting cycle, turns the usage
  collected from ``X-Gage-Usage`` response headers into
  :class:`~repro.core.feedback.AccountingMessage` objects (one per back
  end), and applies them exactly as the simulated RDN would.

The data plane is built for throughput: client connections are HTTP/1.1
keep-alive (one connection carries many requests through classification
and the WRR gate), back-end sockets are pooled and reused
(:class:`~repro.proxy.backend_pool.BackendPool`), message heads and
bodies go out in one vectored write, and bulk bodies are relayed
transport-to-transport under flow control
(:func:`~repro.proxy.splice.splice_exactly`).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.accounting import RDNAccounting
from repro.core.classifier import RequestClassifier
from repro.core.config import HEDGE_OFF, HEDGE_P95, GageConfig
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.metrics import (
    BACKEND_EJECTED,
    BACKEND_READMITTED,
    REQUEST_SHED,
    FailureLog,
)
from repro.core.node_scheduler import NodeScheduler
from repro.core.queues import SubscriberQueues
from repro.core.scheduler import RequestScheduler
from repro.core.subscriber import Subscriber
from repro.proxy.backend_pool import BackendPool
from repro.proxy.client_session import ClientSessionMixin, _PendingConnection
from repro.proxy.http import (
    HTTPError,
    HTTPResponseHead,
    read_response_head,
    render_request_head,
    render_response_head,
    wants_keep_alive,
)
from repro.proxy.splice import splice_exactly, tune_transport
from repro.resources import ResourceVector
from repro.telemetry.registry import get_registry


@dataclass
class ProxyStats:
    """Counters across the proxy's lifetime."""

    accepted: int = 0
    rejected_unknown_host: int = 0
    dropped_queue_full: int = 0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    bytes_relayed: int = 0
    #: Backend reads that exceeded the response timeout (504s sent).
    timed_out: int = 0
    #: Dispatches re-attempted on an alternate backend after a failure.
    retried: int = 0
    #: Requests refused with 503 because no healthy backend existed.
    shed_no_backend: int = 0
    #: Requests that arrived on an already-open client connection.
    keepalive_requests: int = 0
    #: Hedge clones fired after the hedge delay expired unanswered.
    hedges_fired: int = 0
    #: Hedged requests where a clone's response head arrived first.
    hedges_won: int = 0
    #: Hedge losers cancelled (drained/closed) after resolution.
    hedges_cancelled: int = 0
    #: Retries skipped because the retry-budget token bucket was empty.
    retry_budget_exhausted: int = 0
    #: Requests 504ed because their deadline passed before service began.
    deadline_expired: int = 0


#: Default per-backend capacity: one CPU-second and disk-second per
#: second, 12.5 MB/s of link — mirrors the simulator's node capacity.
DEFAULT_BACKEND_CAPACITY = ResourceVector(1.0, 1.0, 12_500_000.0)


class GageProxy(ClientSessionMixin):
    """The front-end request distribution proxy.

    Client admission, keep-alive, and shedding live in
    :class:`~repro.proxy.client_session.ClientSessionMixin`; this class
    owns the control plane (scheduler/accounting loops), the dispatch
    data plane, and backend health.
    """

    def __init__(
        self,
        subscribers: List[Subscriber],
        backends: Dict[str, Tuple[str, int]],
        config: Optional[GageConfig] = None,
        host: str = "127.0.0.1",
        backend_capacity: ResourceVector = DEFAULT_BACKEND_CAPACITY,
        worker_id: int = 0,
    ) -> None:
        if not backends:
            raise ValueError("need at least one backend")
        self.config = config or GageConfig()
        self.host = host
        #: Which SO_REUSEPORT worker this proxy instance is (0 for a
        #: standalone single-process proxy); labels the accept counter
        #: so the supervisor can measure kernel accept balance.
        self.worker_id = worker_id
        self.port: Optional[int] = None
        self.backends = dict(backends)
        self.stats = ProxyStats()
        self.classifier = RequestClassifier(host_extractor=lambda head: head.host)
        self.queues = SubscriberQueues()
        self.accounting = RDNAccounting()
        self.accounting.keep_usage_log = False
        self.node_scheduler = NodeScheduler(
            policy=self.config.node_policy, window_s=self.config.dispatch_window_s
        )
        self.scheduler = RequestScheduler(
            self.config,
            self.queues,
            self.accounting,
            self.node_scheduler,
            dispatch_fn=self._dispatch,
        )
        for subscriber in subscribers:
            self.queues.register(subscriber)
            self.accounting.register(subscriber)
            self.classifier.register_host(subscriber.name, subscriber.name)
        for backend_id in backends:
            self.node_scheduler.add_node(backend_id, backend_capacity)
        #: backend -> subscriber -> [usage, completed] since last flush.
        self._buckets: Dict[str, Dict[str, List[object]]] = {
            backend_id: {} for backend_id in backends
        }
        #: Idle keep-alive sockets to each backend, reused across requests.
        self.pool = BackendPool(
            size_per_backend=self.config.proxy_pool_size,
            idle_timeout_s=self.config.proxy_pool_idle_s,
        )
        #: Ejection/re-admission/shedding ledger (loop-clock timestamps).
        self.failures = FailureLog()
        #: Consecutive failures per backend; any success resets to zero,
        #: ``proxy_failure_threshold`` in a row ejects the backend.
        self._consecutive_failures: Dict[str, int] = {
            backend_id: 0 for backend_id in backends
        }
        #: Backends with a probe task in flight (no duplicate probes).
        self._probing: Set[str] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []
        self._stopping = False
        #: Retry-budget token bucket (None = unlimited, the default).
        #: Refilled by the scheduler loop at the configured rate; a
        #: retry that finds the bucket empty is skipped, so retries plus
        #: hedges cannot storm a degraded backend.
        budget = self.config.proxy_retry_budget
        self._retry_tokens: Optional[float] = None if budget is None else float(budget)
        #: Seeded source of backoff jitter — deterministic under test.
        self._retry_rng = random.Random(0x9A9E)
        registry = get_registry()
        self._tm_connect_latency = registry.histogram("repro.proxy.connect_latency_s")
        self._tm_response_latency = registry.histogram("repro.proxy.response_latency_s")
        self._tm_retries = registry.counter("repro.proxy.retries")
        self._tm_shed = registry.counter("repro.proxy.shed_requests")
        self._tm_timeouts = registry.counter("repro.proxy.timeouts")
        self._tm_ejections = registry.counter("repro.proxy.ejections")
        self._tm_readmissions = registry.counter("repro.proxy.readmissions")
        self._tm_hedge_fired = registry.counter("repro.proxy.hedge.fired")
        self._tm_hedge_won = registry.counter("repro.proxy.hedge.won")
        self._tm_hedge_cancelled = registry.counter("repro.proxy.hedge.cancelled")
        self._tm_hedge_refunded = registry.counter("repro.proxy.hedge.refunded_grps")
        self._tm_retry_budget_exhausted = registry.counter(
            "repro.proxy.retry_budget_exhausted"
        )
        self._tm_deadline_expired = registry.counter("repro.proxy.deadline_expired")
        #: Connections this worker's listener accepted — the per-worker
        #: series behind the SO_REUSEPORT accept-balance measurement.
        self._tm_accepts = registry.counter(
            "repro.proxy.worker.accepts", worker=str(worker_id)
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self, port: int = 0, sock: Optional[object] = None) -> int:
        """Bind, start serving, and start the scheduler/accounting tasks.

        ``sock`` lets a caller hand in an already-bound listening socket
        — the multi-worker supervisor passes each worker an
        ``SO_REUSEPORT`` socket on the shared port so the kernel spreads
        incoming connections across the worker processes.
        """
        if sock is not None:
            self._server = await asyncio.start_server(self._handle, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        self._tasks.append(asyncio.ensure_future(self._scheduler_loop()))
        self._tasks.append(asyncio.ensure_future(self._accounting_loop()))
        return self.port

    async def stop(self) -> None:
        """Stop serving and cancel the background tasks."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        self.pool.close_all()

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) once started."""
        if self.port is None:
            raise RuntimeError("proxy not started")
        return self.host, self.port

    # -- background loops --------------------------------------------------

    async def _scheduler_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.config.scheduling_cycle_s)
            if self._retry_tokens is not None:
                self._retry_tokens = min(
                    float(self.config.proxy_retry_budget or 0),
                    self._retry_tokens
                    + self.config.proxy_retry_budget_refill_per_s
                    * self.config.scheduling_cycle_s,
                )
            self.scheduler.run_cycle()
            self.pool.sweep()
            get_registry().tick()
            if not self.node_scheduler.up_nodes():
                self._shed_queued()

    async def _accounting_loop(self) -> None:
        loop = asyncio.get_event_loop()
        last = loop.time()
        while not self._stopping:
            await asyncio.sleep(self.config.accounting_cycle_s)
            now = loop.time()
            for backend_id in self.backends:
                message = self._flush_bucket(backend_id, last, now)
                if message.per_subscriber:
                    self.scheduler.apply_feedback(message)
            last = now

    def _flush_bucket(self, backend_id: str, start: float, end: float) -> AccountingMessage:
        bucket = self._buckets[backend_id]
        per_subscriber = {}
        total = ResourceVector.ZERO
        for name, (usage, completed) in bucket.items():
            per_subscriber[name] = RPNUsageReport(usage, completed)
            total = total + usage
        bucket.clear()
        return AccountingMessage(
            rpn_id=backend_id,
            cycle_start_s=start,
            cycle_end_s=end,
            total_usage=total,
            per_subscriber=per_subscriber,
        )

    @staticmethod
    def _now() -> float:
        return asyncio.get_event_loop().time()

    # -- hierarchical-credit hooks (multi-worker front end) ------------------

    def credit_report(self) -> Tuple[Dict[str, ResourceVector], Dict[str, int]]:
        """(unused credit, backlog depth) per subscriber, for the supervisor.

        Mirrors :meth:`repro.core.shard.SchedulerShard.credit_report`:
        an idle subscriber offers the positive balance it hoards beyond
        one cycle's refill; a backlogged one offers nothing and reports
        its queue depth instead.
        """
        unused: Dict[str, ResourceVector] = {}
        backlog: Dict[str, int] = {}
        for queue in self.queues:
            name = queue.subscriber.name
            depth = len(queue)
            if depth > 0:
                backlog[name] = depth
                continue
            credit, _capped = self.scheduler.ledger.cycle_credit(queue.subscriber)
            offer = (self.accounting.account(name).balance - credit).clamped_min(0.0)
            if offer != ResourceVector.ZERO:
                unused[name] = offer
        return unused, backlog

    def apply_credit_grant(self, net: Dict[str, ResourceVector]) -> None:
        """Apply the supervisor's per-subscriber balance adjustments."""
        for name, delta in net.items():
            if self.queues.get(name) is not None and delta != ResourceVector.ZERO:
                self.accounting.credit(name, delta)

    def balances(self) -> Dict[str, ResourceVector]:
        """Current per-subscriber credit balances (for restart reclaim)."""
        return {
            account.subscriber.name: account.balance
            for account in self.accounting.accounts()
        }

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(
        self, item: object, backend_id: str, subscriber: str,
        predicted: ResourceVector,
    ) -> None:
        assert isinstance(item, _PendingConnection)
        self.stats.dispatched += 1
        if self.config.hedge_policy != HEDGE_OFF and item.head.content_length == 0:
            # Only bodyless requests are hedged: a request body is
            # consumed from the client stream once, so it cannot be
            # replayed to a second backend.
            coro = self._serve_hedged(item, backend_id, subscriber, predicted)
        else:
            coro = self._serve(item, backend_id, subscriber)
        task = asyncio.ensure_future(coro)
        self._tasks.append(task)
        self._tasks = [t for t in self._tasks if not t.done()]

    async def _acquire(
        self, backend_id: str, fresh: bool = False
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        """A connection to ``backend_id``: pooled if available, else dialed.

        Returns ``(reader, writer, reused)``; raises ``OSError`` or
        ``asyncio.TimeoutError`` when a fresh dial fails.
        """
        if not fresh:
            pooled = self.pool.get(backend_id)
            if pooled is not None:
                return pooled[0], pooled[1], True
        connect_started = self._now()
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(*self.backends[backend_id]),
            timeout=self.config.proxy_connect_timeout_s,
        )
        self._tm_connect_latency.observe(self._now() - connect_started)
        tune_transport(writer.transport)
        return reader, writer, False

    async def _exchange(
        self,
        request_head: bytes,
        body_len: int,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        backend_reader: asyncio.StreamReader,
        backend_writer: asyncio.StreamWriter,
        timeout: Optional[float] = None,
    ):
        """Send one request to the backend and read its response head."""
        await splice_exactly(
            client_reader, client_writer, backend_writer, body_len, prefix=request_head
        )
        await backend_writer.drain()
        return await asyncio.wait_for(
            read_response_head(backend_reader),
            timeout=(
                timeout if timeout is not None
                else self.config.proxy_response_timeout_s
            ),
        )

    async def _serve(
        self, pending: _PendingConnection, backend_id: str, subscriber: str
    ) -> None:
        """Proxy one dispatched request, riding out backend failures.

        A connect failure or timeout takes one retry (with exponential
        backoff) against the least-loaded healthy backend not yet tried;
        a backend that accepts but never answers is cut off by the
        response timeout and the client gets a 504.  Usage is always
        billed under ``backend_id`` — the backend the scheduler charged
        at dispatch — even when an alternate physically served, so the
        accounting's pending-prediction queues stay consistent.

        On success, the backend socket returns to the pool (if the
        backend kept it alive) and a keep-alive client goes back to
        waiting for its next request instead of being closed.
        """
        client_reader, client_writer = pending.reader, pending.writer
        remaining = self._deadline_remaining(pending)
        if remaining is not None and remaining <= 0:
            await self._expire(pending, backend_id, subscriber)
            return
        response_timeout = self.config.proxy_response_timeout_s
        if remaining is not None:
            response_timeout = min(response_timeout, remaining)
        head = pending.head
        client_keep_alive = wants_keep_alive(head)
        body_len = head.content_length
        # The hop to the backend is always keep-alive; the client's own
        # connection preference is honored on the client side only.
        head.headers["connection"] = "keep-alive"
        request_head = render_request_head(head)
        tried: Set[str] = set()
        current = backend_id
        started = self._now()
        connection = None
        for attempt in range(2):
            tried.add(current)
            try:
                connection = await self._acquire(current)
                break
            except (OSError, asyncio.TimeoutError):
                self._note_backend_failure(current)
                alternate = self._pick_alternate(tried)
                if attempt == 0 and alternate is not None and self._take_retry_token():
                    self.stats.retried += 1
                    self._tm_retries.inc()
                    # Full-jitter exponential backoff: a burst of failures
                    # spreads its retries over [0, base * 2^attempt)
                    # instead of hammering the alternate in lockstep.
                    await asyncio.sleep(
                        self._retry_rng.uniform(
                            0.0, self.config.proxy_retry_backoff_s * (2 ** attempt)
                        )
                    )
                    current = alternate
                    continue
                self.stats.failed += 1
                self._record(backend_id, subscriber, ResourceVector.ZERO, completed=1)
                if self.node_scheduler.up_nodes():
                    await self._refuse(client_writer, 502, "Bad Gateway")
                else:
                    self.stats.shed_no_backend += 1
                    self._tm_shed.inc()
                    self.failures.record(self._now(), REQUEST_SHED, subscriber)
                    await self._refuse(
                        client_writer,
                        503,
                        "Service Unavailable",
                        retry_after_s=self._retry_after_s(),
                    )
                return
        backend_reader, backend_writer, reused = connection
        released = False
        client_ok = False
        head_sent = False
        try:
            while True:
                try:
                    response = await self._exchange(
                        request_head,
                        body_len,
                        client_reader,
                        client_writer,
                        backend_reader,
                        backend_writer,
                        timeout=response_timeout,
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError) as exc:
                    if reused and body_len == 0:
                        # The pooled socket went stale while parked (the
                        # backend closed its end).  Nothing of the request
                        # was consumed from the client, so redial fresh
                        # once — a dead parked socket is not a backend
                        # failure.
                        backend_writer.close()
                        try:
                            backend_reader, backend_writer, reused = (
                                await self._acquire(current, fresh=True)
                            )
                        except (OSError, asyncio.TimeoutError):
                            raise exc from None
                        continue
                    raise
            usage_triple = response.usage()
            backend_keep_alive = wants_keep_alive(response)
            response.headers["connection"] = (
                "keep-alive" if client_keep_alive else "close"
            )
            response_head = render_response_head(response, drop_usage=True)
            head_sent = True
            relayed = await asyncio.wait_for(
                splice_exactly(
                    backend_reader,
                    backend_writer,
                    client_writer,
                    response.content_length,
                    prefix=response_head,
                ),
                timeout=response_timeout,
            )
            await client_writer.drain()
            self.stats.completed += 1
            self._tm_response_latency.observe(self._now() - started)
            self.stats.bytes_relayed += relayed
            usage = (
                ResourceVector(*usage_triple)
                if usage_triple is not None
                else ResourceVector(0.0, 0.0, float(relayed))
            )
            self._record(backend_id, subscriber, usage, completed=1)
            self._consecutive_failures[current] = 0
            if backend_keep_alive and not self._stopping:
                released = self.pool.put(current, backend_reader, backend_writer)
            client_ok = True
        except asyncio.TimeoutError:
            self.stats.timed_out += 1
            self._tm_timeouts.inc()
            self.stats.failed += 1
            self._note_backend_failure(current)
            self._record(backend_id, subscriber, ResourceVector.ZERO, completed=1)
            if not head_sent:
                await self._refuse(client_writer, 504, "Gateway Timeout")
            # else: the head already reached the client, so no error
            # status can follow; just cut the stalled transfer.
        except (HTTPError, ConnectionError, asyncio.IncompleteReadError):
            self.stats.failed += 1
            self._note_backend_failure(current)
            self._record(backend_id, subscriber, ResourceVector.ZERO, completed=1)
            if not head_sent:
                await self._refuse(client_writer, 502, "Bad Gateway")
        finally:
            if not released:
                backend_writer.close()
            if client_ok and client_keep_alive:
                self._resume_client(client_reader, client_writer)
            else:
                client_writer.close()

    # -- deadlines and retry budget ------------------------------------------

    def _deadline_remaining(self, pending: _PendingConnection) -> Optional[float]:
        """Seconds left before this request's deadline (None = no deadline)."""
        deadline = self.config.proxy_request_deadline_s
        if deadline is None:
            return None
        return deadline - (self._now() - pending.enqueued_at)

    async def _expire(
        self, pending: _PendingConnection, backend_id: str, subscriber: str
    ) -> None:
        """504 a request whose deadline passed while it sat queued.

        The scheduler already charged the dispatch, so a zero-usage
        completion is recorded to keep the prediction back-out aligned.
        """
        self.stats.deadline_expired += 1
        self._tm_deadline_expired.inc()
        self.stats.failed += 1
        self._record(backend_id, subscriber, ResourceVector.ZERO, completed=1)
        await self._refuse(pending.writer, 504, "Gateway Timeout")

    def _take_retry_token(self) -> bool:
        """Spend one retry-budget token; False (and counted) when empty."""
        if self._retry_tokens is None:
            return True
        if self._retry_tokens >= 1.0:
            self._retry_tokens -= 1.0
            return True
        self.stats.retry_budget_exhausted += 1
        self._tm_retry_budget_exhausted.inc()
        return False

    # -- hedging -------------------------------------------------------------

    def _hedge_delay(self) -> float:
        """Seconds to wait for the primary before firing a hedge clone.

        Under the adaptive policy the delay tracks the observed p95
        response latency (so only the slowest ~5% of requests hedge),
        falling back to the fixed delay until enough samples exist.
        """
        if self.config.hedge_policy == HEDGE_P95:
            histogram = self._tm_response_latency
            if histogram.count >= 10:
                quantile = histogram.quantile(0.95)
                if quantile > 0:
                    return quantile
        return self.config.hedge_delay_s

    async def _fetch_head(
        self, backend_id: str, request_head: bytes, timeout: float
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, HTTPResponseHead]:
        """One hedged attempt: acquire, send the head, read the response head.

        Closes its socket on any failure — including cancellation — so a
        lost attempt never leaks a connection.  A pooled socket that went
        stale while parked is redialed fresh once, exactly like the
        unhedged path.
        """
        reader, writer, reused = await self._acquire(backend_id)
        try:
            while True:
                try:
                    writer.write(request_head)
                    await writer.drain()
                    response = await asyncio.wait_for(
                        read_response_head(reader), timeout=timeout
                    )
                    return reader, writer, response
                except (ConnectionError, asyncio.IncompleteReadError):
                    if not reused:
                        raise
                    writer.close()
                    reader, writer, reused = await self._acquire(
                        backend_id, fresh=True
                    )
        except BaseException:
            writer.close()
            raise

    async def _serve_hedged(
        self,
        pending: _PendingConnection,
        backend_id: str,
        subscriber: str,
        predicted: ResourceVector,
    ) -> None:
        """Serve one dispatched request with tail-latency hedging.

        The primary attempt goes to ``backend_id`` (charged by the
        scheduler at dispatch).  If no response head arrives within the
        hedge delay, a clone is charged against — and dialed to — the
        least-loaded backend not yet holding a copy; the first head to
        arrive wins and its body is relayed to the client.  Every loser's
        prediction is refunded (:meth:`RDNAccounting.on_cancel` keeps the
        credit ledger conserved) and its socket is drained in the
        background and returned to the pool, never leaked.
        """
        client_writer = pending.writer
        remaining = self._deadline_remaining(pending)
        if remaining is not None and remaining <= 0:
            await self._expire(pending, backend_id, subscriber)
            return
        response_timeout = self.config.proxy_response_timeout_s
        if remaining is not None:
            response_timeout = min(response_timeout, remaining)
        head = pending.head
        client_keep_alive = wants_keep_alive(head)
        head.headers["connection"] = "keep-alive"
        request_head = render_request_head(head)
        started = self._now()

        #: backend -> the prediction charged for its copy of the request.
        charged: Dict[str, ResourceVector] = {backend_id: predicted}
        tasks: Dict[asyncio.Task, str] = {}
        primary = asyncio.ensure_future(
            self._fetch_head(backend_id, request_head, response_timeout)
        )
        tasks[primary] = backend_id

        winner_id: Optional[str] = None
        winner = None
        #: Attempts whose head arrived in the same wakeup as the winner's.
        late: List[Tuple[str, Tuple[
            asyncio.StreamReader, asyncio.StreamWriter, HTTPResponseHead
        ]]] = []
        hedge_wait: Optional[float] = self._hedge_delay()
        while tasks:
            done, _ = await asyncio.wait(
                set(tasks), timeout=hedge_wait,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if not done:
                # The hedge timer fired with every attempt still pending.
                clone_id = None
                if len(charged) - 1 < self.config.hedge_max_clones:
                    clone_id = self._pick_alternate(set(charged))
                if clone_id is None:
                    hedge_wait = None  # nowhere (left) to clone; just wait
                    continue
                clone_predicted = self.scheduler.estimator(subscriber).predict()
                self.accounting.on_dispatch(subscriber, clone_id, clone_predicted)
                self.node_scheduler.on_dispatch(clone_id, clone_predicted)
                charged[clone_id] = clone_predicted
                self.stats.hedges_fired += 1
                self._tm_hedge_fired.inc()
                clone = asyncio.ensure_future(
                    self._fetch_head(clone_id, request_head, response_timeout)
                )
                tasks[clone] = clone_id
                if len(charged) - 1 >= self.config.hedge_max_clones:
                    hedge_wait = None
                continue
            for task in done:
                attempt_id = tasks.pop(task)
                try:
                    result = task.result()
                except (OSError, HTTPError, ConnectionError,
                        asyncio.TimeoutError, asyncio.IncompleteReadError):
                    # A failed attempt settles its own charge: zero usage,
                    # one completion, exactly like the unhedged path.
                    self._note_backend_failure(attempt_id)
                    self._record(
                        attempt_id, subscriber, ResourceVector.ZERO, completed=1
                    )
                    charged.pop(attempt_id, None)
                    continue
                if winner_id is None:
                    winner_id, winner = attempt_id, result
                else:
                    late.append((attempt_id, result))
            if winner_id is not None:
                break

        if winner_id is None or winner is None:
            self.stats.failed += 1
            if self.node_scheduler.up_nodes():
                await self._refuse(client_writer, 502, "Bad Gateway")
            else:
                self.stats.shed_no_backend += 1
                self._tm_shed.inc()
                self.failures.record(self._now(), REQUEST_SHED, subscriber)
                await self._refuse(
                    client_writer,
                    503,
                    "Service Unavailable",
                    retry_after_s=self._retry_after_s(),
                )
            return

        if winner_id != backend_id:
            self.stats.hedges_won += 1
            self._tm_hedge_won.inc()
        # Cancel the losers: refund each one's prediction now (before any
        # accounting flush can race) and drain its socket in background.
        for task, loser_id in list(tasks.items()):
            self._refund_loser(loser_id, subscriber, charged)
            reap = asyncio.ensure_future(
                self._reap_loser(task, loser_id, subscriber)
            )
            self._tasks.append(reap)
        tasks.clear()
        for loser_id, result in late:
            self._refund_loser(loser_id, subscriber, charged)
            reap = asyncio.ensure_future(
                self._drain_loser(result, loser_id, subscriber)
            )
            self._tasks.append(reap)

        backend_reader, backend_writer, response = winner
        released = False
        client_ok = False
        try:
            usage_triple = response.usage()
            backend_keep_alive = wants_keep_alive(response)
            response.headers["connection"] = (
                "keep-alive" if client_keep_alive else "close"
            )
            response_head = render_response_head(response, drop_usage=True)
            relayed = await asyncio.wait_for(
                splice_exactly(
                    backend_reader,
                    backend_writer,
                    client_writer,
                    response.content_length,
                    prefix=response_head,
                ),
                timeout=response_timeout,
            )
            await client_writer.drain()
            self.stats.completed += 1
            self._tm_response_latency.observe(self._now() - started)
            self.stats.bytes_relayed += relayed
            usage = (
                ResourceVector(*usage_triple)
                if usage_triple is not None
                else ResourceVector(0.0, 0.0, float(relayed))
            )
            self._record(winner_id, subscriber, usage, completed=1)
            self._consecutive_failures[winner_id] = 0
            if backend_keep_alive and not self._stopping:
                released = self.pool.put(winner_id, backend_reader, backend_writer)
            client_ok = True
        except asyncio.TimeoutError:
            self.stats.timed_out += 1
            self._tm_timeouts.inc()
            self.stats.failed += 1
            self._note_backend_failure(winner_id)
            self._record(winner_id, subscriber, ResourceVector.ZERO, completed=1)
            # The response head already started toward the client; no
            # error status can follow, just cut the stalled transfer.
        except (HTTPError, ConnectionError, asyncio.IncompleteReadError):
            self.stats.failed += 1
            self._note_backend_failure(winner_id)
            self._record(winner_id, subscriber, ResourceVector.ZERO, completed=1)
        finally:
            if not released:
                backend_writer.close()
            if client_ok and client_keep_alive:
                self._resume_client(pending.reader, client_writer)
            else:
                client_writer.close()

    def _refund_loser(
        self, loser_id: str, subscriber: str, charged: Dict[str, ResourceVector]
    ) -> None:
        """Refund a hedge loser's dispatch-time prediction."""
        loser_predicted = charged.pop(loser_id, None)
        if loser_predicted is not None and self.accounting.on_cancel(
            subscriber, loser_id, loser_predicted
        ):
            self.node_scheduler.on_feedback(loser_id, loser_predicted)
            self._tm_hedge_refunded.inc(
                loser_predicted.in_generic_requests(self.config.generic_request)
            )
        self.stats.hedges_cancelled += 1
        self._tm_hedge_cancelled.inc()

    async def _reap_loser(
        self, task: "asyncio.Task", loser_id: str, subscriber: str
    ) -> None:
        """Wait out a cancelled hedge attempt, then drain and recycle it."""
        try:
            result = await task
        except (OSError, HTTPError, ConnectionError,
                asyncio.TimeoutError, asyncio.IncompleteReadError):
            # A loser that never answered is a real backend signal —
            # count it so a hung backend still gets ejected.
            self._note_backend_failure(loser_id)
            return  # _fetch_head already closed its socket
        await self._drain_loser(result, loser_id, subscriber)

    async def _drain_loser(
        self,
        result: Tuple[asyncio.StreamReader, asyncio.StreamWriter, HTTPResponseHead],
        loser_id: str,
        subscriber: str,
    ) -> None:
        """Consume a loser's response body; pool the socket, bill the usage.

        The prediction was refunded at resolution; the *measured* usage
        is billed with ``completed=0`` so the subscriber still pays for
        the work the backend actually did, without disturbing the
        count-based prediction back-out.
        """
        reader, writer, response = result
        try:
            await asyncio.wait_for(
                self._discard_body(reader, response.content_length),
                timeout=self.config.proxy_response_timeout_s,
            )
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            writer.close()
            return
        usage_triple = response.usage()
        if usage_triple is not None:
            self._record(
                loser_id, subscriber, ResourceVector(*usage_triple), completed=0
            )
        released = False
        if wants_keep_alive(response) and not self._stopping:
            released = self.pool.put(loser_id, reader, writer)
        if not released:
            writer.close()

    @staticmethod
    async def _discard_body(reader: asyncio.StreamReader, nbytes: int) -> None:
        """Read and drop exactly ``nbytes`` from a backend stream."""
        remaining = nbytes
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                raise asyncio.IncompleteReadError(partial=b"", expected=remaining)
            remaining -= len(chunk)

    # -- backend health ----------------------------------------------------------

    def _pick_alternate(self, tried: Set[str]) -> Optional[str]:
        """The least-loaded healthy backend outside ``tried``, if any."""
        candidates = [
            status
            for status in self.node_scheduler.up_nodes()
            if status.rpn_id not in tried
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.load_seconds()).rpn_id

    def _note_backend_failure(self, backend_id: str) -> None:
        """Count one failure; eject the backend at the threshold."""
        count = self._consecutive_failures.get(backend_id, 0) + 1
        self._consecutive_failures[backend_id] = count
        status = self.node_scheduler.get(backend_id)
        if (
            status is not None
            and status.up
            and count >= self.config.proxy_failure_threshold
        ):
            now = self._now()
            self.node_scheduler.mark_down(backend_id, at_s=now)
            # No socket to a dead node survives in the pool.
            self.pool.drop_backend(backend_id)
            self._tm_ejections.inc()
            self.failures.record(now, BACKEND_EJECTED, backend_id, detail=float(count))
            if backend_id not in self._probing:
                self._probing.add(backend_id)
                task = asyncio.ensure_future(self._probe_loop(backend_id))
                self._tasks.append(task)

    async def _probe_loop(self, backend_id: str) -> None:
        """Re-admit an ejected backend once a probe connect succeeds."""
        host, port = self.backends[backend_id]
        try:
            while not self._stopping:
                await asyncio.sleep(self.config.proxy_probe_interval_s)
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port),
                        timeout=self.config.proxy_connect_timeout_s,
                    )
                except (OSError, asyncio.TimeoutError):
                    continue
                self._consecutive_failures[backend_id] = 0
                self.node_scheduler.mark_up(backend_id)
                self._tm_readmissions.inc()
                self.failures.record(self._now(), BACKEND_READMITTED, backend_id)
                # The probe connection itself seeds the refilled pool.
                tune_transport(writer.transport)
                self.pool.put(backend_id, reader, writer)
                return
        finally:
            self._probing.discard(backend_id)

    def _record(
        self, backend_id: str, subscriber: str, usage: ResourceVector, completed: int
    ) -> None:
        bucket = self._buckets[backend_id]
        if subscriber not in bucket:
            bucket[subscriber] = [ResourceVector.ZERO, 0]
        bucket[subscriber][0] = bucket[subscriber][0] + usage
        bucket[subscriber][1] += completed
