"""The Gage front end on real sockets.

Runs the *identical* scheduling/accounting code as the simulator —
:class:`~repro.core.queues.SubscriberQueues`,
:class:`~repro.core.scheduler.RequestScheduler`,
:class:`~repro.core.node_scheduler.NodeScheduler`,
:class:`~repro.core.accounting.RDNAccounting` — driven by asyncio tasks
instead of simulated processes:

- the **scheduler task** wakes every scheduling cycle (10 ms) and runs
  one WRR credit cycle; dispatched connections become asyncio tasks that
  connect to the chosen back end and splice the two sockets;
- the **accounting task** wakes every accounting cycle, turns the usage
  collected from ``X-Gage-Usage`` response headers into
  :class:`~repro.core.feedback.AccountingMessage` objects (one per back
  end), and applies them exactly as the simulated RDN would.

The data plane is built for throughput: client connections are HTTP/1.1
keep-alive (one connection carries many requests through classification
and the WRR gate), back-end sockets are pooled and reused
(:class:`~repro.proxy.backend_pool.BackendPool`), message heads and
bodies go out in one vectored write, and bulk bodies are relayed
transport-to-transport under flow control
(:func:`~repro.proxy.splice.splice_exactly`).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.accounting import RDNAccounting
from repro.core.classifier import RequestClassifier
from repro.core.config import GageConfig
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.metrics import (
    BACKEND_EJECTED,
    BACKEND_READMITTED,
    REQUEST_SHED,
    FailureLog,
)
from repro.core.node_scheduler import NodeScheduler
from repro.core.queues import SubscriberQueues
from repro.core.scheduler import RequestScheduler
from repro.core.subscriber import Subscriber
from repro.proxy.backend_pool import BackendPool
from repro.proxy.client_session import ClientSessionMixin, _PendingConnection
from repro.proxy.http import (
    HTTPError,
    read_response_head,
    render_request_head,
    render_response_head,
    wants_keep_alive,
)
from repro.proxy.splice import splice_exactly, tune_transport
from repro.resources import ResourceVector
from repro.telemetry.registry import get_registry


@dataclass
class ProxyStats:
    """Counters across the proxy's lifetime."""

    accepted: int = 0
    rejected_unknown_host: int = 0
    dropped_queue_full: int = 0
    dispatched: int = 0
    completed: int = 0
    failed: int = 0
    bytes_relayed: int = 0
    #: Backend reads that exceeded the response timeout (504s sent).
    timed_out: int = 0
    #: Dispatches re-attempted on an alternate backend after a failure.
    retried: int = 0
    #: Requests refused with 503 because no healthy backend existed.
    shed_no_backend: int = 0
    #: Requests that arrived on an already-open client connection.
    keepalive_requests: int = 0


#: Default per-backend capacity: one CPU-second and disk-second per
#: second, 12.5 MB/s of link — mirrors the simulator's node capacity.
DEFAULT_BACKEND_CAPACITY = ResourceVector(1.0, 1.0, 12_500_000.0)


class GageProxy(ClientSessionMixin):
    """The front-end request distribution proxy.

    Client admission, keep-alive, and shedding live in
    :class:`~repro.proxy.client_session.ClientSessionMixin`; this class
    owns the control plane (scheduler/accounting loops), the dispatch
    data plane, and backend health.
    """

    def __init__(
        self,
        subscribers: List[Subscriber],
        backends: Dict[str, Tuple[str, int]],
        config: Optional[GageConfig] = None,
        host: str = "127.0.0.1",
        backend_capacity: ResourceVector = DEFAULT_BACKEND_CAPACITY,
    ) -> None:
        if not backends:
            raise ValueError("need at least one backend")
        self.config = config or GageConfig()
        self.host = host
        self.port: Optional[int] = None
        self.backends = dict(backends)
        self.stats = ProxyStats()
        self.classifier = RequestClassifier(host_extractor=lambda head: head.host)
        self.queues = SubscriberQueues()
        self.accounting = RDNAccounting()
        self.accounting.keep_usage_log = False
        self.node_scheduler = NodeScheduler(
            policy=self.config.node_policy, window_s=self.config.dispatch_window_s
        )
        self.scheduler = RequestScheduler(
            self.config,
            self.queues,
            self.accounting,
            self.node_scheduler,
            dispatch_fn=self._dispatch,
        )
        for subscriber in subscribers:
            self.queues.register(subscriber)
            self.accounting.register(subscriber)
            self.classifier.register_host(subscriber.name, subscriber.name)
        for backend_id in backends:
            self.node_scheduler.add_node(backend_id, backend_capacity)
        #: backend -> subscriber -> [usage, completed] since last flush.
        self._buckets: Dict[str, Dict[str, List[object]]] = {
            backend_id: {} for backend_id in backends
        }
        #: Idle keep-alive sockets to each backend, reused across requests.
        self.pool = BackendPool(
            size_per_backend=self.config.proxy_pool_size,
            idle_timeout_s=self.config.proxy_pool_idle_s,
        )
        #: Ejection/re-admission/shedding ledger (loop-clock timestamps).
        self.failures = FailureLog()
        #: Consecutive failures per backend; any success resets to zero,
        #: ``proxy_failure_threshold`` in a row ejects the backend.
        self._consecutive_failures: Dict[str, int] = {
            backend_id: 0 for backend_id in backends
        }
        #: Backends with a probe task in flight (no duplicate probes).
        self._probing: Set[str] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []
        self._stopping = False
        registry = get_registry()
        self._tm_connect_latency = registry.histogram("repro.proxy.connect_latency_s")
        self._tm_response_latency = registry.histogram("repro.proxy.response_latency_s")
        self._tm_retries = registry.counter("repro.proxy.retries")
        self._tm_shed = registry.counter("repro.proxy.shed_requests")
        self._tm_timeouts = registry.counter("repro.proxy.timeouts")
        self._tm_ejections = registry.counter("repro.proxy.ejections")
        self._tm_readmissions = registry.counter("repro.proxy.readmissions")

    # -- lifecycle ---------------------------------------------------------

    async def start(self, port: int = 0, sock: Optional[object] = None) -> int:
        """Bind, start serving, and start the scheduler/accounting tasks.

        ``sock`` lets a caller hand in an already-bound listening socket
        — the multi-worker supervisor passes each worker an
        ``SO_REUSEPORT`` socket on the shared port so the kernel spreads
        incoming connections across the worker processes.
        """
        if sock is not None:
            self._server = await asyncio.start_server(self._handle, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=port
            )
        self.port = self._server.sockets[0].getsockname()[1]
        self._tasks.append(asyncio.ensure_future(self._scheduler_loop()))
        self._tasks.append(asyncio.ensure_future(self._accounting_loop()))
        return self.port

    async def stop(self) -> None:
        """Stop serving and cancel the background tasks."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        self.pool.close_all()

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) once started."""
        if self.port is None:
            raise RuntimeError("proxy not started")
        return self.host, self.port

    # -- background loops --------------------------------------------------

    async def _scheduler_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.config.scheduling_cycle_s)
            self.scheduler.run_cycle()
            self.pool.sweep()
            get_registry().tick()
            if not self.node_scheduler.up_nodes():
                self._shed_queued()

    async def _accounting_loop(self) -> None:
        loop = asyncio.get_event_loop()
        last = loop.time()
        while not self._stopping:
            await asyncio.sleep(self.config.accounting_cycle_s)
            now = loop.time()
            for backend_id in self.backends:
                message = self._flush_bucket(backend_id, last, now)
                if message.per_subscriber:
                    self.scheduler.apply_feedback(message)
            last = now

    def _flush_bucket(self, backend_id: str, start: float, end: float) -> AccountingMessage:
        bucket = self._buckets[backend_id]
        per_subscriber = {}
        total = ResourceVector.ZERO
        for name, (usage, completed) in bucket.items():
            per_subscriber[name] = RPNUsageReport(usage, completed)
            total = total + usage
        bucket.clear()
        return AccountingMessage(
            rpn_id=backend_id,
            cycle_start_s=start,
            cycle_end_s=end,
            total_usage=total,
            per_subscriber=per_subscriber,
        )

    @staticmethod
    def _now() -> float:
        return asyncio.get_event_loop().time()

    # -- hierarchical-credit hooks (multi-worker front end) ------------------

    def credit_report(self) -> Tuple[Dict[str, ResourceVector], Dict[str, int]]:
        """(unused credit, backlog depth) per subscriber, for the supervisor.

        Mirrors :meth:`repro.core.shard.SchedulerShard.credit_report`:
        an idle subscriber offers the positive balance it hoards beyond
        one cycle's refill; a backlogged one offers nothing and reports
        its queue depth instead.
        """
        unused: Dict[str, ResourceVector] = {}
        backlog: Dict[str, int] = {}
        for queue in self.queues:
            name = queue.subscriber.name
            depth = len(queue)
            if depth > 0:
                backlog[name] = depth
                continue
            credit, _capped = self.scheduler.ledger.cycle_credit(queue.subscriber)
            offer = (self.accounting.account(name).balance - credit).clamped_min(0.0)
            if offer != ResourceVector.ZERO:
                unused[name] = offer
        return unused, backlog

    def apply_credit_grant(self, net: Dict[str, ResourceVector]) -> None:
        """Apply the supervisor's per-subscriber balance adjustments."""
        for name, delta in net.items():
            if self.queues.get(name) is not None and delta != ResourceVector.ZERO:
                self.accounting.credit(name, delta)

    def balances(self) -> Dict[str, ResourceVector]:
        """Current per-subscriber credit balances (for restart reclaim)."""
        return {
            account.subscriber.name: account.balance
            for account in self.accounting.accounts()
        }

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, item: object, backend_id: str, subscriber: str) -> None:
        assert isinstance(item, _PendingConnection)
        self.stats.dispatched += 1
        task = asyncio.ensure_future(self._serve(item, backend_id, subscriber))
        self._tasks.append(task)
        self._tasks = [t for t in self._tasks if not t.done()]

    async def _acquire(
        self, backend_id: str, fresh: bool = False
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, bool]:
        """A connection to ``backend_id``: pooled if available, else dialed.

        Returns ``(reader, writer, reused)``; raises ``OSError`` or
        ``asyncio.TimeoutError`` when a fresh dial fails.
        """
        if not fresh:
            pooled = self.pool.get(backend_id)
            if pooled is not None:
                return pooled[0], pooled[1], True
        connect_started = self._now()
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(*self.backends[backend_id]),
            timeout=self.config.proxy_connect_timeout_s,
        )
        self._tm_connect_latency.observe(self._now() - connect_started)
        tune_transport(writer.transport)
        return reader, writer, False

    async def _exchange(
        self,
        request_head: bytes,
        body_len: int,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
        backend_reader: asyncio.StreamReader,
        backend_writer: asyncio.StreamWriter,
    ):
        """Send one request to the backend and read its response head."""
        await splice_exactly(
            client_reader, client_writer, backend_writer, body_len, prefix=request_head
        )
        await backend_writer.drain()
        return await asyncio.wait_for(
            read_response_head(backend_reader),
            timeout=self.config.proxy_response_timeout_s,
        )

    async def _serve(
        self, pending: _PendingConnection, backend_id: str, subscriber: str
    ) -> None:
        """Proxy one dispatched request, riding out backend failures.

        A connect failure or timeout takes one retry (with exponential
        backoff) against the least-loaded healthy backend not yet tried;
        a backend that accepts but never answers is cut off by the
        response timeout and the client gets a 504.  Usage is always
        billed under ``backend_id`` — the backend the scheduler charged
        at dispatch — even when an alternate physically served, so the
        accounting's pending-prediction queues stay consistent.

        On success, the backend socket returns to the pool (if the
        backend kept it alive) and a keep-alive client goes back to
        waiting for its next request instead of being closed.
        """
        client_reader, client_writer = pending.reader, pending.writer
        head = pending.head
        client_keep_alive = wants_keep_alive(head)
        body_len = head.content_length
        # The hop to the backend is always keep-alive; the client's own
        # connection preference is honored on the client side only.
        head.headers["connection"] = "keep-alive"
        request_head = render_request_head(head)
        tried: Set[str] = set()
        current = backend_id
        started = self._now()
        connection = None
        for attempt in range(2):
            tried.add(current)
            try:
                connection = await self._acquire(current)
                break
            except (OSError, asyncio.TimeoutError):
                self._note_backend_failure(current)
                alternate = self._pick_alternate(tried)
                if attempt == 0 and alternate is not None:
                    self.stats.retried += 1
                    self._tm_retries.inc()
                    await asyncio.sleep(
                        self.config.proxy_retry_backoff_s * (2 ** attempt)
                    )
                    current = alternate
                    continue
                self.stats.failed += 1
                self._record(backend_id, subscriber, ResourceVector.ZERO, completed=1)
                if self.node_scheduler.up_nodes():
                    await self._refuse(client_writer, 502, "Bad Gateway")
                else:
                    self.stats.shed_no_backend += 1
                    self._tm_shed.inc()
                    self.failures.record(self._now(), REQUEST_SHED, subscriber)
                    await self._refuse(
                        client_writer,
                        503,
                        "Service Unavailable",
                        retry_after_s=self._retry_after_s(),
                    )
                return
        backend_reader, backend_writer, reused = connection
        released = False
        client_ok = False
        head_sent = False
        try:
            while True:
                try:
                    response = await self._exchange(
                        request_head,
                        body_len,
                        client_reader,
                        client_writer,
                        backend_reader,
                        backend_writer,
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError) as exc:
                    if reused and body_len == 0:
                        # The pooled socket went stale while parked (the
                        # backend closed its end).  Nothing of the request
                        # was consumed from the client, so redial fresh
                        # once — a dead parked socket is not a backend
                        # failure.
                        backend_writer.close()
                        try:
                            backend_reader, backend_writer, reused = (
                                await self._acquire(current, fresh=True)
                            )
                        except (OSError, asyncio.TimeoutError):
                            raise exc from None
                        continue
                    raise
            usage_triple = response.usage()
            backend_keep_alive = wants_keep_alive(response)
            response.headers["connection"] = (
                "keep-alive" if client_keep_alive else "close"
            )
            response_head = render_response_head(response, drop_usage=True)
            head_sent = True
            relayed = await asyncio.wait_for(
                splice_exactly(
                    backend_reader,
                    backend_writer,
                    client_writer,
                    response.content_length,
                    prefix=response_head,
                ),
                timeout=self.config.proxy_response_timeout_s,
            )
            await client_writer.drain()
            self.stats.completed += 1
            self._tm_response_latency.observe(self._now() - started)
            self.stats.bytes_relayed += relayed
            usage = (
                ResourceVector(*usage_triple)
                if usage_triple is not None
                else ResourceVector(0.0, 0.0, float(relayed))
            )
            self._record(backend_id, subscriber, usage, completed=1)
            self._consecutive_failures[current] = 0
            if backend_keep_alive and not self._stopping:
                released = self.pool.put(current, backend_reader, backend_writer)
            client_ok = True
        except asyncio.TimeoutError:
            self.stats.timed_out += 1
            self._tm_timeouts.inc()
            self.stats.failed += 1
            self._note_backend_failure(current)
            self._record(backend_id, subscriber, ResourceVector.ZERO, completed=1)
            if not head_sent:
                await self._refuse(client_writer, 504, "Gateway Timeout")
            # else: the head already reached the client, so no error
            # status can follow; just cut the stalled transfer.
        except (HTTPError, ConnectionError, asyncio.IncompleteReadError):
            self.stats.failed += 1
            self._note_backend_failure(current)
            self._record(backend_id, subscriber, ResourceVector.ZERO, completed=1)
            if not head_sent:
                await self._refuse(client_writer, 502, "Bad Gateway")
        finally:
            if not released:
                backend_writer.close()
            if client_ok and client_keep_alive:
                self._resume_client(client_reader, client_writer)
            else:
                client_writer.close()

    # -- backend health ----------------------------------------------------------

    def _pick_alternate(self, tried: Set[str]) -> Optional[str]:
        """The least-loaded healthy backend outside ``tried``, if any."""
        candidates = [
            status
            for status in self.node_scheduler.up_nodes()
            if status.rpn_id not in tried
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.load_seconds()).rpn_id

    def _note_backend_failure(self, backend_id: str) -> None:
        """Count one failure; eject the backend at the threshold."""
        count = self._consecutive_failures.get(backend_id, 0) + 1
        self._consecutive_failures[backend_id] = count
        status = self.node_scheduler.get(backend_id)
        if (
            status is not None
            and status.up
            and count >= self.config.proxy_failure_threshold
        ):
            now = self._now()
            self.node_scheduler.mark_down(backend_id, at_s=now)
            # No socket to a dead node survives in the pool.
            self.pool.drop_backend(backend_id)
            self._tm_ejections.inc()
            self.failures.record(now, BACKEND_EJECTED, backend_id, detail=float(count))
            if backend_id not in self._probing:
                self._probing.add(backend_id)
                task = asyncio.ensure_future(self._probe_loop(backend_id))
                self._tasks.append(task)

    async def _probe_loop(self, backend_id: str) -> None:
        """Re-admit an ejected backend once a probe connect succeeds."""
        host, port = self.backends[backend_id]
        try:
            while not self._stopping:
                await asyncio.sleep(self.config.proxy_probe_interval_s)
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port),
                        timeout=self.config.proxy_connect_timeout_s,
                    )
                except (OSError, asyncio.TimeoutError):
                    continue
                self._consecutive_failures[backend_id] = 0
                self.node_scheduler.mark_up(backend_id)
                self._tm_readmissions.inc()
                self.failures.record(self._now(), BACKEND_READMITTED, backend_id)
                # The probe connection itself seeds the refilled pool.
                tune_transport(writer.transport)
                self.pool.put(backend_id, reader, writer)
                return
        finally:
            self._probing.discard(backend_id)

    def _record(
        self, backend_id: str, subscriber: str, usage: ResourceVector, completed: int
    ) -> None:
        bucket = self._buckets[backend_id]
        if subscriber not in bucket:
            bucket[subscriber] = [ResourceVector.ZERO, 0]
        bucket[subscriber][0] = bucket[subscriber][0] + usage
        bucket[subscriber][1] += completed
