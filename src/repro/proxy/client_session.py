"""Client-facing session handling: admission, keep-alive, shedding.

Split out of :mod:`repro.proxy.frontend` (a pure move): everything
between ``accept()`` and the scheduler queue lives here — parsing the
request head, classifying it to a subscriber, the admission/shedding
decisions (404 unknown host, 503 queue-full, 503 no-healthy-backend),
and the keep-alive loop that parks an idle client connection between
requests.  :class:`~repro.proxy.frontend.GageProxy` mixes this in; the
dispatch/splice data plane and backend health logic stay in
``frontend.py``.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.metrics import REQUEST_SHED
from repro.proxy.http import HTTPError, HTTPRequestHead, read_request_head
from repro.proxy.splice import tune_transport


@dataclass
class _PendingConnection:
    """A classified, queued client connection awaiting dispatch."""

    head: HTTPRequestHead
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    subscriber: str
    #: Loop-clock time the request entered its subscriber queue; the
    #: per-request deadline (``proxy_request_deadline_s``) counts from
    #: here, so time spent queued behind the WRR gate is included.
    enqueued_at: float = 0.0


#: Rendered refusal heads, keyed (status, reason, retry_after_s).  A
#: shedding proxy refuses thousands of identical 503s; rendering each
#: once is free throughput on exactly the overloaded path.
_REFUSAL_CACHE: Dict[Tuple[int, str, Optional[int]], bytes] = {}


def _refusal_bytes(status: int, reason: str, retry_after_s: Optional[int]) -> bytes:
    key = (status, reason, retry_after_s)
    rendered = _REFUSAL_CACHE.get(key)
    if rendered is None:
        headers = ["content-length: 0", "connection: close"]
        if retry_after_s is not None:
            headers.append("retry-after: {}".format(retry_after_s))
        rendered = "HTTP/1.0 {} {}\r\n{}\r\n\r\n".format(
            status, reason, "\r\n".join(headers)
        ).encode("latin-1")
        _REFUSAL_CACHE[key] = rendered
    return rendered


class ClientSessionMixin:
    """The client-admission half of :class:`~repro.proxy.frontend.GageProxy`.

    Relies on attributes the concrete proxy constructs: ``stats``,
    ``classifier``, ``queues``, ``node_scheduler``, ``failures``,
    ``config``, ``_tasks``, ``_tm_shed``, ``_tm_accepts``, and
    ``_now()``.
    """

    # -- client admission ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.accepted += 1
        self._tm_accepts.inc()
        tune_transport(writer.transport)
        try:
            head = await read_request_head(reader)
        except (HTTPError, asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except asyncio.CancelledError:
            # Loop teardown while waiting on an idle client; exit quietly.
            writer.close()
            return
        await self._admit(head, reader, writer)

    async def _admit(
        self,
        head: HTTPRequestHead,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Classify one parsed request and queue it for the scheduler."""
        subscriber = self.classifier.classify_payload(head)
        if subscriber is None:
            self.stats.rejected_unknown_host += 1
            await self._refuse(writer, 404, "Not Found")
            return
        if not self.node_scheduler.up_nodes():
            # Load shedding: every backend is ejected, so queueing would
            # only delay the inevitable — fail fast and tell the client
            # when to come back.
            self.stats.shed_no_backend += 1
            self._tm_shed.inc()
            self.failures.record(self._now(), REQUEST_SHED, subscriber)
            await self._refuse(
                writer, 503, "Service Unavailable", retry_after_s=self._retry_after_s()
            )
            return
        pending = _PendingConnection(
            head, reader, writer, subscriber, enqueued_at=self._now()
        )
        queue = self.queues.get(subscriber)
        if queue is None or not queue.offer(pending):
            self.stats.dropped_queue_full += 1
            await self._refuse(
                writer, 503, "Service Unavailable", retry_after_s=1
            )
            return

    def _resume_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Wait for the next request on a kept-alive client connection."""
        task = asyncio.ensure_future(self._keepalive_loop(reader, writer))
        self._tasks.append(task)
        self._tasks = [t for t in self._tasks if not t.done()]

    async def _keepalive_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await asyncio.wait_for(
                read_request_head(reader),
                timeout=self.config.proxy_keepalive_idle_s,
            )
        except (
            asyncio.TimeoutError,
            HTTPError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            writer.close()
            return
        self.stats.keepalive_requests += 1
        await self._admit(head, reader, writer)

    # -- shedding -----------------------------------------------------------

    def _shed_queued(self) -> None:
        """503 every queued connection while no backend is healthy.

        Without this, connections admitted just before the last backend
        was ejected would sit in their queues indefinitely (``pick``
        returns None) and their clients would hang instead of failing
        fast.
        """
        for queue in self.queues:
            while queue.backlogged:
                pending = queue.take()
                self.stats.shed_no_backend += 1
                self._tm_shed.inc()
                self.failures.record(
                    self._now(), REQUEST_SHED, pending.subscriber
                )
                task = asyncio.ensure_future(
                    self._refuse(
                        pending.writer,
                        503,
                        "Service Unavailable",
                        retry_after_s=self._retry_after_s(),
                    )
                )
                self._tasks.append(task)

    @staticmethod
    async def _refuse(
        writer: asyncio.StreamWriter,
        status: int,
        reason: str,
        retry_after_s: Optional[int] = None,
    ) -> None:
        try:
            writer.write(_refusal_bytes(status, reason, retry_after_s))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    def _retry_after_s(self) -> int:
        """When a shed client should retry: one probe interval, >= 1 s."""
        return max(1, int(math.ceil(self.config.proxy_probe_interval_s)))
