"""Command-line demo of the asyncio Gage deployment.

Usage::

    python -m repro.proxy [--duration 5] [--backends 2] \
        [--subscriber gold.example.com:120:60] \
        [--subscriber flood.example.com:25:150]

Each ``--subscriber`` is ``host:reservation_grps:offered_rps``.  Starts
the back ends and proxy on localhost, drives the offered load, prints a
per-subscriber report, and exits.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Tuple

from repro.proxy import loop_policy
from repro.proxy.demo import run_demo


def parse_subscriber(raw: str) -> Tuple[str, float, float]:
    """Parse one host:reservation:rate triple."""
    parts = raw.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            "expected host:reservation_grps:offered_rps, got {!r}".format(raw)
        )
    return parts[0], float(parts[1]), float(parts[2])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.proxy",
        description="Run the Gage asyncio proxy demo on localhost.",
    )
    parser.add_argument("--duration", type=float, default=4.0,
                        help="seconds of offered load (default: 4)")
    parser.add_argument("--backends", type=int, default=2,
                        help="number of back-end servers (default: 2)")
    parser.add_argument("--time-scale", type=float, default=0.25,
                        help="shrink modeled back-end service times (default: 0.25)")
    parser.add_argument(
        "--subscriber",
        action="append",
        type=parse_subscriber,
        metavar="HOST:GRPS:RPS",
        help="host:reservation_grps:offered_rps (repeatable)",
    )
    parser.add_argument(
        "--event-loop",
        choices=loop_policy.POLICIES,
        default="auto",
        help="event loop implementation (default: auto = uvloop if importable)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    subscribers = args.subscriber or [
        ("gold.example.com", 120.0, 60.0),
        ("flood.example.com", 25.0, 150.0),
    ]
    reservations: Dict[str, float] = {host: grps for host, grps, _ in subscribers}
    rates: Dict[str, float] = {host: rate for host, _, rate in subscribers}

    result = loop_policy.run(
        run_demo(
            reservations=reservations,
            rates=rates,
            duration_s=args.duration,
            num_backends=args.backends,
            time_scale=args.time_scale,
        ),
        policy=args.event_loop,
    )
    print("{:<24} {:>11} {:>9} {:>9} {:>10}".format(
        "subscriber", "reservation", "completed", "refused", "mean lat"))
    for host, grps in reservations.items():
        print("{:<24} {:>11.0f} {:>9} {:>9} {:>8.1f}ms".format(
            host,
            grps,
            result.completed.get(host, 0),
            result.refused.get(host, 0) + result.errors.get(host, 0),
            1000 * result.mean_latency_s(host),
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
