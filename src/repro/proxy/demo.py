"""Turn-key assembly of the asyncio deployment on localhost.

Starts N back-end servers and the Gage front-end proxy, drives an
open-loop HTTP load against it, and reports per-subscriber outcomes —
used by ``examples/asyncio_proxy_demo.py`` and the proxy test suite.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import GageConfig
from repro.core.subscriber import Subscriber
from repro.proxy.backend import BackendServer
from repro.proxy.frontend import GageProxy
from repro.proxy.http import read_response_head
from repro.workload.request import CostModel


@dataclass
class DemoResult:
    """Outcome of one demo run."""

    issued: Dict[str, int] = field(default_factory=dict)
    completed: Dict[str, int] = field(default_factory=dict)
    refused: Dict[str, int] = field(default_factory=dict)
    errors: Dict[str, int] = field(default_factory=dict)
    latencies_s: Dict[str, List[float]] = field(default_factory=dict)

    def completed_rate(self, host: str, duration_s: float) -> float:
        """Completed requests per second for one host."""
        return self.completed.get(host, 0) / duration_s if duration_s > 0 else 0.0

    def mean_latency_s(self, host: str) -> float:
        """Mean latency of one host's completed requests."""
        values = self.latencies_s.get(host, [])
        return sum(values) / len(values) if values else 0.0


async def _one_request(
    host: str, port: int, site: str, path: str, result: DemoResult
) -> None:
    loop = asyncio.get_event_loop()
    started = loop.time()
    result.issued[site] = result.issued.get(site, 0) + 1
    try:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            "GET {} HTTP/1.0\r\nHost: {}\r\n\r\n".format(path, site).encode("latin-1")
        )
        await writer.drain()
        head = await read_response_head(reader)
        remaining = head.content_length
        while remaining > 0:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                raise ConnectionError("short body")
            remaining -= len(chunk)
        writer.close()
        if head.status == 200:
            result.completed[site] = result.completed.get(site, 0) + 1
            result.latencies_s.setdefault(site, []).append(loop.time() - started)
        else:
            result.refused[site] = result.refused.get(site, 0) + 1
    except (OSError, asyncio.IncompleteReadError, ConnectionError):
        result.errors[site] = result.errors.get(site, 0) + 1


async def run_demo(
    reservations: Dict[str, float],
    rates: Dict[str, float],
    duration_s: float = 3.0,
    num_backends: int = 2,
    file_bytes: int = 2000,
    time_scale: float = 1.0,
    config: Optional[GageConfig] = None,
    queue_capacity: int = 256,
) -> DemoResult:
    """Run the full localhost deployment for ``duration_s`` seconds.

    ``reservations`` are GRPS per subscriber; ``rates`` the offered loads
    in requests/second; ``time_scale`` shrinks the modeled back-end
    service times (useful to keep test wall time down).
    """
    sites = {host: {"/index.html": file_bytes} for host in reservations}
    cost_model = CostModel()
    backends = [
        BackendServer(sites, cost_model=cost_model, time_scale=time_scale)
        for _ in range(num_backends)
    ]
    backend_addrs = {}
    for index, backend in enumerate(backends):
        port = await backend.start()
        backend_addrs["backend{}".format(index)] = ("127.0.0.1", port)

    subscribers = [
        Subscriber(host, grps, queue_capacity=queue_capacity)
        for host, grps in reservations.items()
    ]
    proxy = GageProxy(subscribers, backend_addrs, config=config)
    port = await proxy.start()

    result = DemoResult()
    tasks: List[asyncio.Task] = []
    loop = asyncio.get_event_loop()
    started = loop.time()

    async def generate(site: str, rate: float) -> None:
        if rate <= 0:
            return
        period = 1.0 / rate
        while loop.time() - started < duration_s:
            tasks.append(
                asyncio.ensure_future(
                    _one_request("127.0.0.1", port, site, "/index.html", result)
                )
            )
            await asyncio.sleep(period)

    generators = [
        asyncio.ensure_future(generate(site, rate)) for site, rate in rates.items()
    ]
    await asyncio.gather(*generators)
    # Let in-flight requests drain.
    await asyncio.sleep(0.5 + 0.1 / max(time_scale, 0.01))
    for task in tasks:
        if not task.done():
            task.cancel()
    await asyncio.gather(*tasks, return_exceptions=True)

    await proxy.stop()
    for backend in backends:
        await backend.stop()
    return result
