"""Keep-alive connection pooling for the proxy's back-end sockets.

The paper's front end splices the client socket to a back-end connection
per request; at high request rates the dominant cost in a userspace
deployment becomes the TCP handshake + slow-start on every dispatch.
:class:`BackendPool` keeps bounded per-backend stacks of idle HTTP/1.1
keep-alive connections so sequential dispatches reuse warm sockets.

Health integration (PR 1 semantics): when the front end ejects a back
end (`mark_down`), it calls :meth:`drop_backend` so no stale socket to a
dead node survives; when a probe re-admits the node, the probe's own
connection is :meth:`put` back, repopulating the pool.

Counters are exported under ``repro.proxy.pool.*``.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.telemetry import get_registry

#: An idle pooled connection: (reader, writer, parked_at).
_Entry = Tuple[asyncio.StreamReader, asyncio.StreamWriter, float]


def _loop_time() -> float:
    """The event loop's clock, the time base of the rest of the proxy.

    Parked-at stamps and expiry checks must come from the *same* clock
    the front end schedules with; mixing ``time.monotonic`` with
    ``loop.time()`` makes idle expiry silently wrong whenever the two
    diverge (custom/test loop clocks, clock warps across suspend).
    Falls back to ``time.monotonic`` outside a running loop so the pool
    stays constructible anywhere.
    """
    try:
        return asyncio.get_running_loop().time()
    except RuntimeError:
        return time.monotonic()


def _connection_stale(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> bool:
    """Whether a parked connection can no longer carry a request.

    A closing transport or an EOF-ed reader is dead; unexpected bytes in
    the reader's buffer (the back end spoke out of turn) make the next
    response unparseable, so the socket is unusable too.
    """
    transport = getattr(writer, "transport", None)
    if transport is not None and transport.is_closing():
        return True
    if reader.at_eof():
        return True
    buffered = getattr(reader, "_buffer", None)
    return bool(buffered)


class BackendPool:
    """Bounded per-backend stacks of idle keep-alive connections.

    LIFO reuse keeps the working set of sockets small and warm; entries
    older than ``idle_timeout_s`` are discarded on access and by the
    periodic :meth:`sweep`.  ``size_per_backend == 0`` disables pooling
    (every ``get`` misses, every ``put`` closes).
    """

    def __init__(
        self,
        size_per_backend: int = 8,
        idle_timeout_s: float = 30.0,
        now_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if size_per_backend < 0:
            raise ValueError("size_per_backend must be >= 0")
        if idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        self.size_per_backend = size_per_backend
        self.idle_timeout_s = idle_timeout_s
        self._now = now_fn or _loop_time
        self._idle: Dict[str, Deque[_Entry]] = {}
        self.hits = 0
        self.misses = 0
        self.reuses = 0
        self.expired = 0
        self.dropped = 0
        registry = get_registry()
        self._tm_hits = registry.counter("repro.proxy.pool.hits")
        self._tm_misses = registry.counter("repro.proxy.pool.misses")
        self._tm_reuses = registry.counter("repro.proxy.pool.reuses")
        self._tm_expired = registry.counter("repro.proxy.pool.expired")
        self._tm_dropped = registry.counter("repro.proxy.pool.dropped")
        self._tm_idle = registry.gauge("repro.proxy.pool.idle")

    # -- core ---------------------------------------------------------------

    def get(
        self, backend_id: str
    ) -> Optional[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
        """Pop a live idle connection for ``backend_id`` (None on miss)."""
        stack = self._idle.get(backend_id)
        now = self._now()
        while stack:
            reader, writer, parked_at = stack.pop()
            if now - parked_at > self.idle_timeout_s:
                self._discard(writer)
                self.expired += 1
                self._tm_expired.inc()
                continue
            if _connection_stale(reader, writer):
                self._discard(writer)
                self.expired += 1
                self._tm_expired.inc()
                continue
            self.hits += 1
            self._tm_hits.inc()
            self._update_idle_gauge()
            return reader, writer
        self.misses += 1
        self._tm_misses.inc()
        self._update_idle_gauge()
        return None

    def put(
        self,
        backend_id: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Park a connection for reuse; returns False (and closes) if refused."""
        if self.size_per_backend == 0 or _connection_stale(reader, writer):
            self._discard(writer)
            return False
        stack = self._idle.setdefault(backend_id, deque())
        if len(stack) >= self.size_per_backend:
            self._discard(writer)
            return False
        stack.append((reader, writer, self._now()))
        self.reuses += 1
        self._tm_reuses.inc()
        self._update_idle_gauge()
        return True

    # -- health / lifecycle -------------------------------------------------

    def drop_backend(self, backend_id: str) -> int:
        """Close every idle connection to an ejected back end."""
        stack = self._idle.pop(backend_id, None)
        if not stack:
            return 0
        count = len(stack)
        for _, writer, _ in stack:
            self._discard(writer)
        self.dropped += count
        self._tm_dropped.inc(count)
        self._update_idle_gauge()
        return count

    def sweep(self) -> int:
        """Evict idle-expired and dead connections (called periodically)."""
        now = self._now()
        evicted = 0
        for stack in self._idle.values():
            keep: Deque[_Entry] = deque()
            while stack:
                reader, writer, parked_at = stack.popleft()
                if now - parked_at > self.idle_timeout_s or _connection_stale(
                    reader, writer
                ):
                    self._discard(writer)
                    evicted += 1
                else:
                    keep.append((reader, writer, parked_at))
            stack.extend(keep)
        if evicted:
            self.expired += evicted
            self._tm_expired.inc(evicted)
            self._update_idle_gauge()
        return evicted

    def close_all(self) -> None:
        """Close every pooled connection (proxy shutdown)."""
        for stack in self._idle.values():
            for _, writer, _ in stack:
                self._discard(writer)
        self._idle.clear()
        self._update_idle_gauge()

    def idle_count(self, backend_id: Optional[str] = None) -> int:
        """Idle connections parked for one back end (or all of them)."""
        if backend_id is not None:
            return len(self._idle.get(backend_id, ()))
        return sum(len(stack) for stack in self._idle.values())

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _discard(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except (OSError, RuntimeError):
            # Closing an already-torn-down transport is a no-op.
            pass

    def _update_idle_gauge(self) -> None:
        self._tm_idle.set(self.idle_count())
