"""Event-loop selection for the proxy's processes.

The data plane is event-loop bound, so when `uvloop
<https://github.com/MagicStack/uvloop>`_ is importable the proxy runs on
it; the stdlib selector loop remains the portable default.  The choice is
a :class:`~repro.core.config.GageConfig` knob (``proxy_event_loop``):

- ``"auto"`` (default) — uvloop if importable, else asyncio; never fails;
- ``"uvloop"`` — require uvloop, raise if it cannot be imported;
- ``"asyncio"`` — stdlib loop even when uvloop is installed (the escape
  hatch for debugging and for like-for-like benchmarking).

Nothing here imports uvloop at module import time: the container this
repo develops in does not ship it, and the proxy must stay dependency-free
by default.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Optional, Tuple, TypeVar

#: Valid values of ``GageConfig.proxy_event_loop``.
POLICIES = ("auto", "uvloop", "asyncio")

_ResultT = TypeVar("_ResultT")


def uvloop_available() -> bool:
    """Whether uvloop can be imported in this interpreter."""
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def resolve(policy: str = "auto") -> str:
    """Map a policy knob to the loop implementation to use.

    Returns ``"uvloop"`` or ``"asyncio"``.  Raises ``ValueError`` for an
    unknown policy and ``RuntimeError`` when ``"uvloop"`` is demanded but
    not importable.
    """
    if policy not in POLICIES:
        raise ValueError(
            "unknown event-loop policy {!r}; expected one of {}".format(
                policy, ", ".join(POLICIES)
            )
        )
    if policy == "asyncio":
        return "asyncio"
    if uvloop_available():
        return "uvloop"
    if policy == "uvloop":
        raise RuntimeError("proxy_event_loop='uvloop' but uvloop is not importable")
    return "asyncio"


def new_event_loop(policy: str = "auto") -> Tuple[asyncio.AbstractEventLoop, str]:
    """A fresh event loop per ``policy``; returns ``(loop, implementation)``."""
    implementation = resolve(policy)
    if implementation == "uvloop":
        import uvloop

        return uvloop.new_event_loop(), implementation
    return asyncio.new_event_loop(), implementation


def run(main: "Awaitable[_ResultT]", policy: str = "auto") -> _ResultT:
    """``asyncio.run`` honoring the loop policy.

    Worker processes and CLI entry points call this instead of
    ``asyncio.run`` so the knob applies at every place a proxy loop is
    born.  Code already running inside a loop (tests, embedding callers)
    is unaffected by the knob — the loop that exists wins.
    """
    implementation = resolve(policy)
    if implementation == "uvloop":
        import uvloop

        if hasattr(uvloop, "run"):  # uvloop >= 0.17
            return uvloop.run(main)
        uvloop.install()
        try:
            return asyncio.run(main)
        finally:
            asyncio.set_event_loop_policy(None)
    return asyncio.run(main)


def running_loop_kind() -> Optional[str]:
    """``"uvloop"`` / ``"asyncio"`` for the current loop, None outside one.

    Detection is by module: uvloop's loop class lives in the ``uvloop``
    package.  Recorded into proxy stats and benchmark documents so a
    result can always be traced to the loop it ran on.
    """
    try:
        loop = asyncio.get_running_loop()
    except RuntimeError:
        return None
    module = type(loop).__module__ or ""
    return "uvloop" if module.split(".")[0] == "uvloop" else "asyncio"
