"""The multi-worker front end: N proxy processes under one supervisor.

One :class:`GageProxy` is bounded by a single event loop on a single
core.  :class:`WorkerSupervisor` forks ``N`` worker processes that all
listen on the *same* TCP port via ``SO_REUSEPORT`` — the kernel spreads
incoming connections across the workers, so the data plane scales with
cores while the paper's control plane stays correct through hierarchical
credit scheduling:

- each worker runs a full shard-local control plane — every subscriber
  registered at ``reservation / N`` with backend capacity scaled
  ``1 / N``, so the workers' combined view equals the whole cluster and
  per-worker WRR (level 1) enforces ``1/N`` of every guarantee;
- each accounting cycle a worker sends a compact JSON-lines **report**
  over a Unix-socket control channel (unused credit, backlog depths,
  balances, a metric snapshot); the supervisor runs the
  :class:`~repro.core.shard.GlobalAllocator` across the reports
  (level 2) and answers with **grants**, so credit a subscriber is not
  using on one worker chases its backlog on another and the *global*
  per-subscriber GRPS guarantee holds under connection-level skew;
- a worker that misses ``proxy_worker_miss_limit`` consecutive
  accounting cycles (crashed, wedged, or killed) is restarted; its
  last-reported credit balances are reclaimed into the allocator's carry
  pool and re-granted to the surviving shards, so the guarantee is
  violated for at most the detection window;
- per-worker metric registries are merged by the supervisor
  (:func:`~repro.telemetry.aggregate.merge_snapshots`) so
  ``repro.proxy.*`` and scheduler metrics remain one coherent view.

``workers=1`` keeps the supervisor out of the credit path entirely (no
rebalancing — the lone worker's in-shard spare pass is already the
paper's single-RDN spare pool), matching the single-process proxy's
scheduling decisions exactly.
"""

from __future__ import annotations

import asyncio
import json
import os
import pickle
import socket
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.config import GageConfig
from repro.core.shard import GlobalAllocator, ShardCreditReport
from repro.core.subscriber import Subscriber
from repro.proxy import loop_policy
from repro.proxy.frontend import DEFAULT_BACKEND_CAPACITY, GageProxy
from repro.resources import ResourceVector
from repro.telemetry.aggregate import merge_snapshots
from repro.telemetry.registry import get_registry

#: How long a freshly spawned worker may take to send its first report
#: before the supervisor declares the spawn failed (interpreter start +
#: module import dominate; generous so slow CI boxes don't flap).
SPAWN_GRACE_S = 15.0


def _vec_to_list(vec: ResourceVector) -> List[float]:
    return [vec.cpu_s, vec.disk_s, vec.net_bytes]


def _vec_from_list(raw: object) -> ResourceVector:
    if not isinstance(raw, list) or len(raw) != 3:
        raise ValueError("malformed resource vector: {!r}".format(raw))
    return ResourceVector(float(raw[0]), float(raw[1]), float(raw[2]))


def _vec_map_to_wire(vectors: Mapping[str, ResourceVector]) -> Dict[str, List[float]]:
    return {name: _vec_to_list(vec) for name, vec in vectors.items()}


def _vec_map_from_wire(raw: object) -> Dict[str, ResourceVector]:
    if not isinstance(raw, dict):
        return {}
    return {str(name): _vec_from_list(value) for name, value in raw.items()}


def _encode(message: Dict[str, object]) -> bytes:
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def _child_env() -> Dict[str, str]:
    """A worker subprocess's environment: ``repro`` must be importable.

    The parent may have put the package root on ``sys.path``
    programmatically (the ``scripts/`` entry points do) — the child
    inherits only ``PYTHONPATH``, so the root is prepended explicitly.
    """
    import repro

    root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    current = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        root + os.pathsep + current if current else root
    )
    return env


def _reuseport_socket(host: str, port: int, listen: bool) -> socket.socket:
    """A TCP socket bound to (host, port) with ``SO_REUSEPORT`` set.

    The supervisor binds one *non-listening* socket at port 0 to reserve
    a concrete port; each worker then binds a *listening* socket to that
    same port.  The kernel balances incoming connections only among
    listening sockets, so the reservation never steals a connection.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(1024)
            sock.setblocking(False)
    except BaseException:
        sock.close()
        raise
    return sock


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, picklable for spawn."""

    worker_id: int
    host: str
    port: int
    control_path: str
    #: Already scaled to ``reservation / N`` by the supervisor.
    subscribers: Tuple[Subscriber, ...]
    backends: Tuple[Tuple[str, Tuple[str, int]], ...]
    config: GageConfig
    #: Already scaled to ``capacity / N`` by the supervisor.
    backend_capacity: ResourceVector


# -- the worker process ------------------------------------------------------


async def _report_loop(
    spec: WorkerSpec, proxy: GageProxy, writer: asyncio.StreamWriter
) -> None:
    """Send one credit/metrics report per accounting cycle, forever."""
    seq = 0
    while True:
        await asyncio.sleep(spec.config.accounting_cycle_s)
        unused, backlog = proxy.credit_report()
        seq += 1
        message: Dict[str, object] = {
            "type": "report",
            "worker": spec.worker_id,
            "seq": seq,
            "unused": _vec_map_to_wire(unused),
            "backlog": dict(backlog),
            "balances": _vec_map_to_wire(proxy.balances()),
            "metrics": get_registry().snapshot(),
        }
        writer.write(_encode(message))
        try:
            await writer.drain()
        except ConnectionError:
            return


async def _worker_async(spec: WorkerSpec) -> None:
    proxy = GageProxy(
        list(spec.subscribers),
        dict(spec.backends),
        config=spec.config,
        host=spec.host,
        backend_capacity=spec.backend_capacity,
        worker_id=spec.worker_id,
    )
    sock = _reuseport_socket(spec.host, spec.port, listen=True)
    await proxy.start(sock=sock)
    reader, writer = await asyncio.open_unix_connection(spec.control_path)
    writer.write(
        _encode({"type": "hello", "worker": spec.worker_id, "pid": os.getpid()})
    )
    await writer.drain()
    reporter = asyncio.ensure_future(_report_loop(spec, proxy, writer))
    try:
        while True:
            line = await reader.readline()
            if not line:
                return  # supervisor went away: shut down with it
            try:
                message = json.loads(line)
            except ValueError:
                continue
            mtype = message.get("type")
            if mtype == "grant":
                proxy.apply_credit_grant(_vec_map_from_wire(message.get("net")))
            elif mtype == "stop":
                return
    finally:
        reporter.cancel()
        writer.close()
        await proxy.stop()


def _worker_main(spec: WorkerSpec) -> None:
    """Entry point of one worker process.

    The event loop the worker's whole data plane runs on is chosen here,
    per ``config.proxy_event_loop`` (uvloop when importable, by default).
    """
    try:
        loop_policy.run(_worker_async(spec), spec.config.proxy_event_loop)
    except KeyboardInterrupt:
        pass


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.proxy.worker_main <spec-file>`` — run one worker.

    The supervisor pickles a :class:`WorkerSpec` to a private file and
    execs that module, so no re-import of the parent's ``__main__``
    happens (the classic multiprocessing-spawn hazard) and the worker
    is a plain OS process the supervisor can watch and kill.
    """
    args = list(sys.argv[1:]) if argv is None else list(argv)
    if len(args) != 1:
        raise SystemExit("usage: python -m repro.proxy.worker_main <spec-file>")
    with open(args[0], "rb") as handle:
        spec = pickle.load(handle)
    if not isinstance(spec, WorkerSpec):
        raise SystemExit("spec file does not contain a WorkerSpec")
    _worker_main(spec)
    return 0


# -- the supervisor ----------------------------------------------------------


@dataclass
class _WorkerState:
    """Supervisor-side bookkeeping for one worker slot."""

    worker_id: int
    process: Optional["subprocess.Popen[bytes]"] = None
    writer: Optional[asyncio.StreamWriter] = None
    spawned_at: float = 0.0
    last_report_at: Optional[float] = None
    #: The newest unconsumed report (consumed by one rebalance round).
    pending_report: Optional[Dict[str, object]] = None
    #: Last-known per-subscriber balances, for reclaim at death.
    last_balances: Dict[str, ResourceVector] = field(default_factory=dict)
    #: Last metric snapshot, for the aggregated telemetry view.
    last_metrics: Optional[Dict[str, object]] = None
    reports: int = 0


class WorkerSupervisor:
    """N ``SO_REUSEPORT`` proxy workers plus the credit control channel.

    Drop-in for :class:`~repro.proxy.frontend.GageProxy` at the
    start/stop/port level: ``await start()`` returns the shared port.
    """

    def __init__(
        self,
        subscribers: List[Subscriber],
        backends: Dict[str, Tuple[str, int]],
        config: Optional[GageConfig] = None,
        host: str = "127.0.0.1",
        workers: int = 2,
        backend_capacity: ResourceVector = DEFAULT_BACKEND_CAPACITY,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if not backends:
            raise ValueError("need at least one backend")
        self.config = config if config is not None else GageConfig()
        self.host = host
        self.workers = workers
        self.port: Optional[int] = None
        self.subscribers = list(subscribers)
        self.backends = dict(backends)
        self.allocator = GlobalAllocator(
            {sub.name: sub.reservation_grps for sub in subscribers}
        )
        #: Each worker guards 1/N of every guarantee and sees 1/N of
        #: every backend — the N shard-local control planes sum to
        #: exactly the single-process proxy's view of the cluster.
        fraction = 1.0 / workers
        self._worker_subscribers = tuple(
            Subscriber(
                sub.name,
                sub.reservation_grps * fraction,
                queue_capacity=sub.queue_capacity,
                delay_target_s=sub.delay_target_s,
            )
            for sub in subscribers
        )
        self._worker_capacity = backend_capacity.scaled(fraction)
        self.restarts = 0
        self._states: Dict[int, _WorkerState] = {
            worker_id: _WorkerState(worker_id) for worker_id in range(workers)
        }
        self._port_sock: Optional[socket.socket] = None
        self._control_dir: Optional[str] = None
        self._control_path: Optional[str] = None
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._tasks: List["asyncio.Task[None]"] = []
        self._stopping = False

    # -- lifecycle ----------------------------------------------------------

    async def start(self, port: int = 0) -> int:
        """Reserve the port, open the control channel, spawn the workers."""
        self._port_sock = _reuseport_socket(self.host, port, listen=False)
        self.port = self._port_sock.getsockname()[1]
        self._control_dir = tempfile.mkdtemp(prefix="gage-ctl-")
        self._control_path = os.path.join(self._control_dir, "control.sock")
        self._control_server = await asyncio.start_unix_server(
            self._on_control_connection, path=self._control_path
        )
        now = asyncio.get_event_loop().time()
        for state in self._states.values():
            self._spawn(state, now)
        # Readiness barrier: a worker says hello only after its listener
        # is up, so waiting here gives start() the same contract as
        # GageProxy.start() — the returned port accepts connections.
        loop = asyncio.get_event_loop()
        deadline = loop.time() + SPAWN_GRACE_S
        while (
            any(state.writer is None for state in self._states.values())
            and loop.time() < deadline
        ):
            await asyncio.sleep(0.02)
        missing = [
            state.worker_id
            for state in self._states.values()
            if state.writer is None
        ]
        if missing:
            await self.stop()
            raise RuntimeError(
                "worker(s) {} failed to start within {}s".format(
                    missing, SPAWN_GRACE_S
                )
            )
        self._tasks.append(asyncio.ensure_future(self._control_loop()))
        return self.port

    async def stop(self) -> None:
        """Stop workers (politely, then firmly) and tear the channel down."""
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        for state in self._states.values():
            if state.writer is not None:
                try:
                    state.writer.write(_encode({"type": "stop"}))
                    await state.writer.drain()
                except ConnectionError:
                    pass
        deadline = asyncio.get_event_loop().time() + 2.0
        for state in self._states.values():
            process = state.process
            if process is None:
                continue
            while (
                process.poll() is None
                and asyncio.get_event_loop().time() < deadline
            ):
                await asyncio.sleep(0.05)
            if process.poll() is None:
                process.terminate()
                await asyncio.sleep(0.1)
            if process.poll() is None:
                process.kill()
            try:
                process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                pass
            state.process = None
        for state in self._states.values():
            if state.writer is not None:
                state.writer.close()
                state.writer = None
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
            self._control_server = None
        if self._port_sock is not None:
            self._port_sock.close()
            self._port_sock = None
        if self._control_dir is not None and os.path.isdir(self._control_dir):
            for name in os.listdir(self._control_dir):
                try:
                    os.unlink(os.path.join(self._control_dir, name))
                except OSError:
                    pass
            os.rmdir(self._control_dir)

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) once started."""
        if self.port is None:
            raise RuntimeError("supervisor not started")
        return self.host, self.port

    def alive_workers(self) -> int:
        """Worker processes currently running."""
        return sum(
            1
            for state in self._states.values()
            if state.process is not None and state.process.poll() is None
        )

    def worker_pid(self, worker_id: int) -> Optional[int]:
        """The OS pid of one worker process (None if not running)."""
        state = self._states[worker_id]
        if state.process is None or state.process.poll() is not None:
            return None
        return state.process.pid

    # -- spawning and the control channel -----------------------------------

    def _spawn(self, state: _WorkerState, now: float) -> None:
        assert self._control_dir is not None
        assert self.port is not None and self._control_path is not None
        spec = WorkerSpec(
            worker_id=state.worker_id,
            host=self.host,
            port=self.port,
            control_path=self._control_path,
            subscribers=self._worker_subscribers,
            backends=tuple(sorted(self.backends.items())),
            config=self.config,
            backend_capacity=self._worker_capacity,
        )
        spec_path = os.path.join(
            self._control_dir, "worker{}.spec".format(state.worker_id)
        )
        with open(spec_path, "wb") as handle:
            pickle.dump(spec, handle)
        state.process = subprocess.Popen(
            [sys.executable, "-m", "repro.proxy.worker_main", spec_path],
            env=_child_env(),
        )
        state.spawned_at = now
        state.last_report_at = None
        state.pending_report = None

    async def _on_control_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One worker's control-channel session (hello, then reports)."""
        state: Optional[_WorkerState] = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    message = json.loads(line)
                except ValueError:
                    continue
                mtype = message.get("type")
                worker_raw = message.get("worker")
                if not isinstance(worker_raw, int):
                    continue
                current = self._states.get(worker_raw)
                if current is None:
                    continue
                if mtype == "hello":
                    state = current
                    state.writer = writer
                elif mtype == "report" and state is current:
                    now = asyncio.get_event_loop().time()
                    state.last_report_at = now
                    state.pending_report = message
                    state.reports += 1
                    state.last_balances = _vec_map_from_wire(
                        message.get("balances")
                    )
                    metrics = message.get("metrics")
                    if isinstance(metrics, dict):
                        state.last_metrics = metrics
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        finally:
            if state is not None and state.writer is writer:
                state.writer = None
            writer.close()

    # -- the supervision / rebalance loop -----------------------------------

    async def _control_loop(self) -> None:
        cycle = self.config.accounting_cycle_s
        while not self._stopping:
            await asyncio.sleep(cycle)
            now = asyncio.get_event_loop().time()
            self._reap_dead(now)
            if self.workers > 1:
                self._rebalance()

    def _is_dead(self, state: _WorkerState, now: float) -> bool:
        if state.process is None or state.process.poll() is not None:
            return True
        limit = self.config.proxy_worker_miss_limit * self.config.accounting_cycle_s
        if state.last_report_at is not None:
            return now - state.last_report_at > limit
        # Never reported: allow interpreter start-up before flagging.
        return now - state.spawned_at > max(limit, SPAWN_GRACE_S)

    def _reap_dead(self, now: float) -> None:
        """Restart dead workers, reclaiming their outstanding credit.

        The reclaimed balances enter the allocator's carry pool and ride
        the next rebalance to the surviving shards — a crashed worker's
        credit is redistributed, not destroyed, so the global guarantee
        recovers within the detection window.
        """
        for state in self._states.values():
            if not self._is_dead(state, now):
                continue
            self.allocator.reclaim(state.last_balances)
            state.last_balances = {}
            process = state.process
            if process is not None and process.poll() is None:
                process.kill()
                try:
                    process.wait(timeout=1.0)
                except subprocess.TimeoutExpired:
                    pass
            if state.writer is not None:
                state.writer.close()
                state.writer = None
            self._spawn(state, now)
            self.restarts += 1

    def _rebalance(self) -> None:
        """One allocator round over the workers' unconsumed reports."""
        reports: List[ShardCreditReport] = []
        for state in self._states.values():
            message = state.pending_report
            if message is None:
                continue
            state.pending_report = None
            backlog_raw = message.get("backlog")
            backlog: Dict[str, int] = {}
            if isinstance(backlog_raw, dict):
                backlog = {
                    str(name): int(depth) for name, depth in backlog_raw.items()
                }
            reports.append(
                ShardCreditReport(
                    state.worker_id,
                    unused=_vec_map_from_wire(message.get("unused")),
                    backlog=backlog,
                )
            )
        if not reports:
            return
        answers = self.allocator.rebalance(reports)
        for state in self._states.values():
            answer = answers.get(state.worker_id)
            if answer is None or state.writer is None:
                continue
            net = answer.net()
            if not net:
                continue
            state.writer.write(
                _encode({"type": "grant", "net": _vec_map_to_wire(net)})
            )

    # -- telemetry ----------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """One coherent metric view: supervisor plus every worker."""
        snapshots: List[Dict[str, object]] = [get_registry().snapshot()]
        for state in self._states.values():
            if state.last_metrics is not None:
                snapshots.append(state.last_metrics)
        return merge_snapshots(snapshots, name="proxy-workers")

    def accept_counts(self) -> Dict[int, int]:
        """Connections accepted per worker, from each last report.

        The ``repro.proxy.worker.accepts`` counter each worker labels
        with its id — the measurement behind the ``SO_REUSEPORT``
        accept-balance figure: the kernel's listener choice is only
        balanced in aggregate, and a starved worker shows up here as a
        near-zero count.
        """
        prefix = "repro.proxy.worker.accepts{"
        counts: Dict[int, int] = {}
        for state in self._states.values():
            total = 0
            snapshot = state.last_metrics
            metrics = snapshot.get("metrics") if isinstance(snapshot, dict) else None
            if isinstance(metrics, dict):
                for full_name, entry in metrics.items():
                    if full_name.startswith(prefix) and isinstance(entry, dict):
                        value = entry.get("value", 0)
                        total += int(value if isinstance(value, (int, float)) else 0)
            counts[state.worker_id] = total
        return counts
