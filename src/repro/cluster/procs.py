"""Simulated OS process table with per-process resource accounting.

Gage's accounting model (§3.5) "assumes that a set of dedicated processes
are associated with each charging entity ... periodically Gage traverses
the kernel data structure that keeps track of parent-child relationships
among processes and sums up the resource usage of all the processes that
are associated with each charging entity."  This module is that kernel
data structure.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional

from repro.resources import ResourceVector


class SimProcess:
    """One simulated OS process/thread with cumulative resource usage."""

    def __init__(self, pid: int, name: str, parent: Optional["SimProcess"]) -> None:
        self.pid = pid
        self.name = name
        self.parent = parent
        self.children: List["SimProcess"] = []
        self.alive = True
        self.cpu_s = 0.0
        self.disk_s = 0.0
        self.net_bytes = 0.0
        if parent is not None:
            parent.children.append(self)

    def __repr__(self) -> str:
        return "<SimProcess pid={} {} cpu={:.4f}s>".format(self.pid, self.name, self.cpu_s)

    def charge_cpu(self, seconds: float) -> None:
        """Account CPU time to this process."""
        if seconds < 0:
            raise ValueError("negative CPU charge")
        self.cpu_s += seconds

    def charge_disk(self, seconds: float) -> None:
        """Account disk channel time to this process."""
        if seconds < 0:
            raise ValueError("negative disk charge")
        self.disk_s += seconds

    def charge_net(self, nbytes: float) -> None:
        """Account outgoing network bytes to this process."""
        if nbytes < 0:
            raise ValueError("negative network charge")
        self.net_bytes += nbytes

    @property
    def usage(self) -> ResourceVector:
        """Cumulative usage of this process alone (not its children)."""
        return ResourceVector(self.cpu_s, self.disk_s, self.net_bytes)

    def subtree(self, include_dead: bool = True) -> Iterator["SimProcess"]:
        """This process and its descendants, depth-first.

        Dead descendants are included by default: a process that exits
        between two accounting cycles (e.g. a CGI program) must still
        have its final usage visible to the next walk, exactly as Linux
        keeps task accounting until the parent reaps it.
        """
        yield self
        for child in self.children:
            if include_dead or child.alive:
                yield from child.subtree(include_dead=include_dead)

    def live_subtree(self) -> Iterator["SimProcess"]:
        """Only the live members of the subtree."""
        return (proc for proc in self.subtree(include_dead=False) if proc.alive)

    def subtree_usage(self) -> ResourceVector:
        """Summed usage over the whole subtree — the accounting-cycle walk."""
        total = ResourceVector.ZERO
        for proc in self.subtree():
            total = total + proc.usage
        return total


class ProcessTable:
    """The per-machine table of simulated processes."""

    def __init__(self) -> None:
        self._pids = itertools.count(1)
        self._procs: Dict[int, SimProcess] = {}
        init = SimProcess(next(self._pids), "init", None)
        self._procs[init.pid] = init
        self._init = init

    def __len__(self) -> int:
        return len(self._procs)

    @property
    def init(self) -> SimProcess:
        """The root of the process tree (pid 1)."""
        return self._init

    def spawn(self, name: str, parent: Optional[SimProcess] = None) -> SimProcess:
        """Create a new process; defaults to a child of init."""
        proc = SimProcess(next(self._pids), name, parent or self._init)
        self._procs[proc.pid] = proc
        return proc

    def get(self, pid: int) -> Optional[SimProcess]:
        """Look up a process by pid."""
        return self._procs.get(pid)

    def kill(self, proc: SimProcess) -> None:
        """Mark a process (and its subtree) dead; usage is retained.

        Dead processes stay in the table so an in-flight accounting cycle
        can still read their final usage, matching how Linux keeps task
        accounting until reaped.
        """
        for member in list(proc.subtree()):
            member.alive = False

    def total_usage(self) -> ResourceVector:
        """Machine-wide usage: the sum over every process ever charged."""
        total = ResourceVector.ZERO
        for proc in self._procs.values():
            total = total + proc.usage
        return total
