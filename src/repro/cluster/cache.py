"""A byte-budgeted LRU buffer cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class LRUCache:
    """Least-recently-used cache keyed by path, bounded in total bytes."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return "<LRUCache {}/{}B entries={} hit-rate={:.2f}>".format(
            self._used, self.capacity_bytes, len(self._entries), self.hit_rate
        )

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._used

    @property
    def hit_rate(self) -> float:
        """Hits / lookups since creation (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def lookup(self, path: str) -> bool:
        """True (and refresh recency) if ``path`` is cached."""
        if path in self._entries:
            self._entries.move_to_end(path)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, path: str) -> bool:
        """Presence check without recency or statistics side effects."""
        return path in self._entries

    def insert(self, path: str, size_bytes: int) -> None:
        """Cache ``path``; evicts LRU entries to fit, if possible.

        Objects larger than the whole cache are not cached at all
        (streaming them through would only evict everything useful).
        """
        if size_bytes < 0:
            raise ValueError("negative object size")
        if size_bytes > self.capacity_bytes:
            return
        if path in self._entries:
            self._used -= self._entries.pop(path)
        while self._used + size_bytes > self.capacity_bytes and self._entries:
            _evicted, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
        self._entries[path] = size_bytes
        self._used += size_bytes

    def evict(self, path: str) -> Optional[int]:
        """Remove one entry; returns its size or None if absent."""
        size = self._entries.pop(path, None)
        if size is not None:
            self._used -= size
        return size

    def clear(self) -> None:
        """Drop every entry (statistics are retained)."""
        self._entries.clear()
        self._used = 0
