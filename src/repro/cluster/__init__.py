"""Simulated cluster-node substrate.

Models one back-end machine of the paper's testbed: a time-sliced CPU
scheduler with per-thread accounting, a seek+transfer disk model with an
LRU buffer cache, a simulated file system, a process table with
parent-child relationships (the structure Gage's resource accounting
traverses, §3.5), and a web-server application with dedicated worker
processes per hosted site.
"""

from repro.cluster.cache import LRUCache
from repro.cluster.cpu import CPU
from repro.cluster.disk import Disk
from repro.cluster.filesystem import FileSystem
from repro.cluster.machine import Machine
from repro.cluster.procs import ProcessTable, SimProcess
from repro.cluster.webserver import Site, WebServer

__all__ = [
    "CPU",
    "Disk",
    "FileSystem",
    "LRUCache",
    "Machine",
    "ProcessTable",
    "SimProcess",
    "Site",
    "WebServer",
]
