"""A simulated cluster node: CPU + disk + buffer cache + NICs + processes."""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.cache import LRUCache
from repro.cluster.cpu import CPU
from repro.cluster.disk import Disk
from repro.cluster.filesystem import FileSystem
from repro.cluster.procs import ProcessTable
from repro.net.addresses import MACAddress
from repro.net.nic import NIC
from repro.sim.engine import Environment
from repro.telemetry.registry import get_registry


class Machine:
    """One physical node of the cluster.

    The defaults approximate the paper's back-end boxes (600 MHz Celeron,
    64 MB RAM, 10 GB IDE disk, Fast Ethernet): CPU speed is expressed as a
    relative factor, and the buffer cache gets the memory not used by the
    OS and server processes.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        cpu_speed: float = 1.0,
        cpu_quantum_s: float = 0.001,
        disk_seek_s: float = 0.0097,
        disk_transfer_bps: float = 20e6,
        cache_bytes: int = 32 * 1024 * 1024,
        fs: Optional[FileSystem] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.cpu = CPU(env, speed=cpu_speed, quantum_s=cpu_quantum_s)
        self.disk = Disk(env, seek_s=disk_seek_s, transfer_bps=disk_transfer_bps)
        self.cache = LRUCache(cache_bytes)
        self.fs = fs if fs is not None else FileSystem()
        self.procs = ProcessTable()
        self.nics: List[NIC] = []
        registry = get_registry()
        self._tm_cpu_util = registry.gauge(
            "repro.cluster.cpu_utilization", machine=name
        )
        self._tm_disk_util = registry.gauge(
            "repro.cluster.disk_utilization", machine=name
        )
        self._tm_disk_ios = registry.gauge("repro.cluster.disk_ios", machine=name)

    def __repr__(self) -> str:
        return "<Machine {} nics={} procs={}>".format(
            self.name, len(self.nics), len(self.procs)
        )

    def settle_accounting(self) -> None:
        """Flush lazily-batched resource charges up to the current instant.

        The CPU (and any future resource that batches its bookkeeping)
        defers per-slice charges while a single task runs uncontended;
        anything about to read per-process usage — the §3.5 accounting
        walk, a restart resync — must settle first so the numbers are
        exactly what slice-by-slice charging would have produced.
        """
        self.cpu.settle()

    def telemetry_sample(self) -> None:
        """Export the current CPU/disk utilization to the metric registry.

        Called from the RPN accounting agent's walk, so the gauges track
        the same cadence as the §3.5 usage reports.
        """
        self._tm_cpu_util.set(self.cpu.utilization())
        self._tm_disk_util.set(self.disk.utilization())
        self._tm_disk_ios.set(float(self.disk.io_count))

    def add_nic(self, mac: MACAddress, **nic_kwargs: object) -> NIC:
        """Attach a NIC to this machine."""
        nic = NIC(
            self.env,
            mac,
            name="{}.eth{}".format(self.name, len(self.nics)),
            **nic_kwargs,
        )
        self.nics.append(nic)
        return nic

    @property
    def nic(self) -> NIC:
        """The primary NIC (first attached)."""
        if not self.nics:
            raise RuntimeError("machine {} has no NIC".format(self.name))
        return self.nics[0]
