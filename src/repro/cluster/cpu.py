"""A time-sliced round-robin CPU scheduler with per-thread accounting.

The RPN "runs on the Linux kernel, which already keeps track of the CPU
usage of each active thread" (§3.5).  This model reproduces that: work is
executed in quantum-sized slices, each slice charged to the owning
simulated process, so concurrent requests interleave fairly and the
accounting walk sees accurate per-thread CPU time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.procs import SimProcess
from repro.sim.engine import Environment
from repro.sim.events import Event


class _Task:
    __slots__ = ("proc", "remaining", "done")

    def __init__(self, proc: SimProcess, remaining: float, done: Event) -> None:
        self.proc = proc
        self.remaining = remaining
        self.done = done


class CPU:
    """One processor executing work for simulated processes.

    Parameters
    ----------
    speed:
        Relative speed factor; a duration ``d`` submitted to a CPU of
        speed ``s`` takes ``d / s`` seconds of simulated time.
    quantum_s:
        Round-robin time slice.
    """

    def __init__(
        self, env: Environment, speed: float = 1.0, quantum_s: float = 0.001
    ) -> None:
        if speed <= 0:
            raise ValueError("CPU speed must be positive")
        if quantum_s <= 0:
            raise ValueError("quantum must be positive")
        self.env = env
        self.speed = float(speed)
        self.quantum_s = float(quantum_s)
        self.busy_s = 0.0
        self._started_at = env.now
        self._runqueue: List[_Task] = []
        self._wakeup: Optional[Event] = None
        env.process(self._scheduler())

    def __repr__(self) -> str:
        return "<CPU runnable={} busy={:.3f}s>".format(len(self._runqueue), self.busy_s)

    @property
    def runnable(self) -> int:
        """Tasks currently on the run queue."""
        return len(self._runqueue)

    def utilization(self) -> float:
        """Fraction of elapsed simulated time this CPU spent busy."""
        elapsed = self.env.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_s / elapsed)

    def reset_utilization(self) -> None:
        """Restart the utilization window at the current instant."""
        self.busy_s = 0.0
        self._started_at = self.env.now

    def execute(self, proc: SimProcess, duration_s: float) -> Event:
        """Submit ``duration_s`` of CPU work on behalf of ``proc``.

        Returns an event that fires when the work has been fully executed;
        every slice is charged to ``proc``.
        """
        if duration_s < 0:
            raise ValueError("negative CPU work")
        done = Event(self.env)
        if duration_s == 0:
            done.succeed(None)
            return done
        self._runqueue.append(_Task(proc, duration_s / self.speed, done))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)
        return done

    def _scheduler(self):
        while True:
            if not self._runqueue:
                self._wakeup = Event(self.env)
                yield self._wakeup
                self._wakeup = None
                continue
            task = self._runqueue.pop(0)
            slice_s = min(self.quantum_s, task.remaining)
            yield self.env.timeout(slice_s)
            task.remaining -= slice_s
            # Charge wall time on this CPU (already divided by speed when
            # enqueued, so charge the slice as-is).
            task.proc.charge_cpu(slice_s)
            self.busy_s += slice_s
            if task.remaining > 1e-12:
                self._runqueue.append(task)
            else:
                task.done.succeed(None)
