"""A time-sliced round-robin CPU scheduler with per-thread accounting.

The RPN "runs on the Linux kernel, which already keeps track of the CPU
usage of each active thread" (§3.5).  This model reproduces that: work is
executed in quantum-sized slices, each slice charged to the owning
simulated process, so concurrent requests interleave fairly and the
accounting walk sees accurate per-thread CPU time.

Implementation note: the slicing is *semantic*, not evented.  With a
single runnable task (by far the common case in cluster runs) the CPU
schedules exactly one completion callback for the whole burst and replays
the per-slice charge arithmetic lazily — either when the burst ends or
when someone needs current numbers (:meth:`CPU.settle`, called by the
accounting walk).  The replay performs float-for-float the operations the
evented slicer would have (``min(quantum, remaining)``, per-boundary
additions), so charges and completion times are bit-identical while the
event count per request drops from one-per-slice to one.  With several
runnable tasks the CPU steps slice by slice via cheap scheduled
callbacks, preserving the exact round-robin interleaving.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.procs import SimProcess
from repro.sim.engine import Environment
from repro.sim.events import Event

#: Residual work below this is dropped, matching the evented slicer's
#: re-queue threshold: a task whose remainder dips under it is finished.
_RESIDUE_S = 1e-12


class _Task:
    __slots__ = ("proc", "remaining", "done")

    def __init__(self, proc: SimProcess, remaining: float, done: Event) -> None:
        self.proc = proc
        self.remaining = remaining
        self.done = done


class CPU:
    """One processor executing work for simulated processes.

    Parameters
    ----------
    speed:
        Relative speed factor; a duration ``d`` submitted to a CPU of
        speed ``s`` takes ``d / s`` seconds of simulated time.
    quantum_s:
        Round-robin time slice.
    """

    def __init__(
        self, env: Environment, speed: float = 1.0, quantum_s: float = 0.001
    ) -> None:
        if speed <= 0:
            raise ValueError("CPU speed must be positive")
        if quantum_s <= 0:
            raise ValueError("quantum must be positive")
        self.env = env
        self.speed = float(speed)
        self.quantum_s = float(quantum_s)
        self.busy_s = 0.0
        self._started_at = env.now
        #: Tasks awaiting their next slice; excludes the one in service.
        self._runqueue: List[_Task] = []
        #: The task whose slice or burst is currently in flight.
        self._current: Optional[_Task] = None
        #: True while the in-flight task runs as a single batched burst
        #: (sole runnable task); its per-slice charges are then applied
        #: lazily from (_burst_t, _burst_rem) by :meth:`settle`.
        self._bursting = False
        self._burst_t = 0.0
        self._burst_rem = 0.0
        #: Invalidates scheduled slice/burst callbacks that a newer
        #: arrival has superseded (heap entries cannot be removed).
        self._epoch = 0
        #: End time and length of the in-flight slice while stepping
        #: (meaningless during a burst); lets :meth:`cancel` charge the
        #: partially-consumed slice mid-flight.
        self._slice_end = 0.0
        self._slice_len = 0.0

    def __repr__(self) -> str:
        return "<CPU runnable={} busy={:.3f}s>".format(self.runnable, self.busy_s)

    @property
    def runnable(self) -> int:
        """Tasks currently on the run queue (including the one in service)."""
        return len(self._runqueue) + (1 if self._current is not None else 0)

    def utilization(self) -> float:
        """Fraction of elapsed simulated time this CPU spent busy."""
        self.settle()
        elapsed = self.env.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_s / elapsed)

    def reset_utilization(self) -> None:
        """Restart the utilization window at the current instant."""
        self.settle()
        self.busy_s = 0.0
        self._started_at = self.env.now

    def settle(self) -> None:
        """Apply every slice charge due at or before the current instant.

        Accounting readers (the §3.5 usage walk, utilization gauges) call
        this so lazily-batched bursts are indistinguishable from evented
        slicing.
        """
        if self._bursting:
            self._replay_until(self.env.now)

    def execute(self, proc: SimProcess, duration_s: float) -> Event:
        """Submit ``duration_s`` of CPU work on behalf of ``proc``.

        Returns an event that fires when the work has been fully executed;
        every slice is charged to ``proc``.
        """
        if duration_s < 0:
            raise ValueError("negative CPU work")
        done = Event(self.env)
        remaining = duration_s / self.speed
        if remaining <= _RESIDUE_S:
            # Below the slicer's residue threshold there is no slice to
            # schedule or charge.
            done.succeed(None)
            return done
        task = _Task(proc, remaining, done)
        if self._current is None:
            self._current = task
            self._begin_burst(self.env.now)
        elif self._bursting:
            # The burst's no-contention assumption just broke: charge the
            # boundaries that already elapsed, then fall back to stepped
            # slicing with the in-flight slice keeping its exact end time.
            now = self.env.now
            self._replay_until(now)
            self._bursting = False
            current = self._current
            current.remaining = self._burst_rem
            self._epoch += 1
            boundary = self._burst_t + self._slice_of(current.remaining)
            self._slice_end = boundary
            self._slice_len = boundary - self._burst_t
            self.env.call_at(boundary, self._on_slice_end, self._epoch)
            self._runqueue.append(task)
        else:
            self._runqueue.append(task)
        return done

    def cancel(self, done: Event) -> bool:
        """Abort the submitted work whose completion event is ``done``.

        Work already executed stays charged to the owning process (the
        accounting walk must see resources actually consumed); the
        remainder is dropped and ``done`` fires so the waiting process
        resumes and can observe the cancellation.  Returns ``False`` if
        the work is unknown — already completed or never submitted.
        """
        for index, task in enumerate(self._runqueue):
            if task.done is done:
                # Queued behind the running task: nothing consumed yet.
                del self._runqueue[index]
                done.succeed(None)
                return True
        current = self._current
        if current is None or current.done is not done:
            return False
        now = self.env.now
        if self._bursting:
            self._replay_until(now)
            partial = now - self._burst_t
        else:
            partial = now - (self._slice_end - self._slice_len)
        if partial > 0.0:
            current.proc.charge_cpu(partial)
            self.busy_s += partial
        self._bursting = False
        self._epoch += 1
        if self._runqueue:
            self._current = self._runqueue.pop(0)
            if self._runqueue:
                boundary = now + self._slice_of(self._current.remaining)
                self._slice_end = boundary
                self._slice_len = boundary - now
                self.env.call_at(boundary, self._on_slice_end, self._epoch)
            else:
                self._begin_burst(now)
        else:
            self._current = None
        done.succeed(None)
        return True

    # -- internal -------------------------------------------------------

    def _slice_of(self, remaining: float) -> float:
        # Same tie behavior as min(quantum, remaining).
        return remaining if remaining < self.quantum_s else self.quantum_s

    def _begin_burst(self, start: float) -> None:
        """Run the sole runnable task as one batched burst from ``start``."""
        self._bursting = True
        self._burst_t = start
        self._burst_rem = self._current.remaining
        # Replay the slice arithmetic the evented scheduler would do —
        # per-boundary rounding included — to find the exact end time.
        t = start
        rem = self._burst_rem
        q = self.quantum_s
        while rem > _RESIDUE_S:
            s = rem if rem < q else q
            t = t + s
            rem = rem - s
        self._epoch += 1
        self.env.call_at(t, self._on_burst_end, self._epoch)

    def _replay_until(self, limit: float) -> None:
        """Charge every burst slice whose boundary is at or before ``limit``."""
        t = self._burst_t
        rem = self._burst_rem
        q = self.quantum_s
        proc = self._current.proc
        while rem > _RESIDUE_S:
            s = rem if rem < q else q
            boundary = t + s
            if boundary > limit:
                break
            proc.charge_cpu(s)
            self.busy_s += s
            t = boundary
            rem = rem - s
        self._burst_t = t
        self._burst_rem = rem

    def _on_burst_end(self, epoch: int) -> None:
        if epoch != self._epoch:
            return
        self._replay_until(self.env.now)
        task = self._current
        self._bursting = False
        self._current = None
        task.done.succeed(None)

    def _on_slice_end(self, epoch: int) -> None:
        if epoch != self._epoch:
            return
        task = self._current
        s = self._slice_of(task.remaining)
        task.remaining -= s
        task.proc.charge_cpu(s)
        self.busy_s += s
        if task.remaining > _RESIDUE_S:
            self._runqueue.append(task)
            self._current = self._runqueue.pop(0)
        else:
            task.done.succeed(None)
            if not self._runqueue:
                self._current = None
                return
            self._current = self._runqueue.pop(0)
        if self._runqueue:
            self._epoch += 1
            boundary = self.env.now + self._slice_of(self._current.remaining)
            self._slice_end = boundary
            self._slice_len = boundary - self.env.now
            self.env.call_at(boundary, self._on_slice_end, self._epoch)
        else:
            self._begin_burst(self.env.now)
