"""A disk-channel model with per-I/O accounting.

"To collect the disk usage time of each thread, the disk driver records
the amount of time that each physical disk I/O takes and charges it to the
thread that issues the disk I/O request" (§3.5).  The channel services one
I/O at a time (FIFO); each I/O costs a positioning overhead plus a
size-proportional transfer time.

The channel is driven by completion callbacks rather than a simulated
process per I/O: a request either starts service immediately or joins the
FIFO, and each I/O costs exactly one scheduled event.  Charge order and
completion times match the process-per-I/O implementation bit for bit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.procs import SimProcess
from repro.sim.engine import Environment
from repro.sim.events import Event


class _IO:
    __slots__ = ("proc", "duration", "done")

    def __init__(self, proc: SimProcess, duration: float, done: Event) -> None:
        self.proc = proc
        self.duration = duration
        self.done = done


class Disk:
    """One disk channel.

    Parameters
    ----------
    seek_s:
        Positioning overhead (seek + rotational latency) per I/O.
    transfer_bps:
        Sustained transfer rate in bytes/second.
    """

    def __init__(
        self,
        env: Environment,
        seek_s: float = 0.0097,
        transfer_bps: float = 20e6,
    ) -> None:
        if seek_s < 0:
            raise ValueError("seek time must be non-negative")
        if transfer_bps <= 0:
            raise ValueError("transfer rate must be positive")
        self.env = env
        self.seek_s = float(seek_s)
        self.transfer_bps = float(transfer_bps)
        self.busy_s = 0.0
        self.io_count = 0
        self._started_at = env.now
        self._in_service = False
        self._pending: List[_IO] = []
        #: The I/O occupying the channel and when it seized it; lets
        #: :meth:`cancel` charge the partially-consumed channel time.
        self._current: Optional[_IO] = None
        self._current_started = 0.0
        #: Invalidates the scheduled completion of a cancelled I/O
        #: (heap entries cannot be removed).
        self._epoch = 0

    def __repr__(self) -> str:
        return "<Disk ios={} busy={:.3f}s>".format(self.io_count, self.busy_s)

    def io_time(self, nbytes: int) -> float:
        """Channel time one I/O of ``nbytes`` occupies."""
        return self.seek_s + nbytes / self.transfer_bps

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the channel spent busy."""
        elapsed = self.env.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_s / elapsed)

    def reset_utilization(self) -> None:
        """Restart the utilization window at the current instant."""
        self.busy_s = 0.0
        self._started_at = self.env.now

    @property
    def queue_length(self) -> int:
        """I/Os waiting for the channel (excludes the one in service)."""
        return len(self._pending)

    def read(self, proc: SimProcess, nbytes: int) -> Event:
        """Issue a read of ``nbytes`` charged to ``proc``.

        Returns an event that fires when the I/O completes; wait on it
        with ``yield disk.read(...)``.
        """
        if nbytes < 0:
            raise ValueError("negative read size")
        io = _IO(proc, self.io_time(nbytes), Event(self.env))
        if self._in_service:
            self._pending.append(io)
        else:
            self._start(io)
        return io.done

    def cancel(self, done: Event) -> bool:
        """Abort the issued I/O whose completion event is ``done``.

        Channel time already consumed stays charged to the issuing
        process; the remainder is freed immediately (the next pending
        I/O starts at once) and ``done`` fires so the waiting process
        resumes and can observe the cancellation.  A cancelled I/O does
        not count toward :attr:`io_count` — it never completed.
        Returns ``False`` if the I/O is unknown — already completed or
        never issued.
        """
        for index, io in enumerate(self._pending):
            if io.done is done:
                del self._pending[index]
                done.succeed(None)
                return True
        current = self._current
        if current is None or current.done is not done:
            return False
        elapsed = self.env.now - self._current_started
        if elapsed > 0.0:
            current.proc.charge_disk(elapsed)
            self.busy_s += elapsed
        self._epoch += 1
        self._current = None
        if self._pending:
            self._start(self._pending.pop(0))
        else:
            self._in_service = False
        done.succeed(None)
        return True

    # -- internal -------------------------------------------------------

    def _start(self, io: _IO) -> None:
        self._in_service = True
        self._current = io
        self._current_started = self.env.now
        self._epoch += 1
        self.env.call_later(io.duration, self._complete, io, self._epoch)

    def _complete(self, io: _IO, epoch: int) -> None:
        if epoch != self._epoch:
            return
        io.proc.charge_disk(io.duration)
        self.busy_s += io.duration
        self.io_count += 1
        self._current = None
        io.done.succeed(None)
        if self._pending:
            self._start(self._pending.pop(0))
        else:
            self._in_service = False
