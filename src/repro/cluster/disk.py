"""A disk-channel model with per-I/O accounting.

"To collect the disk usage time of each thread, the disk driver records
the amount of time that each physical disk I/O takes and charges it to the
thread that issues the disk I/O request" (§3.5).  The channel services one
I/O at a time (FIFO); each I/O costs a positioning overhead plus a
size-proportional transfer time.
"""

from __future__ import annotations

from repro.cluster.procs import SimProcess
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.resources import Resource


class Disk:
    """One disk channel.

    Parameters
    ----------
    seek_s:
        Positioning overhead (seek + rotational latency) per I/O.
    transfer_bps:
        Sustained transfer rate in bytes/second.
    """

    def __init__(
        self,
        env: Environment,
        seek_s: float = 0.0097,
        transfer_bps: float = 20e6,
    ) -> None:
        if seek_s < 0:
            raise ValueError("seek time must be non-negative")
        if transfer_bps <= 0:
            raise ValueError("transfer rate must be positive")
        self.env = env
        self.seek_s = float(seek_s)
        self.transfer_bps = float(transfer_bps)
        self._channel = Resource(env, capacity=1)
        self.busy_s = 0.0
        self.io_count = 0
        self._started_at = env.now

    def __repr__(self) -> str:
        return "<Disk ios={} busy={:.3f}s>".format(self.io_count, self.busy_s)

    def io_time(self, nbytes: int) -> float:
        """Channel time one I/O of ``nbytes`` occupies."""
        return self.seek_s + nbytes / self.transfer_bps

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the channel spent busy."""
        elapsed = self.env.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_s / elapsed)

    def reset_utilization(self) -> None:
        """Restart the utilization window at the current instant."""
        self.busy_s = 0.0
        self._started_at = self.env.now

    @property
    def queue_length(self) -> int:
        """I/Os waiting for the channel."""
        return self._channel.queue_length

    def read(self, proc: SimProcess, nbytes: int) -> Event:
        """Issue a read of ``nbytes`` charged to ``proc``.

        Returns the event of a process performing the I/O; wait on it with
        ``yield disk.read(...)``.
        """
        if nbytes < 0:
            raise ValueError("negative read size")
        return self.env.process(self._io(proc, nbytes))

    def _io(self, proc: SimProcess, nbytes: int):
        with self._channel.request() as slot:
            yield slot
            duration = self.io_time(nbytes)
            yield self.env.timeout(duration)
            proc.charge_disk(duration)
            self.busy_s += duration
            self.io_count += 1
