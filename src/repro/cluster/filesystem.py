"""A simulated file system: a catalog of paths with sizes.

Each hosted web site's document tree is registered here; the web server
consults it for existence and size, the buffer cache and disk model for
the cost of actually reading the bytes.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple


class FileSystem:
    """A flat catalog of files keyed by absolute path."""

    def __init__(self) -> None:
        self._files: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def add_file(self, path: str, size_bytes: int) -> None:
        """Register one file (idempotent; last size wins)."""
        if size_bytes < 0:
            raise ValueError("negative file size")
        if not path.startswith("/"):
            raise ValueError("paths must be absolute: {!r}".format(path))
        self._files[path] = int(size_bytes)

    def add_tree(self, prefix: str, files: Dict[str, int]) -> None:
        """Register a site's document tree under ``prefix``."""
        for relative, size in files.items():
            joined = "{}/{}".format(prefix.rstrip("/"), relative.lstrip("/"))
            self.add_file(joined, size)

    def size_of(self, path: str) -> Optional[int]:
        """Size in bytes, or None if the path does not exist."""
        return self._files.get(path)

    def total_bytes(self) -> int:
        """Sum of all registered file sizes."""
        return sum(self._files.values())

    def walk(self) -> Iterator[Tuple[str, int]]:
        """Iterate (path, size) pairs."""
        return iter(self._files.items())
