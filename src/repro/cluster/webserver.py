"""The back-end web-server application.

Each hosted site gets a dedicated master process and a pool of worker
processes — Gage's charging-entity model (§3.5): every slice of CPU, every
disk I/O, and every transmitted byte lands on a process in the site's
subtree, so the periodic accounting walk attributes usage precisely.

The same servicing path runs under both transports: in packet mode
requests arrive over spliced TCP connections; in flow mode
:meth:`WebServer.service_request` is invoked directly with the request
object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids a layer cycle
    from repro.core.hedge import ServiceHandle

from repro.cluster.machine import Machine
from repro.cluster.procs import SimProcess
from repro.net.tcp import Connection, ConnectionError_
from repro.resources import ResourceVector
from repro.sim.resources import Resource
from repro.workload.request import CostModel, WebRequest, WebResponse

#: Callback invoked as (site_host, request, usage, completed_at).
CompletionHook = Callable[[str, WebRequest, ResourceVector, float], None]


@dataclass
class Site:
    """One hosted web site on one back-end node."""

    host: str
    docroot: str
    master: SimProcess
    workers: Resource
    worker_procs: List[SimProcess]
    completed: int = 0
    errors: int = 0
    busy: int = 0
    _rr: int = field(default=0, repr=False)

    def next_worker(self) -> SimProcess:
        """Round-robin pick of the worker process to charge."""
        proc = self.worker_procs[self._rr % len(self.worker_procs)]
        self._rr += 1
        return proc


class WebServer:
    """The web-server application running on one machine."""

    def __init__(
        self,
        machine: Machine,
        cost_model: Optional[CostModel] = None,
        workers_per_site: int = 4,
        error_response_bytes: int = 512,
        overhead_cpu_s: float = 0.0,
    ) -> None:
        if workers_per_site < 1:
            raise ValueError("need at least one worker per site")
        if overhead_cpu_s < 0:
            raise ValueError("negative overhead")
        self.env = machine.env
        self.machine = machine
        self.cost_model = cost_model or CostModel()
        self.workers_per_site = workers_per_site
        self.error_response_bytes = error_response_bytes
        #: Extra CPU per request charged by the hosting layer — Gage's
        #: per-request RPN overhead (§4.2: 56.7 µs for second-leg setup
        #: plus address/sequence remapping).  Zero for baselines.
        self.overhead_cpu_s = overhead_cpu_s
        self.sites: Dict[str, Site] = {}
        self.on_complete: List[CompletionHook] = []

    def __repr__(self) -> str:
        return "<WebServer {} sites={}>".format(self.machine.name, len(self.sites))

    # -- site management ---------------------------------------------------

    def host_site(
        self,
        host: str,
        files: Optional[Dict[str, int]] = None,
        workers: Optional[int] = None,
    ) -> Site:
        """Install a subscriber's site: document tree + worker processes."""
        if host in self.sites:
            raise RuntimeError("site {!r} already hosted".format(host))
        docroot = "/sites/{}".format(host)
        if files:
            self.machine.fs.add_tree(docroot, files)
        worker_count = workers or self.workers_per_site
        master = self.machine.procs.spawn("httpd[{}]".format(host))
        worker_procs = [
            self.machine.procs.spawn("httpd-w{}[{}]".format(i, host), parent=master)
            for i in range(worker_count)
        ]
        site = Site(
            host=host,
            docroot=docroot,
            master=master,
            workers=Resource(self.env, capacity=worker_count),
            worker_procs=worker_procs,
        )
        self.sites[host] = site
        return site

    # -- packet-mode entry point --------------------------------------------

    def acceptor(self, conn: Connection) -> None:
        """``HostStack.listen`` acceptor: handle one spliced connection."""
        self.env.process(self._handle_connection(conn))

    def _handle_connection(self, conn: Connection):
        request: Optional[WebRequest] = None
        while request is None:
            try:
                payload, _length = yield conn.receive()
            except Exception:
                return  # connection reset mid-request
            if payload is Connection.EOF:
                return
            if isinstance(payload, WebRequest):
                request = payload
        yield self.env.process(self.service_request(request, conn))
        conn.close()

    # -- the servicing path (both transports) --------------------------------

    #: Paths under this prefix are executed as CGI programs: the worker
    #: forks a dedicated child process whose CPU time lands in the site's
    #: subtree automatically — §3.5: "Gage's resource accounting model
    #: automatically works for CGI programs without any additional
    #: mechanisms."
    CGI_PREFIX = "/cgi/"

    def service_request(
        self,
        request: WebRequest,
        conn: Optional[Connection] = None,
        handle: Optional["ServiceHandle"] = None,
    ):
        """Service one request; a generator to run as a simulation process.

        Returns (via StopIteration value) the :class:`WebResponse`.

        ``handle`` (hedging only) is a cancellation token: around every
        resource wait it is armed with the matching mid-service abort,
        and a cancellation observed at any checkpoint abandons the
        request — resources already consumed stay charged to the site's
        subtree, but the request neither completes nor runs the
        completion hooks, and returns ``None``.
        """
        site = self.sites.get(request.host)
        if site is None:
            return (yield from self._respond_error(request, conn, status=404))
        dynamic = request.path.startswith(self.CGI_PREFIX)
        if dynamic:
            # Generated content: the response size comes from the request
            # model, and there is no file to read.
            size: Optional[int] = request.size_bytes
        else:
            path = "{}{}".format(site.docroot, request.path)
            size = self.machine.fs.size_of(path)
            if size is None:
                site.errors += 1
                response = yield from self._respond_error(request, conn, status=404)
                # The error page is still an *answered* request: it must
                # count as completed so the accounting cycle backs out the
                # RDN's dispatch-time prediction — otherwise every 404
                # leaks outstanding load on this node forever.
                site.completed += 1
                usage = ResourceVector(
                    cpu_s=0.0,
                    disk_s=0.0,
                    net_bytes=float(self.error_response_bytes),
                )
                for hook in self.on_complete:
                    hook(site.host, request, usage, self.env.now)
                return response

        site.busy += 1
        disk_s = 0.0
        cgi_s = 0.0
        cpu = self.machine.cpu
        disk = self.machine.disk
        with site.workers.request() as slot:
            yield slot
            if handle is not None and handle.cancelled:
                # Cancelled while queued for a worker: nothing consumed.
                site.busy -= 1
                return None
            worker = site.next_worker()
            cpu_total = self.cost_model.cpu_seconds(request) + self.overhead_cpu_s
            if dynamic:
                # The base server cost runs in the worker; the program's
                # own CPU demand runs in a forked child.
                cpu_total -= request.cpu_extra_s
                cgi_s = max(request.cpu_extra_s, 0.0)
            # Parse + prepare phase (most of the CPU), then the read, then
            # the transmit phase.
            done = cpu.execute(worker, cpu_total * 0.6)
            if handle is not None:
                handle.arm(lambda d=done: cpu.cancel(d))
            yield done
            if handle is not None and handle.disarm():
                site.busy -= 1
                return None
            if dynamic:
                cgi_proc = self.machine.procs.spawn(
                    "cgi[{}]".format(request.path), parent=worker
                )
                done = cpu.execute(cgi_proc, cgi_s)
                if handle is not None:
                    handle.arm(lambda d=done: cpu.cancel(d))
                yield done
                self.machine.procs.kill(cgi_proc)
                if handle is not None and handle.disarm():
                    site.busy -= 1
                    return None
            elif not self.machine.cache.lookup(path):
                disk_s = disk.io_time(size)
                done = disk.read(worker, size)
                if handle is not None:
                    handle.arm(lambda d=done: disk.cancel(d))
                yield done
                if handle is not None and handle.disarm():
                    # The read never finished; the page is not cached.
                    site.busy -= 1
                    return None
                self.machine.cache.insert(path, size)
            done = cpu.execute(worker, cpu_total * 0.4)
            if handle is not None:
                handle.arm(lambda d=done: cpu.cancel(d))
            yield done
            if handle is not None and handle.disarm():
                site.busy -= 1
                return None
            if handle is not None:
                # Past the last abort point: the response is committed.
                handle.finished = True
            response = WebResponse(request, size_bytes=size)
            if conn is not None:
                try:
                    yield conn.send(size, payload=response)
                except ConnectionError_:
                    # The connection died mid-service (client gone, link
                    # cut, or the front end reset it).  The CPU and disk
                    # already spent are charged to the site's subtree; the
                    # undeliverable response is an error, not a completion.
                    site.busy -= 1
                    site.errors += 1
                    return response
            worker.charge_net(size)
        site.busy -= 1
        site.completed += 1
        usage = ResourceVector(
            cpu_s=cpu_total + cgi_s, disk_s=disk_s, net_bytes=size
        )
        for hook in self.on_complete:
            hook(site.host, request, usage, self.env.now)
        return response

    def _respond_error(self, request: WebRequest, conn: Optional[Connection], status: int):
        response = WebResponse(request, size_bytes=self.error_response_bytes, status=status)
        if conn is not None:
            try:
                yield conn.send(self.error_response_bytes, payload=response)
            except ConnectionError_:
                pass  # nobody left to read the error page
        return response
