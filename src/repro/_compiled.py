"""Compiled-core loader: mypyc extensions with a pure-Python fallback.

The simulator's event/packet hot path — :mod:`repro.sim.engine`,
:mod:`repro.sim.events`, :mod:`repro.sim.process`, :mod:`repro.net.packet`,
:mod:`repro.net.tcp` — is written so mypyc can compile it to C extension
modules (see ``scripts/build_compiled.py``).  When those extensions sit
next to their ``.py`` sources, a normal ``import repro.sim.engine`` picks
the extension up automatically (extension loaders precede source loaders
in the file finder), so the compiled build needs no import-site changes.

This module decides, once per process and *before* any hot module is
imported, whether the compiled build may be used:

- ``REPRO_PURE=1`` in the environment forces the pure-Python sources even
  when extensions exist — the escape hatch for debugging and for the CI
  leg that proves the fallback stays green;
- extensions built against a different loader API (the build stamp's
  ``api_version``, bumped whenever the hot modules' interfaces change) or
  with no build stamp at all are **refused**, not trusted: a stale ``.so``
  silently shadowing newer sources is the one failure mode worse than
  being slow;
- anything less than the complete module set (a partially cleaned build)
  is likewise refused — mixing compiled and source hot modules would
  cross the native/interpreted boundary on every event.

Refusing means installing :class:`_PureSourceFinder` on ``sys.meta_path``
so the five module names resolve to their ``.py`` sources regardless of
sibling extensions.  The decision is exposed via :func:`is_active` /
:func:`status`, asserted by the ``build-compiled`` CI job, and stamped
into benchmark documents by :mod:`repro.harness.benchstore`.

Everything here must import cleanly with zero dependencies on the rest
of ``repro`` — it runs first, from ``repro/__init__``.
"""

from __future__ import annotations

import glob
import importlib.machinery
import importlib.util
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

#: Bump whenever the compiled modules' mutual interfaces change in a way
#: that makes previously built extensions unsafe to load against the
#: current sources.  ``scripts/build_compiled.py`` records the value at
#: build time; a mismatch at import time refuses the extensions.
API_VERSION = 1

#: The hot modules the compiled build covers, as (dotted name, relative
#: source path) pairs.  Order matters for mypyc: modules earlier in the
#: list are imported by later ones.
COMPILED_MODULES = (
    ("repro.sim.events", os.path.join("sim", "events.py")),
    ("repro.sim.process", os.path.join("sim", "process.py")),
    ("repro.sim.engine", os.path.join("sim", "engine.py")),
    ("repro.net.packet", os.path.join("net", "packet.py")),
    ("repro.net.tcp", os.path.join("net", "tcp.py")),
)

#: Environment variable forcing the pure-Python sources.
PURE_ENV = "REPRO_PURE"

#: Name of the build stamp written next to this file by the build script.
STAMP_FILENAME = "_compiled_stamp.json"

class CompiledStatus:
    """The loader's decision and the reason behind it."""

    __slots__ = ("active", "reason", "extensions")

    def __init__(
        self, active: bool, reason: str, extensions: Optional[Dict[str, str]] = None
    ) -> None:
        #: True when the compiled extensions will serve the hot modules.
        self.active = active
        #: Human-readable explanation of the decision.
        self.reason = reason
        #: module name -> extension path, for the modules found compiled.
        self.extensions = dict(extensions or {})

    def __repr__(self) -> str:
        return "<CompiledStatus {} ({})>".format(
            "active" if self.active else "inactive", self.reason
        )


def package_dir() -> str:
    """The on-disk directory of the ``repro`` package."""
    return os.path.dirname(os.path.abspath(__file__))


def _extension_for(source_path: str) -> Optional[str]:
    """The built extension sitting next to ``source_path``, if any."""
    root, _ = os.path.splitext(source_path)
    for suffix in importlib.machinery.EXTENSION_SUFFIXES:
        exact = root + suffix
        if os.path.exists(exact):
            return exact
    # ABI-tagged names (engine.cpython-312-x86_64-linux-gnu.so) are the
    # common case; match any extension suffix after the module stem.
    candidates = sorted(glob.glob(root + ".*.so")) + sorted(
        glob.glob(root + ".*.pyd")
    )
    return candidates[0] if candidates else None


def read_stamp(root: Optional[str] = None) -> Optional[Dict[str, object]]:
    """The build stamp written by ``scripts/build_compiled.py``, if any."""
    path = os.path.join(root or package_dir(), STAMP_FILENAME)
    try:
        with open(path) as handle:
            stamp = json.load(handle)
    except (OSError, ValueError):
        return None
    return stamp if isinstance(stamp, dict) else None


def probe(root: Optional[str] = None) -> CompiledStatus:
    """Decide whether the compiled build at ``root`` may be used.

    Pure filesystem inspection — imports nothing, so it is safe to call
    before (and in order to decide) the hot modules' first import.
    ``root`` defaults to the live package directory; tests point it at
    fabricated trees.
    """
    root = root or package_dir()
    if os.environ.get(PURE_ENV, "") not in ("", "0"):
        return CompiledStatus(False, "{}=1 forces the pure-Python sources".format(PURE_ENV))
    extensions: Dict[str, str] = {}
    missing: List[str] = []
    for name, rel_source in COMPILED_MODULES:
        found = _extension_for(os.path.join(root, rel_source))
        if found is None:
            missing.append(name)
        else:
            extensions[name] = found
    if not extensions:
        return CompiledStatus(False, "no compiled extensions present")
    if missing:
        return CompiledStatus(
            False,
            "refused: incomplete compiled build (missing {})".format(
                ", ".join(missing)
            ),
            extensions,
        )
    stamp = read_stamp(root)
    if stamp is None:
        return CompiledStatus(
            False, "refused: extensions present but no build stamp", extensions
        )
    stamped = stamp.get("api_version")
    if stamped != API_VERSION:
        return CompiledStatus(
            False,
            "refused: build stamp api_version {!r} != expected {!r}".format(
                stamped, API_VERSION
            ),
            extensions,
        )
    return CompiledStatus(True, "compiled extensions active", extensions)


class _PureSourceFinder:
    """A meta-path finder pinning the hot modules to their ``.py`` sources.

    Installed at the head of ``sys.meta_path`` when the compiled build is
    refused or disabled; for exactly the names in ``COMPILED_MODULES`` it
    returns a source-loader spec, which outranks the file finder that
    would otherwise prefer the sibling extension.  All other imports pass
    through untouched.
    """

    def __init__(self, root: str) -> None:
        self._sources = {
            name: os.path.join(root, rel_source)
            for name, rel_source in COMPILED_MODULES
        }

    def find_spec(
        self,
        fullname: str,
        path: Optional[Sequence[str]] = None,
        target: Optional[object] = None,
    ) -> Optional[importlib.machinery.ModuleSpec]:
        source = self._sources.get(fullname)
        if source is None or not os.path.exists(source):
            return None
        loader = importlib.machinery.SourceFileLoader(fullname, source)
        return importlib.util.spec_from_file_location(fullname, source, loader=loader)

    def __repr__(self) -> str:
        return "<_PureSourceFinder for {} modules>".format(len(self._sources))


_STATUS: Optional[CompiledStatus] = None
_FINDER: Optional[_PureSourceFinder] = None


def install() -> CompiledStatus:
    """Decide once and enforce the decision; idempotent.

    Called from ``repro/__init__`` before any hot module import.  When
    the probe refuses (or ``REPRO_PURE`` disables) a present compiled
    build, the pure-source finder is installed so the extensions can
    never be imported by accident.
    """
    global _STATUS, _FINDER
    if _STATUS is not None:
        return _STATUS
    _STATUS = probe()
    if not _STATUS.active and _STATUS.extensions:
        # Extensions exist on disk but must not be used: pin sources.
        _FINDER = _PureSourceFinder(package_dir())
        sys.meta_path.insert(0, _FINDER)
    return _STATUS


def status() -> CompiledStatus:
    """The installed decision (installing it on first call)."""
    return install()


def is_active() -> bool:
    """True when the compiled extensions serve the hot modules."""
    return status().active


def loaded_origins() -> Dict[str, str]:
    """module name -> import origin for every hot module already imported.

    The ``build-compiled`` CI job cross-checks this against
    :func:`is_active`: an active build whose modules resolve to ``.py``
    files (or vice versa) means the loader and the import system
    disagree, which must fail loudly.
    """
    origins: Dict[str, str] = {}
    for name, _rel in COMPILED_MODULES:
        module = sys.modules.get(name)
        if module is None:
            continue
        origins[name] = getattr(module, "__file__", "") or "<unknown>"
    return origins


def build_kind() -> str:
    """``"compiled"`` or ``"pure"`` — for environment stamps."""
    return "compiled" if is_active() else "pure"
