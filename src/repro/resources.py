"""The generic-request QoS currency (§3.1 of the paper).

This lives at the package root (rather than inside :mod:`repro.core`)
because both the Gage core and the cluster substrate account in it;
:mod:`repro.core.grps` re-exports everything here.

Gage expresses QoS as *generic URL requests per second* (GRPS).  A generic
request "represents an average web site access and is assumed to take
10 msec of CPU time, 10 msec of disk channel usage time, and 2000 bytes of
network bandwidth".  A subscriber reserving 50 GRPS is therefore entitled,
every second, to 500 ms of CPU, 500 ms of disk channel time, and
100 KBytes of outgoing bandwidth from the cluster.

:class:`ResourceVector` is the three-dimensional quantity all accounting,
balances, and capacities are expressed in.
"""

from __future__ import annotations

from typing import NamedTuple

#: C-level constructor used by the arithmetic methods: vector ops run tens
#: of thousands of times per simulated second of credit scheduling, and
#: the keyword-processing path of the generated ``__new__`` is measurable.
_new = tuple.__new__


class ResourceVector(NamedTuple):
    """An amount of the three managed resources.

    A :class:`~typing.NamedTuple` rather than a dataclass: immutable and
    hashable like before, but construction, equality, and componentwise
    arithmetic all run at C speed on the credit-scheduler hot path.

    Attributes
    ----------
    cpu_s:
        CPU time, in seconds.
    disk_s:
        Disk channel usage time, in seconds.
    net_bytes:
        Network bandwidth consumed on the outgoing link, in bytes.
    """

    cpu_s: float = 0.0
    disk_s: float = 0.0
    net_bytes: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return _new(
            ResourceVector,
            (self[0] + other[0], self[1] + other[1], self[2] + other[2]),
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return _new(
            ResourceVector,
            (self[0] - other[0], self[1] - other[1], self[2] - other[2]),
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """This vector multiplied componentwise by ``factor``."""
        return _new(
            ResourceVector, (self[0] * factor, self[1] * factor, self[2] * factor)
        )

    def max(self, other: "ResourceVector") -> "ResourceVector":
        """Componentwise maximum."""
        return _new(
            ResourceVector,
            (
                self[0] if self[0] >= other[0] else other[0],
                self[1] if self[1] >= other[1] else other[1],
                self[2] if self[2] >= other[2] else other[2],
            ),
        )

    def clamped_min(self, floor: float = 0.0) -> "ResourceVector":
        """Componentwise ``max(component, floor)``."""
        return _new(
            ResourceVector,
            (
                self[0] if self[0] >= floor else floor,
                self[1] if self[1] >= floor else floor,
                self[2] if self[2] >= floor else floor,
            ),
        )

    @property
    def any_negative(self) -> bool:
        """True if any component is below zero (a queue balance exhausted)."""
        return (
            self.cpu_s < -self.EPSILON
            or self.disk_s < -self.EPSILON
            or self.net_bytes < -self.EPSILON
        )

    @property
    def all_nonnegative(self) -> bool:
        """True if every component is zero or above."""
        return not self.any_negative

    def covers(self, other: "ResourceVector") -> bool:
        """True if this vector is componentwise >= ``other``."""
        return (
            self.cpu_s >= other.cpu_s
            and self.disk_s >= other.disk_s
            and self.net_bytes >= other.net_bytes
        )

    def dominant_fraction_of(self, capacity: "ResourceVector") -> float:
        """The largest componentwise ratio self/capacity (load measure).

        Components with zero capacity are ignored; returns 0.0 when all
        capacity components are zero.
        """
        best = None
        c = capacity[0]
        if c > 0:
            best = self[0] / c
        c = capacity[1]
        if c > 0:
            r = self[1] / c
            if best is None or r > best:
                best = r
        c = capacity[2]
        if c > 0:
            r = self[2] / c
            if best is None or r > best:
                best = r
        return 0.0 if best is None else best

    def in_generic_requests(self, generic: "ResourceVector" = None) -> float:
        """This usage expressed as a number of generic requests.

        Uses the *dominant* (most constrained) resource, mirroring the
        scheduler's dispatch-until-any-balance-negative rule.
        """
        return self.dominant_fraction_of(generic or GENERIC_REQUEST)


#: Tolerance for negativity checks: balances are sums of many small
#: floats, so exact-zero results land within ±1e-6 of zero.  (Assigned
#: after the class body — NamedTuple bodies only admit field annotations.)
ResourceVector.EPSILON = 1e-6

#: The paper's definition of one generic URL request (§3.1).
GENERIC_REQUEST = ResourceVector(cpu_s=0.010, disk_s=0.010, net_bytes=2000.0)

#: A shared zero constant (immutable, safe to share).
ResourceVector.ZERO = ResourceVector(0.0, 0.0, 0.0)


def grps(count: float, generic: ResourceVector = GENERIC_REQUEST) -> ResourceVector:
    """The resource entitlement of ``count`` generic requests.

    ``grps(50)`` is what a 50-GRPS reservation earns per second: 0.5 s of
    CPU, 0.5 s of disk channel time, and 100 KB of network bandwidth.
    """
    return generic.scaled(count)
