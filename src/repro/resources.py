"""The generic-request QoS currency (§3.1 of the paper).

This lives at the package root (rather than inside :mod:`repro.core`)
because both the Gage core and the cluster substrate account in it;
:mod:`repro.core.grps` re-exports everything here.

Gage expresses QoS as *generic URL requests per second* (GRPS).  A generic
request "represents an average web site access and is assumed to take
10 msec of CPU time, 10 msec of disk channel usage time, and 2000 bytes of
network bandwidth".  A subscriber reserving 50 GRPS is therefore entitled,
every second, to 500 ms of CPU, 500 ms of disk channel time, and
100 KBytes of outgoing bandwidth from the cluster.

:class:`ResourceVector` is the three-dimensional quantity all accounting,
balances, and capacities are expressed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class ResourceVector:
    """An amount of the three managed resources.

    Attributes
    ----------
    cpu_s:
        CPU time, in seconds.
    disk_s:
        Disk channel usage time, in seconds.
    net_bytes:
        Network bandwidth consumed on the outgoing link, in bytes.
    """

    cpu_s: float = 0.0
    disk_s: float = 0.0
    net_bytes: float = 0.0

    #: Shared all-zero constant (assigned after the class body).
    ZERO: ClassVar["ResourceVector"]

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu_s + other.cpu_s,
            self.disk_s + other.disk_s,
            self.net_bytes + other.net_bytes,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu_s - other.cpu_s,
            self.disk_s - other.disk_s,
            self.net_bytes - other.net_bytes,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """This vector multiplied componentwise by ``factor``."""
        return ResourceVector(
            self.cpu_s * factor, self.disk_s * factor, self.net_bytes * factor
        )

    def max(self, other: "ResourceVector") -> "ResourceVector":
        """Componentwise maximum."""
        return ResourceVector(
            max(self.cpu_s, other.cpu_s),
            max(self.disk_s, other.disk_s),
            max(self.net_bytes, other.net_bytes),
        )

    def clamped_min(self, floor: float = 0.0) -> "ResourceVector":
        """Componentwise ``max(component, floor)``."""
        return ResourceVector(
            max(self.cpu_s, floor),
            max(self.disk_s, floor),
            max(self.net_bytes, floor),
        )

    #: Tolerance for negativity checks: balances are sums of many small
    #: floats, so exact-zero results land within ±1e-6 of zero.
    EPSILON: ClassVar[float] = 1e-6

    @property
    def any_negative(self) -> bool:
        """True if any component is below zero (a queue balance exhausted)."""
        return (
            self.cpu_s < -self.EPSILON
            or self.disk_s < -self.EPSILON
            or self.net_bytes < -self.EPSILON
        )

    @property
    def all_nonnegative(self) -> bool:
        """True if every component is zero or above."""
        return not self.any_negative

    def covers(self, other: "ResourceVector") -> bool:
        """True if this vector is componentwise >= ``other``."""
        return (
            self.cpu_s >= other.cpu_s
            and self.disk_s >= other.disk_s
            and self.net_bytes >= other.net_bytes
        )

    def dominant_fraction_of(self, capacity: "ResourceVector") -> float:
        """The largest componentwise ratio self/capacity (load measure).

        Components with zero capacity are ignored; returns 0.0 when all
        capacity components are zero.
        """
        ratios = []
        if capacity.cpu_s > 0:
            ratios.append(self.cpu_s / capacity.cpu_s)
        if capacity.disk_s > 0:
            ratios.append(self.disk_s / capacity.disk_s)
        if capacity.net_bytes > 0:
            ratios.append(self.net_bytes / capacity.net_bytes)
        return max(ratios) if ratios else 0.0

    def in_generic_requests(self, generic: "ResourceVector" = None) -> float:
        """This usage expressed as a number of generic requests.

        Uses the *dominant* (most constrained) resource, mirroring the
        scheduler's dispatch-until-any-balance-negative rule.
        """
        return self.dominant_fraction_of(generic or GENERIC_REQUEST)


#: The paper's definition of one generic URL request (§3.1).
GENERIC_REQUEST = ResourceVector(cpu_s=0.010, disk_s=0.010, net_bytes=2000.0)

# A shared zero constant (frozen dataclass, safe to share).  Assigning a
# class attribute is unaffected by frozen instance semantics.
ResourceVector.ZERO = ResourceVector(0.0, 0.0, 0.0)


def grps(count: float, generic: ResourceVector = GENERIC_REQUEST) -> ResourceVector:
    """The resource entitlement of ``count`` generic requests.

    ``grps(50)`` is what a 50-GRPS reservation earns per second: 0.5 s of
    CPU, 0.5 s of disk channel time, and 100 KB of network bandwidth.
    """
    return generic.scaled(count)
