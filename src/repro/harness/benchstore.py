"""Serialized benchmark results for CI regression gating.

Each benchmark module run with ``--benchstore DIR`` leaves behind one
``BENCH_<suite>.json`` document: the per-test timing summary (median and
p95 over the rounds pytest-benchmark measured), any ``extra_info`` the
test attached (paper-figure numbers like deviation percentages), and an
environment stamp.  ``scripts/bench_compare.py`` diffs two such
documents and fails CI when a timing or figure drifts past tolerance.

The schema is versioned so the compare script can refuse documents it
does not understand instead of mis-reading them.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Dict, List, Optional, Sequence

#: Bump on any incompatible change to the document layout.
SCHEMA = "repro.bench/1"

#: The summary statistics every benchmark record carries, in order.
STAT_FIELDS = ("median_s", "p95_s", "mean_s", "min_s", "max_s")


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values``, linearly interpolated."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def environment_stamp() -> Dict[str, str]:
    """Where the numbers were measured (informational, not compared).

    ``cpus`` lets the compare script demote assertions that need real
    parallelism (``min_cores`` in a record's ``extra_info``) to advisory
    on small runners instead of committing their numbers as truth.
    ``repro_build`` records whether the mypyc-compiled core served the
    run, so a document can always be traced to the build it measured.
    """
    from repro import _compiled

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": str(os.cpu_count() or 0),
        "repro_build": _compiled.build_kind(),
    }


def record_benchmark(bench) -> Dict[str, object]:
    """Summarize one finished pytest-benchmark fixture into a record.

    ``bench`` is the ``benchmark`` fixture after the test body ran; its
    raw per-round timings live at ``bench.stats.stats.data``.
    """
    if bench.stats is None:
        raise ValueError("benchmark {!r} has no stats (never run?)".format(bench.name))
    data: List[float] = list(bench.stats.stats.data)
    if not data:
        raise ValueError("benchmark {!r} recorded no rounds".format(bench.name))
    extra_info = {
        key: value
        for key, value in sorted(dict(bench.extra_info).items())
        if isinstance(value, (int, float, str, bool))
    }
    return {
        "name": bench.name,
        "group": bench.group,
        "rounds": len(data),
        "median_s": percentile(data, 0.5),
        "p95_s": percentile(data, 0.95),
        "mean_s": sum(data) / len(data),
        "min_s": min(data),
        "max_s": max(data),
        "extra_info": extra_info,
    }


def suite_document(suite: str, records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Assemble the full BENCH_<suite>.json document."""
    return {
        "schema": SCHEMA,
        "suite": suite,
        "environment": environment_stamp(),
        "benchmarks": {str(record["name"]): record for record in records},
    }


def suite_filename(suite: str) -> str:
    """The canonical on-disk name for one suite's document."""
    return "BENCH_{}.json".format(suite)


def write_suite(
    directory: str, suite: str, records: Sequence[Dict[str, object]]
) -> str:
    """Write one suite's document into ``directory``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, suite_filename(suite))
    document = suite_document(suite, records)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def validate_suite(document: Dict[str, object]) -> None:
    """Raise ValueError unless ``document`` is a well-formed suite doc."""
    if not isinstance(document, dict):
        raise ValueError("bench document must be an object")
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            "unsupported bench schema {!r} (expected {!r})".format(schema, SCHEMA)
        )
    if not isinstance(document.get("suite"), str):
        raise ValueError("bench document missing 'suite' string")
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ValueError("bench document missing 'benchmarks' object")
    for name, record in benchmarks.items():
        if not isinstance(record, dict):
            raise ValueError("benchmark {!r} record must be an object".format(name))
        for field in STAT_FIELDS:
            value = record.get(field)
            if not isinstance(value, (int, float)):
                raise ValueError(
                    "benchmark {!r} missing numeric {!r}".format(name, field)
                )
        extra = record.get("extra_info", {})
        if not isinstance(extra, dict):
            raise ValueError("benchmark {!r} extra_info must be an object".format(name))


def load_suite(path: str) -> Dict[str, object]:
    """Read and validate one BENCH_*.json document."""
    with open(path) as handle:
        document = json.load(handle)
    validate_suite(document)
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.harness.benchstore FILE...`` validates documents."""
    paths = list(argv if argv is not None else sys.argv[1:])
    if not paths:
        print("usage: python -m repro.harness.benchstore BENCH_*.json", file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            document = load_suite(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("{}: INVALID ({})".format(path, exc))
            status = 1
        else:
            print(
                "{}: ok (suite={}, {} benchmarks)".format(
                    path, document["suite"], len(document["benchmarks"])
                )
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
