"""Experiment runners for the paper's evaluation section.

Every runner assembles a fresh :class:`~repro.core.simulation.GageCluster`
(flow fidelity — the QoS dynamics are transport-independent and the long
runs would gain nothing from per-packet simulation), drives a workload,
and returns structured results the benchmarks print alongside the
paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.besteffort import BestEffortDispatcher
from repro.cluster.machine import Machine
from repro.cluster.webserver import WebServer
from repro.core.config import GageConfig
from repro.core.metrics import (
    ServiceReport,
    deviation_from_reservation_vectors,
)
from repro.core.simulation import GageCluster
from repro.core.subscriber import Subscriber
from repro.sim.engine import Environment
from repro.workload.request import CostModel
from repro.workload.specweb import SpecWeb99Config, SpecWeb99Workload
from repro.workload.synthetic import SyntheticWorkload

#: Page size for which the default cost model yields exactly one generic
#: request of work (§3.1's 2000 network bytes).
GENERIC_PAGE_BYTES = 2000

#: Cost model for the §4.3 scalability experiment: cheap cached pages so
#: one RPN saturates around the paper's 540 requests/sec (the 56.7 µs
#: Gage overhead on top brings 556/s down to ~539/s, the ~1.8-3% penalty
#: of §4.3).
SCALABILITY_COST_MODEL = CostModel(
    base_cpu_s=0.0017, per_kb_cpu_s=0.00005, seek_s=0.0098, transfer_bps=20e6
)


# ---------------------------------------------------------------------------
# Table 1 — performance isolation under excessive input load
# ---------------------------------------------------------------------------

def run_isolation(
    reservations: Optional[Dict[str, float]] = None,
    input_rates: Optional[Dict[str, float]] = None,
    num_rpns: int = 8,
    duration_s: float = 12.0,
    warmup_s: float = 2.0,
    queue_capacity: int = 64,
    config: Optional[GageConfig] = None,
) -> List[ServiceReport]:
    """Run the Table 1 (or Table 2) scenario and report per-site rates.

    Defaults reproduce Table 1: three subscribers with reservations
    250/150/50 GRPS; site1 and site2 offered ≈ their reservations, site3
    offered far beyond its reservation.
    """
    reservations = reservations or {"site1": 250.0, "site2": 150.0, "site3": 50.0}
    input_rates = input_rates or {"site1": 259.4, "site2": 161.1, "site3": 390.3}
    env = Environment()
    subscribers = [
        Subscriber(name, grps, queue_capacity=queue_capacity)
        for name, grps in reservations.items()
    ]
    workload = SyntheticWorkload(
        rates=input_rates, duration_s=duration_s, file_bytes=GENERIC_PAGE_BYTES
    )
    site_files = {name: workload.site_files(name) for name in reservations}
    cluster = GageCluster(
        env,
        subscribers,
        site_files,
        num_rpns=num_rpns,
        config=config,
        fidelity="flow",
    )
    cluster.load_trace(workload.generate())
    cluster.run(duration_s)
    return cluster.all_reports(warmup_s, duration_s)


def run_spare_allocation(
    num_rpns: int = 8,
    duration_s: float = 12.0,
    warmup_s: float = 2.0,
    spare_policy: str = "reservation",
) -> List[ServiceReport]:
    """Run the Table 2 scenario: two subscribers, both overloaded.

    The paper's cluster delivered ≈765 GRPS; ours delivers ≈800, so the
    offered loads are scaled up so that both sites' demand exceeds their
    proportional spare share and the split is visible.
    """
    config = GageConfig(spare_policy=spare_policy)
    return run_isolation(
        reservations={"site1": 250.0, "site2": 200.0},
        input_rates={"site1": 470.0, "site2": 410.0},
        num_rpns=num_rpns,
        duration_s=duration_s,
        warmup_s=warmup_s,
        queue_capacity=64,
        config=config,
    )


# ---------------------------------------------------------------------------
# Figure 3 — deviation from ideal reservation vs accounting cycle
# ---------------------------------------------------------------------------

@dataclass
class DeviationCurve:
    """One Figure-3 series: accounting cycle → deviation per interval."""

    accounting_cycle_s: float
    workload: str
    #: averaging interval (s) → mean deviation from reservation (%).
    by_interval: Dict[float, float] = field(default_factory=dict)

    def series(self) -> List[Tuple[float, float]]:
        """(interval, deviation%) sorted by interval."""
        return sorted(self.by_interval.items())


def run_deviation_experiment(
    accounting_cycle_s: float,
    intervals_s: Optional[List[float]] = None,
    workload: str = "synthetic",
    num_rpns: int = 8,
    duration_s: float = 42.0,
    warmup_s: float = 2.0,
    reservation_grps: float = 150.0,
    num_subscribers: int = 4,
    seed: int = 0,
    hedge_policy: Optional[str] = None,
    hedge_delay_s: Optional[float] = None,
    hedge_max_clones: Optional[int] = None,
) -> DeviationCurve:
    """Measure deviation-from-reservation at one accounting cycle.

    The workload is the paper's: constant-rate accesses to 6 KB files
    (``workload="synthetic"``) or a SPECWeb99-shaped trace
    (``workload="specweb"``).  Subscribers are driven above their
    reservations with spare allocation disabled, so the delivered usage
    should ideally equal the reservation exactly; what remains is the
    noise introduced by feedback staleness — Figure 3's subject.

    Deviation is computed over the usage reports the RDN actually
    receives (``accounting.usage_log``), matching the paper's
    observation that with a 2 s cycle and 1 s window the observed usage
    "is either 0 or around twice the reservation".
    """
    if workload not in ("synthetic", "specweb"):
        raise ValueError("unknown workload: {!r}".format(workload))
    intervals_s = intervals_s or [1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
    env = Environment()
    names = ["site{}".format(i + 1) for i in range(num_subscribers)]
    subscribers = [
        Subscriber(name, reservation_grps, queue_capacity=2048) for name in names
    ]
    # Hedge knobs pass straight through so the fig3-style deviation run
    # can be repeated with cloning on — the guarantee check behind
    # BENCH_proxy_hedged.  All default to GageConfig's (hedging off).
    hedge_kwargs: Dict[str, object] = {}
    if hedge_policy is not None:
        hedge_kwargs["hedge_policy"] = hedge_policy
    if hedge_delay_s is not None:
        hedge_kwargs["hedge_delay_s"] = hedge_delay_s
    if hedge_max_clones is not None:
        hedge_kwargs["hedge_max_clones"] = hedge_max_clones
    config = GageConfig(
        accounting_cycle_s=accounting_cycle_s,
        spare_policy="none",
        **hedge_kwargs,  # type: ignore[arg-type]
    )

    site_files: Dict[str, Dict[str, int]] = {}
    records = []
    if workload == "synthetic":
        # 6 KB pages (§4.1); one page ≈ 3.07 generic requests, dominated
        # by the network dimension, so the sustainable request rate is
        # reservation/3.07; offer ~1.5x that to keep queues backlogged.
        per_site_rate = reservation_grps / 3.07 * 1.5
        synthetic = SyntheticWorkload(
            rates={name: per_site_rate for name in names},
            duration_s=duration_s,
            file_bytes=6 * 1024,
            seed=seed,
        )
        site_files = {name: synthetic.site_files(name) for name in names}
        records = synthetic.generate()
    else:
        # SPECWeb99 static-GET mix over classes 0-2.  Class 3 (1% of
        # requests, 100-900 KB) is excluded here: one such request costs
        # whole *seconds* of a mid-size reservation's credit, which makes
        # any 10 ms-granularity metering meaningless at these reservation
        # scales; the paper does not state its absolute configuration.
        # Classes 0-2 preserve the high request-to-request variance the
        # experiment is about (0.1-90 KB, ~3 orders of magnitude).
        spec_config = SpecWeb99Config(
            directories=10, class_probabilities=(0.35, 0.50, 0.15, 0.0)
        )
        for index, name in enumerate(names):
            generator = SpecWeb99Workload(spec_config, seed=seed + index)
            site_files[name] = generator.site_files()
            mean_generics = generator.mean_request_bytes() / 2000.0
            per_site_rate = reservation_grps / mean_generics * 1.5
            records.extend(
                generator.generate(name, per_site_rate, duration_s, arrival="poisson")
            )
        records.sort(key=lambda record: record.at_s)

    cluster = GageCluster(
        env,
        subscribers,
        site_files,
        num_rpns=num_rpns,
        config=config,
        fidelity="flow",
        rpn_cache_bytes=64 * 1024 * 1024,
    )
    cluster.load_trace(records)
    cluster.run(duration_s)

    # Usage as observed by the RDN through accounting messages.  Window
    # the usage *vectors* and convert each window to generic requests
    # (the max-norm is not additive across cycles; see metrics docs).
    events = {name: [] for name in names}
    for at, name, usage in cluster.rdn.accounting.usage_log:
        events[name].append((at, usage))
    reservations = {name: reservation_grps for name in names}
    curve = DeviationCurve(accounting_cycle_s=accounting_cycle_s, workload=workload)
    for interval in intervals_s:
        curve.by_interval[interval] = deviation_from_reservation_vectors(
            events,
            reservations,
            warmup_s,
            duration_s,
            interval,
            generic=config.generic_request,
        )
    return curve


# ---------------------------------------------------------------------------
# §4.3 — scalability with the number of RPNs, and the Gage penalty
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScalabilityPoint:
    """Measured throughput at one cluster size."""

    num_rpns: int
    with_gage_rps: float
    without_gage_rps: float

    @property
    def penalty_percent(self) -> float:
        """Throughput cost of Gage's QoS machinery, %."""
        if self.without_gage_rps <= 0:
            return 0.0
        return 100.0 * (1.0 - self.with_gage_rps / self.without_gage_rps)


def _scalability_gage_run(
    num_rpns: int, duration_s: float, warmup_s: float, per_rpn_target_rps: float
) -> float:
    env = Environment()
    offered = per_rpn_target_rps * num_rpns * 1.15
    names = ["site{}".format(i + 1) for i in range(4)]
    # Reservations sum past the offered load so the credit scheduler is
    # never the limit — §4.3 measures raw capacity with QoS in place.
    per_site_reservation = offered / len(names) * 1.1
    subscribers = [
        Subscriber(name, per_site_reservation, queue_capacity=512) for name in names
    ]
    workload = SyntheticWorkload(
        rates={name: offered / len(names) for name in names},
        duration_s=duration_s,
        file_bytes=GENERIC_PAGE_BYTES,
    )
    cluster = GageCluster(
        env,
        subscribers,
        {name: workload.site_files(name) for name in names},
        num_rpns=num_rpns,
        fidelity="flow",
        cost_model=SCALABILITY_COST_MODEL,
        workers_per_site=8,
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(duration_s)
    served = sum(
        1 for at, _host in cluster.completions if warmup_s <= at < duration_s
    )
    return served / (duration_s - warmup_s)


def _scalability_baseline_run(
    num_rpns: int, duration_s: float, warmup_s: float, per_rpn_target_rps: float
) -> float:
    env = Environment()
    offered = per_rpn_target_rps * num_rpns * 1.15
    names = ["site{}".format(i + 1) for i in range(4)]
    workload = SyntheticWorkload(
        rates={name: offered / len(names) for name in names},
        duration_s=duration_s,
        file_bytes=GENERIC_PAGE_BYTES,
    )
    webservers = []
    for index in range(num_rpns):
        machine = Machine(env, "rpn{}".format(index))
        server = WebServer(
            machine,
            cost_model=SCALABILITY_COST_MODEL,
            workers_per_site=8,
            overhead_cpu_s=0.0,  # no Gage layer
        )
        for name in names:
            server.host_site(name, files=workload.site_files(name))
        for path, size in machine.fs.walk():
            machine.cache.insert(path, size)
        webservers.append(server)
    dispatcher = BestEffortDispatcher(env, webservers)
    dispatcher.load_trace(workload.generate())
    env.run(until=duration_s)
    return dispatcher.completed_rate(warmup_s, duration_s)


def run_scalability(
    rpn_counts: Optional[List[int]] = None,
    duration_s: float = 6.0,
    warmup_s: float = 1.0,
    per_rpn_target_rps: float = 550.0,
) -> List[ScalabilityPoint]:
    """Throughput vs cluster size, with and without Gage (§4.3)."""
    rpn_counts = rpn_counts or [1, 2, 3, 4, 5, 6, 7, 8]
    points = []
    for count in rpn_counts:
        with_gage = _scalability_gage_run(
            count, duration_s, warmup_s, per_rpn_target_rps
        )
        without = _scalability_baseline_run(
            count, duration_s, warmup_s, per_rpn_target_rps
        )
        points.append(
            ScalabilityPoint(
                num_rpns=count, with_gage_rps=with_gage, without_gage_rps=without
            )
        )
    return points
