"""ASCII charts for benchmark output.

Figure-shaped results print better as pictures, even in a terminal:
:func:`line_chart` renders (x, y) series as rows of a labeled dot grid
— enough to eyeball Figure 3's shape or the §4.3 utilization knee in
``pytest -s`` output without leaving the shell.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

#: Characters assigned to successive series.
MARKS = "ox+*#@"


def line_chart(
    series: Dict[str, Series],
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart."""
    if not series or all(not list(points) for points in series.values()):
        raise ValueError("nothing to plot")
    if width < 10 or height < 4:
        raise ValueError("chart too small")

    all_points = [p for points in series.values() for p in points]
    xs = [x for x, _y in all_points]
    ys = [y for _x, y in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, points in enumerate(series.values()):
        mark = MARKS[index % len(MARKS)]
        for x, y in points:
            column = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = "{:>10.6g} |".format(y_max)
    bottom_label = "{:>10.6g} |".format(y_min)
    blank_label = " " * 11 + "|"
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label
        elif row_index == height - 1:
            prefix = bottom_label
        else:
            prefix = blank_label
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + "{:<.6g}".format(x_min).ljust(width - 8) + "{:>8.6g}".format(x_max)
    )
    footer = []
    if x_label:
        footer.append("x: {}".format(x_label))
    if y_label:
        footer.append("y: {}".format(y_label))
    legend = ", ".join(
        "{}={}".format(MARKS[i % len(MARKS)], name) for i, name in enumerate(series)
    )
    footer.append(legend)
    lines.append(" " * 12 + "  ".join(footer))
    return "\n".join(lines)
