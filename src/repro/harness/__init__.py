"""Experiment harness: one runner per table/figure of the paper.

See DESIGN.md §3 for the experiment index.  Each runner assembles the
cluster, drives the workload, and returns structured results; the
``benchmarks/`` directory wraps these in pytest-benchmark targets that
print the paper's rows next to the measured ones.
"""

from repro.harness.charts import line_chart
from repro.harness.golden import (
    accounting_digest,
    accounting_lines,
    golden_fig3_cluster,
    golden_fig3_digest,
)
from repro.harness.experiment import (
    DeviationCurve,
    ScalabilityPoint,
    run_deviation_experiment,
    run_isolation,
    run_scalability,
    run_spare_allocation,
)
from repro.harness.parallel import ParallelSweep, SweepPointError, derive_seed
from repro.harness.rdn_cost import RDNCostModel
from repro.harness.recorder import Recorder
from repro.harness.sweep import Sweep, SweepPoint
from repro.harness.tables import format_table

__all__ = [
    "DeviationCurve",
    "ParallelSweep",
    "RDNCostModel",
    "Recorder",
    "ScalabilityPoint",
    "Sweep",
    "SweepPoint",
    "SweepPointError",
    "accounting_digest",
    "accounting_lines",
    "derive_seed",
    "format_table",
    "golden_fig3_cluster",
    "golden_fig3_digest",
    "line_chart",
    "run_deviation_experiment",
    "run_isolation",
    "run_scalability",
    "run_spare_allocation",
]
