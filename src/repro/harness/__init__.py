"""Experiment harness: one runner per table/figure of the paper.

See DESIGN.md §3 for the experiment index.  Each runner assembles the
cluster, drives the workload, and returns structured results; the
``benchmarks/`` directory wraps these in pytest-benchmark targets that
print the paper's rows next to the measured ones.
"""

from repro.harness.charts import line_chart
from repro.harness.golden import (
    accounting_digest,
    accounting_lines,
    golden_fig3_cluster,
    golden_fig3_digest,
)
from repro.harness.experiment import (
    DeviationCurve,
    ScalabilityPoint,
    run_deviation_experiment,
    run_isolation,
    run_scalability,
    run_spare_allocation,
)
from repro.harness.parallel import (
    EvalMemo,
    ParallelSweep,
    SweepPointError,
    WarmPool,
    derive_seed,
)
from repro.harness.rdn_cost import RDNCostModel
from repro.harness.search import (
    Objective,
    SearchResult,
    SearchSpace,
    run_search,
    trajectory_chart,
)
from repro.harness.recorder import Recorder
from repro.harness.sweep import Sweep, SweepPoint
from repro.harness.tables import format_table

__all__ = [
    "DeviationCurve",
    "EvalMemo",
    "Objective",
    "ParallelSweep",
    "RDNCostModel",
    "Recorder",
    "ScalabilityPoint",
    "SearchResult",
    "SearchSpace",
    "Sweep",
    "SweepPoint",
    "SweepPointError",
    "WarmPool",
    "accounting_digest",
    "accounting_lines",
    "derive_seed",
    "format_table",
    "golden_fig3_cluster",
    "golden_fig3_digest",
    "line_chart",
    "run_deviation_experiment",
    "run_isolation",
    "run_scalability",
    "run_search",
    "run_spare_allocation",
    "trajectory_chart",
]
