"""Experiment harness: one runner per table/figure of the paper.

See DESIGN.md §3 for the experiment index.  Each runner assembles the
cluster, drives the workload, and returns structured results; the
``benchmarks/`` directory wraps these in pytest-benchmark targets that
print the paper's rows next to the measured ones.
"""

from repro.harness.charts import line_chart
from repro.harness.experiment import (
    DeviationCurve,
    ScalabilityPoint,
    run_deviation_experiment,
    run_isolation,
    run_scalability,
    run_spare_allocation,
)
from repro.harness.rdn_cost import RDNCostModel
from repro.harness.recorder import Recorder
from repro.harness.sweep import Sweep, SweepPoint
from repro.harness.tables import format_table

__all__ = [
    "DeviationCurve",
    "RDNCostModel",
    "Recorder",
    "ScalabilityPoint",
    "Sweep",
    "SweepPoint",
    "format_table",
    "line_chart",
    "run_deviation_experiment",
    "run_isolation",
    "run_scalability",
    "run_spare_allocation",
]
