"""Parallel cartesian sweeps over a ``multiprocessing`` pool.

Figure regeneration is embarrassingly parallel — every sweep point is an
independent fixed-seed simulation — so :class:`ParallelSweep` fans the
grid out over worker processes while keeping the three properties the
serial :class:`~repro.harness.sweep.Sweep` guarantees:

- **Deterministic seeds.**  Each point's seed is derived by hashing the
  base seed together with the point's (sorted) parameters, so it depends
  on *what* the point is, never on which worker ran it or in what order
  points completed.
- **Deterministic merge.**  Results, telemetry snapshots, and recorder
  outputs come back in grid (axis) order regardless of completion order
  — ``Pool.imap(..., chunksize=1)`` preserves input order, and the grid
  is built the same way ``Sweep.run`` iterates it.
- **Attributable failures.**  A worker that raises doesn't poison the
  pool silently: the failing point's parameters travel back with the
  traceback and surface as a :class:`SweepPointError`.

Runners must be module-level callables (the pool pickles them) and must
take all their randomness from the injected seed parameter.

Callers that run *many* sweeps (the search harness runs hundreds of
small ones) have two reuse mechanisms, both preserving the contract
above exactly:

- :class:`WarmPool` — one long-lived ``multiprocessing.Pool`` shared by
  any number of :class:`ParallelSweep` instances, eliminating the
  fork-and-teardown cost of a fresh pool per ``run()``.
- :class:`EvalMemo` — a cache of point outcomes keyed on the same
  identity hash that derives the point's seed (runner + sorted params,
  which already include the derived seed, + the telemetry flag), so
  re-running an already-evaluated point returns the cached result
  object without touching a worker.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import multiprocessing.pool
import os
import traceback
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.harness.sweep import Sweep, SweepPoint
from repro.telemetry import registry as _telemetry

#: The experiment body: keyword parameters in, any (picklable) result out.
Runner = Callable[..., Any]


class SweepPointError(RuntimeError):
    """One sweep point failed in a worker; carries the point's params."""

    def __init__(self, params: Dict[str, Any], cause: str, worker_traceback: str) -> None:
        super().__init__(
            "sweep point {!r} failed: {}\n--- worker traceback ---\n{}".format(
                params, cause, worker_traceback
            )
        )
        self.params = dict(params)
        self.cause = cause
        self.worker_traceback = worker_traceback


def derive_seed(base_seed: int, params: Dict[str, Any]) -> int:
    """A 63-bit seed from ``base_seed`` and a point's parameters.

    Hashing the *sorted* parameter items makes the seed a pure function
    of the point's identity: reordering axes, adding unrelated points,
    resizing the pool, or changing worker assignment cannot change it.
    """
    canonical = "{}|{}".format(
        base_seed, sorted((str(k), repr(v)) for k, v in params.items())
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _run_point(payload):
    """Worker body: run one point, isolating its telemetry registry.

    Module-level so the pool can pickle it.  Returns a tagged tuple
    rather than raising: exceptions crossing process boundaries lose
    their tracebacks, so the traceback is stringified here and re-raised
    as :class:`SweepPointError` in the parent.
    """
    runner, params, capture_telemetry = payload
    _telemetry.reset()
    try:
        result = runner(**params)
    except Exception as exc:  # noqa: BLE001 - re-raised, attributed, in the parent
        return ("error", "{}: {}".format(type(exc).__name__, exc), traceback.format_exc())
    snapshot = _telemetry.get_registry().snapshot() if capture_telemetry else None
    return ("ok", result, snapshot)


class WarmPool:
    """One long-lived worker pool shared across many sweep runs.

    A fresh ``multiprocessing.Pool`` per ``run()`` pays process fork and
    teardown every sweep — dominant when the sweeps themselves are short
    (the search harness runs hundreds of 4-point grids).  A ``WarmPool``
    forks once, lazily on first use, and every :class:`ParallelSweep`
    handed it dispatches through the same workers.  Results are
    bit-identical to a fresh pool: seeds derive from point identity and
    ``imap(..., chunksize=1)`` merges in input order, so worker reuse
    is unobservable.

    Use as a context manager, or call :meth:`close` when done::

        with WarmPool(processes=4) as pool:
            for grid in grids:
                ParallelSweep(run_one, pool=pool, **grid).run()
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        if processes is not None and processes < 1:
            raise ValueError("a warm pool needs at least one process")
        self._requested = processes
        self._pool: Optional[multiprocessing.pool.Pool] = None

    @property
    def processes(self) -> int:
        """Worker count the pool has (or will be created with)."""
        return self._requested or (os.cpu_count() or 1)

    def imap(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> Iterator[Any]:
        """Lazily map ``fn`` over ``payloads`` in input order."""
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=self.processes)
        return self._pool.imap(fn, payloads, chunksize=1)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class EvalMemo:
    """A cache of sweep-point outcomes keyed on point identity.

    The key hashes the runner's identity and the point's sorted
    parameters — which, under seed injection, already include the
    derived seed — plus the telemetry-capture flag.  Because a point's
    result is a pure function of exactly those inputs (the determinism
    contract), a hit can return the stored outcome object as-is:
    byte-identical, same object identity, no worker involved.

    Only successful outcomes are stored; a failing point re-runs every
    time (its error may be environmental).  ``hits``/``misses`` count
    lookups for observability.
    """

    def __init__(self) -> None:
        self._store: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @staticmethod
    def key_for(runner: Runner, params: Dict[str, Any], capture_telemetry: bool) -> str:
        """The identity hash of one evaluation (hex sha256)."""
        canonical = "{}.{}|{}|{}".format(
            getattr(runner, "__module__", "?"),
            getattr(runner, "__qualname__", repr(runner)),
            sorted((str(k), repr(v)) for k, v in params.items()),
            bool(capture_telemetry),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def get(self, key: str) -> Optional[Any]:
        """The stored outcome for ``key``, or None (counted either way)."""
        outcome = self._store.get(key)
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def put(self, key: str, outcome: Any) -> None:
        self._store[key] = outcome


class ParallelSweep(Sweep):
    """A cartesian sweep fanned out over a ``multiprocessing`` pool.

    Parameters
    ----------
    runner:
        Module-level callable; receives one keyword per axis plus the
        injected seed parameter.
    processes:
        Pool size.  ``0`` runs inline (no pool — bit-identical to what a
        pool of one produces, useful under profilers and debuggers);
        ``None`` uses the machine's CPU count, capped at the grid size.
    base_seed:
        Root of per-point seed derivation.  ``None`` disables seed
        injection (the runner manages its own determinism).
    seed_param:
        Keyword the derived seed is injected under.
    capture_telemetry:
        When True, each worker's metric-registry snapshot for its point
        is collected into :attr:`telemetry` (grid order).
    pool:
        A :class:`WarmPool` to dispatch through instead of creating (and
        tearing down) a fresh pool inside ``run()``.  Mutually exclusive
        with ``processes``.
    memo:
        An :class:`EvalMemo`; already-evaluated points are served from
        it and fresh successful outcomes are stored into it.
    """

    def __init__(
        self,
        runner: Runner,
        processes: Optional[int] = None,
        base_seed: Optional[int] = None,
        seed_param: str = "seed",
        capture_telemetry: bool = False,
        pool: Optional[WarmPool] = None,
        memo: Optional[EvalMemo] = None,
        **axes: Sequence[Any],
    ) -> None:
        super().__init__(runner, **axes)
        if processes is not None and processes < 0:
            raise ValueError("processes must be >= 0")
        if pool is not None and processes is not None:
            raise ValueError("pass either a warm pool or a process count, not both")
        if base_seed is not None and seed_param in axes:
            raise ValueError(
                "axis {!r} collides with the injected seed parameter".format(seed_param)
            )
        self.processes = processes
        self.base_seed = base_seed
        self.seed_param = seed_param
        self.capture_telemetry = capture_telemetry
        self.pool = pool
        self.memo = memo
        #: Per-point telemetry snapshots in grid order (when captured).
        self.telemetry: List[Optional[Dict[str, object]]] = []

    # -- grid construction --------------------------------------------------

    def grid(self) -> List[Dict[str, Any]]:
        """Every point's parameters in grid (axis) order, seeds included."""
        names = list(self.axes)
        points = []
        for combo in itertools.product(*(self.axes[name] for name in names)):
            params = dict(zip(names, combo))
            if self.base_seed is not None:
                params[self.seed_param] = derive_seed(self.base_seed, params)
            points.append(params)
        return points

    # -- execution -----------------------------------------------------------

    def run(self, progress: Callable[[Dict[str, Any]], None] = None) -> "ParallelSweep":
        """Execute the grid; results merge back in grid order.

        ``progress`` fires once per point *after* it completes and its
        result is merged — so a callback may read ``sweep.points[-1]``
        — in grid order (``imap`` delivers lazily but in input order).
        On a worker failure every earlier grid point's result is already
        in :attr:`points`; the failing point raises
        :class:`SweepPointError`.
        """
        grid = self.grid()

        # Serve memo hits without touching a worker; only misses become
        # payloads.  The memo key covers runner + params (seed included)
        # + the telemetry flag — everything an outcome is a function of.
        keys: List[Optional[str]] = []
        cached: List[Optional[Any]] = []
        pending = []
        for params in grid:
            key = None
            outcome = None
            if self.memo is not None:
                key = EvalMemo.key_for(self.runner, params, self.capture_telemetry)
                outcome = self.memo.get(key)
            keys.append(key)
            cached.append(outcome)
            if outcome is None:
                pending.append((self.runner, params, self.capture_telemetry))

        # chunksize=1 keeps worker assignment irrelevant to results:
        # imap yields outcomes in payload order no matter which worker
        # ran what (and lazily, so progress tracks completion), and
        # seeds depend only on the params.
        processes = self.processes
        if processes is None and self.pool is None:
            processes = min(len(pending), os.cpu_count() or 1)

        def consume(fresh: Iterator[Any]) -> None:
            self.points = []
            self.telemetry = []
            for params, key, hit in zip(grid, keys, cached):
                outcome = hit if hit is not None else next(fresh)
                if outcome[0] == "error":
                    raise SweepPointError(params, outcome[1], outcome[2])
                if hit is None and self.memo is not None and key is not None:
                    self.memo.put(key, outcome)
                self.points.append(SweepPoint(params=params, result=outcome[1]))
                self.telemetry.append(outcome[2])
                if progress is not None:
                    progress(params)

        if not pending:
            consume(iter(()))
        elif self.pool is not None:
            consume(self.pool.imap(_run_point, pending))
        elif processes == 0:
            # Inline: map() is lazy, so evaluation still interleaves
            # with the merge loop — bit-identical to a pool of one.
            consume(map(_run_point, pending))
        else:
            with multiprocessing.Pool(processes=processes) as fresh_pool:
                consume(fresh_pool.imap(_run_point, pending, chunksize=1))
        return self
