"""Parallel cartesian sweeps over a ``multiprocessing`` pool.

Figure regeneration is embarrassingly parallel — every sweep point is an
independent fixed-seed simulation — so :class:`ParallelSweep` fans the
grid out over worker processes while keeping the three properties the
serial :class:`~repro.harness.sweep.Sweep` guarantees:

- **Deterministic seeds.**  Each point's seed is derived by hashing the
  base seed together with the point's (sorted) parameters, so it depends
  on *what* the point is, never on which worker ran it or in what order
  points completed.
- **Deterministic merge.**  Results, telemetry snapshots, and recorder
  outputs come back in grid (axis) order regardless of completion order
  — ``Pool.map`` preserves input order, and the grid is built the same
  way ``Sweep.run`` iterates it.
- **Attributable failures.**  A worker that raises doesn't poison the
  pool silently: the failing point's parameters travel back with the
  traceback and surface as a :class:`SweepPointError`.

Runners must be module-level callables (the pool pickles them) and must
take all their randomness from the injected seed parameter.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.harness.sweep import Sweep, SweepPoint
from repro.telemetry import registry as _telemetry

#: The experiment body: keyword parameters in, any (picklable) result out.
Runner = Callable[..., Any]


class SweepPointError(RuntimeError):
    """One sweep point failed in a worker; carries the point's params."""

    def __init__(self, params: Dict[str, Any], cause: str, worker_traceback: str) -> None:
        super().__init__(
            "sweep point {!r} failed: {}\n--- worker traceback ---\n{}".format(
                params, cause, worker_traceback
            )
        )
        self.params = dict(params)
        self.cause = cause
        self.worker_traceback = worker_traceback


def derive_seed(base_seed: int, params: Dict[str, Any]) -> int:
    """A 63-bit seed from ``base_seed`` and a point's parameters.

    Hashing the *sorted* parameter items makes the seed a pure function
    of the point's identity: reordering axes, adding unrelated points,
    resizing the pool, or changing worker assignment cannot change it.
    """
    canonical = "{}|{}".format(
        base_seed, sorted((str(k), repr(v)) for k, v in params.items())
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _run_point(payload):
    """Worker body: run one point, isolating its telemetry registry.

    Module-level so the pool can pickle it.  Returns a tagged tuple
    rather than raising: exceptions crossing process boundaries lose
    their tracebacks, so the traceback is stringified here and re-raised
    as :class:`SweepPointError` in the parent.
    """
    runner, params, capture_telemetry = payload
    _telemetry.reset()
    try:
        result = runner(**params)
    except Exception as exc:  # noqa: BLE001 - re-raised, attributed, in the parent
        return ("error", "{}: {}".format(type(exc).__name__, exc), traceback.format_exc())
    snapshot = _telemetry.get_registry().snapshot() if capture_telemetry else None
    return ("ok", result, snapshot)


class ParallelSweep(Sweep):
    """A cartesian sweep fanned out over a ``multiprocessing`` pool.

    Parameters
    ----------
    runner:
        Module-level callable; receives one keyword per axis plus the
        injected seed parameter.
    processes:
        Pool size.  ``0`` runs inline (no pool — bit-identical to what a
        pool of one produces, useful under profilers and debuggers);
        ``None`` uses the machine's CPU count, capped at the grid size.
    base_seed:
        Root of per-point seed derivation.  ``None`` disables seed
        injection (the runner manages its own determinism).
    seed_param:
        Keyword the derived seed is injected under.
    capture_telemetry:
        When True, each worker's metric-registry snapshot for its point
        is collected into :attr:`telemetry` (grid order).
    """

    def __init__(
        self,
        runner: Runner,
        processes: Optional[int] = None,
        base_seed: Optional[int] = None,
        seed_param: str = "seed",
        capture_telemetry: bool = False,
        **axes: Sequence[Any],
    ) -> None:
        super().__init__(runner, **axes)
        if processes is not None and processes < 0:
            raise ValueError("processes must be >= 0")
        if base_seed is not None and seed_param in axes:
            raise ValueError(
                "axis {!r} collides with the injected seed parameter".format(seed_param)
            )
        self.processes = processes
        self.base_seed = base_seed
        self.seed_param = seed_param
        self.capture_telemetry = capture_telemetry
        #: Per-point telemetry snapshots in grid order (when captured).
        self.telemetry: List[Optional[Dict[str, object]]] = []

    # -- grid construction --------------------------------------------------

    def grid(self) -> List[Dict[str, Any]]:
        """Every point's parameters in grid (axis) order, seeds included."""
        names = list(self.axes)
        points = []
        for combo in itertools.product(*(self.axes[name] for name in names)):
            params = dict(zip(names, combo))
            if self.base_seed is not None:
                params[self.seed_param] = derive_seed(self.base_seed, params)
            points.append(params)
        return points

    # -- execution -----------------------------------------------------------

    def run(self, progress: Callable[[Dict[str, Any]], None] = None) -> "ParallelSweep":
        """Execute the grid; results merge back in grid order."""
        grid = self.grid()
        if progress is not None:
            for params in grid:
                progress(params)
        payloads = [(self.runner, params, self.capture_telemetry) for params in grid]

        processes = self.processes
        if processes is None:
            processes = min(len(grid), os.cpu_count() or 1)
        if processes == 0:
            outcomes = [_run_point(payload) for payload in payloads]
        else:
            # chunksize=1 keeps worker assignment irrelevant to results:
            # Pool.map returns outcomes in payload order no matter which
            # worker ran what, and seeds depend only on the params.
            with multiprocessing.Pool(processes=processes) as pool:
                outcomes = pool.map(_run_point, payloads, chunksize=1)

        self.points = []
        self.telemetry = []
        for params, outcome in zip(grid, outcomes):
            if outcome[0] == "error":
                raise SweepPointError(params, outcome[1], outcome[2])
            self.points.append(SweepPoint(params=params, result=outcome[1]))
            self.telemetry.append(outcome[2])
        return self
