"""Periodic time-series sampling of simulation state.

A :class:`Recorder` samples named gauges on a fixed period and exposes
the series for analysis — queue depths, CPU utilization, balances —
whatever the probes return.  Used by experiments that look at dynamics
rather than end-of-run aggregates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.engine import Environment

#: A gauge returns the current value of some quantity.
Gauge = Callable[[], float]


class Recorder:
    """Samples a set of gauges every ``period_s`` of simulated time."""

    def __init__(self, env: Environment, period_s: float = 0.1) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.env = env
        self.period_s = period_s
        self._gauges: Dict[str, Gauge] = {}
        self._series: Dict[str, List[Tuple[float, float]]] = {}
        self._proc = env.process(self._loop())

    def add_gauge(self, name: str, gauge: Gauge) -> None:
        """Register a gauge; sampling starts at the next tick."""
        if name in self._gauges:
            raise RuntimeError("gauge {!r} already registered".format(name))
        self._gauges[name] = gauge
        self._series[name] = []

    def series(self, name: str) -> List[Tuple[float, float]]:
        """The (time, value) samples of one gauge."""
        return self._series[name]

    def names(self) -> List[str]:
        """Registered gauge names."""
        return list(self._gauges)

    def latest(self, name: str) -> float:
        """Most recent sample of a gauge (0.0 before any sample)."""
        samples = self._series[name]
        return samples[-1][1] if samples else 0.0

    def mean(self, name: str, start_s: float = 0.0) -> float:
        """Mean of a gauge's samples taken at or after ``start_s``."""
        values = [v for t, v in self._series[name] if t >= start_s]
        return sum(values) / len(values) if values else 0.0

    def maximum(self, name: str, start_s: float = 0.0) -> float:
        """Maximum of a gauge's samples taken at or after ``start_s``."""
        values = [v for t, v in self._series[name] if t >= start_s]
        return max(values) if values else 0.0

    def _loop(self):
        while True:
            yield self.env.timeout(self.period_s)
            now = self.env.now
            for name, gauge in self._gauges.items():
                self._series[name].append((now, float(gauge())))
