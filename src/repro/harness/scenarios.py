"""The scenario matrix: topology × workload × faults in one sweep.

Each scenario drives one :class:`~repro.core.simulation.GageCluster`
(flow fidelity) with an adversarial workload from
:mod:`repro.workload.adversarial` on a named topology, optionally
injects a fault mid-run, and reports the conforming subscribers'
guarantee deviation — the Figure 3 metric — plus service counts.

``run_matrix`` fans the full cross product out over
:class:`~repro.harness.parallel.ParallelSweep` with deterministic
per-point seeds; ``scripts/scenario_matrix.py`` is the CLI.

The module-level ``run_scenario`` is the sweep runner (it must be
picklable for the worker pool).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import GageConfig
from repro.core.metrics import deviation_from_reservation_vectors
from repro.core.simulation import GageCluster
from repro.core.subscriber import Subscriber
from repro.core.topology import (
    ClusterTopology,
    LinkSpec,
    NodeSpec,
    SwitchSpec,
    grps_capacity,
)
from repro.harness.parallel import ParallelSweep
from repro.sim.engine import Environment
from repro.workload.adversarial import SCENARIOS, build_trace, site_files_for
from repro.workload.topology import NodeClass, TopologyGenerator

__all__ = [
    "FIG3_BOUND_PCT",
    "TOPOLOGIES",
    "WORKLOADS",
    "FAULTS",
    "mixed_2tier_topology",
    "generated_topology",
    "run_scenario",
    "run_matrix",
    "format_report",
]

#: Figure 3's guarantee bound: < 8% deviation at intervals >= 4 s.
FIG3_BOUND_PCT = 8.0

#: One 6 KB page in generic requests (network-dominated; §4.1).
GRPS_PER_PAGE = 3.07

_MiB = 1024 * 1024


def mixed_2tier_topology() -> ClusterTopology:
    """The bench topology: 2 switch tiers, 2 speed classes, 2 link tiers.

    Three fast nodes (2× CPU, fast links) on the root switch, five slow
    nodes (0.6× CPU, 25 Mbps links) on a leaf switch behind a GigE
    uplink.  Caches are sized so steady-state runs stay warm and the
    deviation metric measures scheduling, not disk faulting.
    """
    fast = NodeSpec(
        kind="fast",
        cpu_speed=2.0,
        cache_bytes=128 * _MiB,
        link=LinkSpec(bandwidth_bps=100e6, latency_s=20e-6),
        switch=0,
    )
    slow = NodeSpec(
        kind="slow",
        cpu_speed=0.6,
        cache_bytes=64 * _MiB,
        link=LinkSpec(bandwidth_bps=25e6, latency_s=100e-6),
        switch=1,
    )
    return ClusterTopology(
        nodes=(fast,) * 3 + (slow,) * 5,
        switches=(
            SwitchSpec(),
            SwitchSpec(uplink=LinkSpec(bandwidth_bps=1e9, latency_s=5e-6)),
        ),
    )


def generated_topology() -> ClusterTopology:
    """A seeded :class:`TopologyGenerator` cluster (fixed seed 7)."""
    generator = TopologyGenerator()
    generator.set_node_statistics(
        8,
        {"fast": 25.0, "standard": 50.0, "slow": 25.0},
        classes={
            "fast": NodeClass("fast", cpu_speed=2.0, cache_bytes=128 * _MiB),
            "standard": NodeClass("standard", cpu_speed=1.0, cache_bytes=64 * _MiB),
            "slow": NodeClass("slow", cpu_speed=0.6, cache_bytes=64 * _MiB),
        },
    )
    generator.set_link_statistics(
        100e6,
        var_bandwidth_bps=10e6,
        slow_link_fraction=0.25,
        slow_link_bandwidth_bps=25e6,
    )
    generator.set_fabric(2)
    return generator.generate(seed=7)


TOPOLOGIES: Dict[str, Callable[[], ClusterTopology]] = {
    "homogeneous": lambda: ClusterTopology.homogeneous(8, cache_bytes=64 * _MiB),
    "mixed_2tier": mixed_2tier_topology,
    "generated": generated_topology,
}

WORKLOADS: Tuple[str, ...] = SCENARIOS

FAULTS: Tuple[str, ...] = ("none", "crash", "slow")


def _arm_fault(cluster: GageCluster, fault: str, duration_s: float) -> None:
    """Schedule the fault axis against a built cluster.

    ``crash`` kills the lowest-capacity node at 40% of the run (its
    reservations must redistribute onto the survivors); ``slow``
    degrades the highest-capacity node to half speed — the gray-failure
    counterpart.
    """
    if fault == "none":
        return
    capacities = cluster.topology.capacities()
    by_grps = sorted(
        range(len(capacities)), key=lambda index: grps_capacity(capacities[index])
    )
    if fault == "crash":
        target = "rpn{}".format(by_grps[0])
        cluster.env.call_later(0.4 * duration_s, cluster.crash, target)
    elif fault == "slow":
        target = "rpn{}".format(by_grps[-1])
        cluster.env.call_later(0.4 * duration_s, cluster.slow, target, 0.5)
    else:
        raise ValueError("unknown fault {!r}; pick one of {}".format(fault, FAULTS))


def run_scenario(
    topology: str = "mixed_2tier",
    workload: str = "misbehave",
    fault: str = "none",
    seed: int = 0,
    duration_s: float = 20.0,
    warmup_s: float = 4.0,
    interval_s: float = 4.0,
    reservation_grps: float = 150.0,
    num_subscribers: int = 4,
    overdrive: float = 4.0,
) -> Dict[str, object]:
    """One cell of the matrix; returns a plain, picklable report dict.

    Subscribers offer 1.5× their reservation-sustainable rate (fig-3
    style: backlogged, spare allocation off, so delivered usage should
    pin at the reservation) and the workload scenario perturbs that —
    in ``misbehave`` the last subscriber offers ``overdrive``× instead.
    Deviation is measured over the *conforming* subscribers only.
    """
    if topology not in TOPOLOGIES:
        raise ValueError(
            "unknown topology {!r}; pick one of {}".format(
                topology, sorted(TOPOLOGIES)
            )
        )
    # Short smoke runs: give the measurement at least one complete
    # interval window even if that means trimming the warmup.
    warmup_s = min(warmup_s, max(0.0, duration_s - interval_s))
    topo = TOPOLOGIES[topology]()
    names = ["site{}".format(index + 1) for index in range(num_subscribers)]
    subscribers = [
        Subscriber(name, reservation_grps, queue_capacity=2048) for name in names
    ]
    config = GageConfig(spare_policy="none")
    rates = {name: reservation_grps / GRPS_PER_PAGE * 1.5 for name in names}
    records, misbehavers = build_trace(
        workload,
        rates,
        duration_s,
        seed=seed,
        file_bytes=6 * 1024,
        misbehave_overdrive=overdrive,
    )
    env = Environment()
    cluster = GageCluster(
        env,
        subscribers,
        site_files_for(names, file_bytes=6 * 1024),
        config=config,
        fidelity="flow",
        topology=topo,
    )
    _arm_fault(cluster, fault, duration_s)
    cluster.load_trace(records)
    cluster.run(duration_s)

    events: Dict[str, List[Tuple[float, object]]] = {name: [] for name in names}
    for at, name, usage in cluster.rdn.accounting.usage_log:
        events[name].append((at, usage))
    conforming = [name for name in names if name not in misbehavers]
    reservations = {name: reservation_grps for name in conforming}
    per_host: Dict[str, float] = {
        name: deviation_from_reservation_vectors(
            {name: events[name]},  # type: ignore[dict-item]
            reservations,
            warmup_s,
            duration_s,
            interval_s,
            generic=config.generic_request,
        )
        for name in conforming
    }
    served = {
        name: sum(1 for _at, host in cluster.completions if host == name)
        for name in names
    }
    arrived = {
        name: sum(1 for _at, host, _ok in cluster.arrivals if host == name)
        for name in names
    }
    max_deviation = max(per_host.values()) if per_host else 0.0
    return {
        "topology": topology,
        "workload": workload,
        "fault": fault,
        "seed": seed,
        "num_rpns": topo.num_rpns,
        "total_capacity_grps": topo.total_capacity_grps(),
        "misbehavers": list(misbehavers),
        "deviation_pct_by_host": per_host,
        "max_conforming_deviation_pct": max_deviation,
        "bound_pct": FIG3_BOUND_PCT,
        "within_bound": max_deviation <= FIG3_BOUND_PCT,
        "served": served,
        "arrived": arrived,
    }


def run_matrix(
    topologies: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    faults: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    duration_s: float = 20.0,
    processes: int = 0,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> List[Dict[str, object]]:
    """The full cross product, one report dict per scenario, grid order."""
    sweep = ParallelSweep(
        run_scenario,
        processes=processes,
        base_seed=base_seed,
        topology=list(topologies or sorted(TOPOLOGIES)),
        workload=list(workloads or WORKLOADS),
        fault=list(faults or FAULTS),
        duration_s=[duration_s],
    )
    callback = None
    if progress is not None:

        def callback(params: Dict[str, object]) -> None:
            assert progress is not None
            progress(sweep.points[-1].result)

    sweep.run(progress=callback)
    return [point.result for point in sweep.points]


def format_report(results: Sequence[Dict[str, object]]) -> str:
    """A fixed-width per-scenario table with the guarantee verdict."""
    header = "{:<14} {:<18} {:<8} {:>10} {:>8}  {}".format(
        "topology", "workload", "fault", "max dev %", "bound %", "verdict"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        deviation = float(result["max_conforming_deviation_pct"])  # type: ignore[arg-type]
        lines.append(
            "{:<14} {:<18} {:<8} {:>10.2f} {:>8.1f}  {}".format(
                str(result["topology"]),
                str(result["workload"]),
                str(result["fault"]),
                deviation,
                float(result["bound_pct"]),  # type: ignore[arg-type]
                "ok" if result["within_bound"] else "VIOLATED",
            )
        )
    return "\n".join(lines)
