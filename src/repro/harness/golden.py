"""Golden-digest determinism checks for the simulation hot path.

The engine refactors this repo performs (slotted events, callback heap
items, batched resource bookkeeping) are only admissible if a fixed-seed
run produces *identical accounting output* before and after.  This module
defines the canonical small scenario and its digest so the guarantee is
enforceable by a committed hash instead of by review.

The digest covers everything the paper's evaluation reads out of a run:
the RDN-observed accounting stream (``accounting.usage_log``), the
completion log, and per-request latencies.  Entries are serialized with
``repr`` (shortest round-trip float form, so any numeric change — even in
the last ulp — changes the digest) and canonically sorted, which makes
the digest insensitive to the one simulator-internal freedom the engine
does not pin down: the relative order of log appends that happen at the
exact same simulated instant on different nodes.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.core.config import GageConfig
from repro.core.simulation import GageCluster
from repro.core.subscriber import Subscriber
from repro.sim.engine import Environment
from repro.workload.synthetic import SyntheticWorkload

#: Bump only when the golden scenario itself (not the engine) changes.
SCENARIO = "golden-fig3/1"


def golden_fig3_cluster(duration_s: float = 3.0, seed: int = 7) -> GageCluster:
    """Run the canonical small Figure-3-style scenario and return the cluster.

    Two subscribers driven above reservation with spare allocation off, a
    100 ms accounting cycle, two RPNs, flow fidelity — small enough for a
    test, busy enough to exercise the CPU slicer, the disk channel, the
    credit scheduler, and the accounting walk.
    """
    env = Environment()
    names = ["site1", "site2"]
    subscribers = [Subscriber(name, 120.0, queue_capacity=256) for name in names]
    config = GageConfig(accounting_cycle_s=0.1, spare_policy="none")
    workload = SyntheticWorkload(
        rates={name: 60.0 for name in names},
        duration_s=duration_s,
        file_bytes=6 * 1024,
        arrival="poisson",
        seed=seed,
    )
    site_files = {name: workload.site_files(name) for name in names}
    cluster = GageCluster(
        env,
        subscribers,
        site_files,
        num_rpns=2,
        config=config,
        fidelity="flow",
        rpn_cache_bytes=8 * 1024 * 1024,
    )
    cluster.load_trace(workload.generate())
    cluster.run(duration_s)
    return cluster


def accounting_lines(cluster: GageCluster) -> List[str]:
    """The canonical serialized accounting output of a finished run."""
    lines = []
    for at, name, usage in cluster.rdn.accounting.usage_log:
        lines.append(
            "usage {!r} {} {!r} {!r} {!r}".format(
                at, name, usage.cpu_s, usage.disk_s, usage.net_bytes
            )
        )
    for at, host in cluster.completions:
        lines.append("done {!r} {}".format(at, host))
    for at, host, latency in cluster.latencies:
        lines.append("lat {!r} {} {!r}".format(at, host, latency))
    for at, host, ok in cluster.arrivals:
        lines.append("arr {!r} {} {}".format(at, host, ok))
    lines.sort()
    return lines


def accounting_digest(cluster: GageCluster) -> str:
    """SHA-256 over the canonical accounting output of a finished run."""
    payload = "\n".join([SCENARIO] + accounting_lines(cluster)).encode()
    return hashlib.sha256(payload).hexdigest()


def golden_fig3_digest(duration_s: float = 3.0, seed: int = 7) -> str:
    """Digest of the canonical scenario — what the golden test compares."""
    return accounting_digest(golden_fig3_cluster(duration_s=duration_s, seed=seed))
