"""Cartesian parameter sweeps with structured results.

The evaluation's figures are sweeps (accounting cycle × averaging
interval, cluster size × dispatcher); :class:`Sweep` runs a callable over
the cartesian product of named parameter lists and collects results in a
queryable grid, so benchmarks and notebooks don't hand-roll nested loops.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

#: The experiment body: keyword parameters in, any result out.
Runner = Callable[..., Any]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the sweep grid."""

    params: Dict[str, Any]
    result: Any


class Sweep:
    """A cartesian sweep of a runner over named parameter axes.

    Example::

        sweep = Sweep(run_one, cycle_s=[0.05, 0.5], rpns=[1, 4, 8])
        sweep.run()
        sweep.result(cycle_s=0.5, rpns=8)
        sweep.column("rpns", cycle_s=0.5)   # [(1, r), (4, r), (8, r)]
    """

    def __init__(self, runner: Runner, **axes: Sequence[Any]) -> None:
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        for name, values in axes.items():
            if not values:
                raise ValueError("axis {!r} is empty".format(name))
        self.runner = runner
        self.axes: Dict[str, List[Any]] = {
            name: list(values) for name, values in axes.items()
        }
        self.points: List[SweepPoint] = []

    def __len__(self) -> int:
        return len(self.points)

    @property
    def size(self) -> int:
        """Number of grid cells the sweep will run."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def run(self, progress: Callable[[Dict[str, Any]], None] = None) -> "Sweep":
        """Execute the runner over the whole grid (in axis order)."""
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[name] for name in names)):
            params = dict(zip(names, combo))
            if progress is not None:
                progress(params)
            self.points.append(SweepPoint(params=params, result=self.runner(**params)))
        return self

    # -- queries -----------------------------------------------------------

    def _match(self, point: SweepPoint, fixed: Dict[str, Any]) -> bool:
        return all(point.params.get(name) == value for name, value in fixed.items())

    def result(self, **fixed: Any) -> Any:
        """The single result matching ``fixed`` (KeyError if not exactly 1)."""
        matches = [p for p in self.points if self._match(p, fixed)]
        if len(matches) != 1:
            raise KeyError(
                "{} results match {!r}".format(len(matches), fixed)
            )
        return matches[0].result

    def column(self, axis: str, **fixed: Any) -> List[Tuple[Any, Any]]:
        """(axis value, result) pairs along one axis with others fixed."""
        if axis not in self.axes:
            raise KeyError("unknown axis {!r}".format(axis))
        pairs = []
        for point in self.points:
            if self._match(point, fixed):
                pairs.append((point.params[axis], point.result))
        return pairs

    def map_results(self, fn: Callable[[Any], Any]) -> "Sweep":
        """A new sweep view with ``fn`` applied to every result."""
        mapped = Sweep(self.runner, **self.axes)
        mapped.points = [
            SweepPoint(params=p.params, result=fn(p.result)) for p in self.points
        ]
        return mapped
