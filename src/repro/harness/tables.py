"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import List, Sequence


def format_cell(value: object) -> str:
    """Render one cell: floats get one decimal, everything else str()."""
    if isinstance(value, float):
        return "{:.1f}".format(value)
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """An aligned monospace table, optionally titled."""
    rendered: List[List[str]] = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)
