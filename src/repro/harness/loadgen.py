"""Closed- and open-loop HTTP load generation for the proxy data plane.

Two driving disciplines, after the request-cloning reproducibility report
(Pellegrini 2020, PAPERS.md):

- **closed loop** — a fixed population of clients, each holding one
  (keep-alive) connection and issuing its next request only after the
  previous response fully arrived.  Throughput is ``population /
  latency``; this is the discipline the ≥2× data-plane acceptance
  criterion is measured under.
- **open loop** — requests fire at a fixed rate on independent
  connections regardless of completions, so queueing delay shows up as
  latency rather than reduced offered load.

Both return a :class:`LoadResult` with RPS and latency quantiles.
:class:`ProxyRig` assembles the full in-process localhost deployment
(back ends + Gage proxy) that ``benchmarks/test_proxy_throughput.py``
and ``scripts/profile_run.py`` drive.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.harness.benchstore import percentile

#: Response-body read chunk, bytes.
_READ_CHUNK = 64 * 1024


@dataclass
class LoadResult:
    """Outcome of one load-generation run."""

    #: Requests that completed with a 200 response and a full body.
    completed: int = 0
    #: Requests that errored (connect/read failure or non-200 status).
    errors: int = 0
    #: TCP connections the generator had to (re)open.
    connects: int = 0
    bytes_received: int = 0
    duration_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    #: status code -> count over every finished exchange.
    status_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def rps(self) -> float:
        """Completed requests per second of wall time."""
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def latency_s(self, quantile: float) -> float:
        """A latency quantile (0..1) over completed requests (0 if none)."""
        if not self.latencies_s:
            return 0.0
        return percentile(self.latencies_s, quantile)

    def _note_status(self, status: int) -> None:
        self.status_counts[status] = self.status_counts.get(status, 0) + 1


def _request_bytes(path: str, site: str, keep_alive: bool) -> bytes:
    connection = "keep-alive" if keep_alive else "close"
    return (
        "GET {} HTTP/1.1\r\nhost: {}\r\nconnection: {}\r\n\r\n".format(
            path, site, connection
        ).encode("latin-1")
    )


async def _read_body(reader: asyncio.StreamReader, nbytes: int) -> int:
    remaining = nbytes
    while remaining > 0:
        chunk = await reader.read(min(_READ_CHUNK, remaining))
        if not chunk:
            raise ConnectionError("short response body")
        remaining -= len(chunk)
    return nbytes


async def _client_worker(
    host: str,
    port: int,
    site: str,
    path: str,
    keep_alive: bool,
    result: LoadResult,
    claim: Callable[[], bool],
) -> None:
    """One closed-loop client: request, full response, repeat.

    ``claim`` hands out request budget; a failed exchange consumes its
    claim (errors are part of the measured workload).  A server that
    answers ``connection: close`` costs a reconnect on the next round —
    exactly how a pre-keep-alive proxy is measured under the same load.
    """
    from repro.proxy.http import HTTPError, read_response_head

    request = _request_bytes(path, site, keep_alive)
    loop = asyncio.get_event_loop()
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None
    try:
        while claim():
            started = loop.time()
            try:
                if writer is None:
                    reader, writer = await asyncio.open_connection(host, port)
                    result.connects += 1
                writer.write(request)
                await writer.drain()
                head = await read_response_head(reader)
                result.bytes_received += await _read_body(reader, head.content_length)
                result._note_status(head.status)
                if head.status == 200:
                    result.completed += 1
                    result.latencies_s.append(loop.time() - started)
                else:
                    result.errors += 1
                server_closes = head.headers.get("connection", "").lower() == "close"
                if not keep_alive or server_closes:
                    writer.close()
                    reader = writer = None
            except (OSError, HTTPError, asyncio.IncompleteReadError, ConnectionError):
                result.errors += 1
                if writer is not None:
                    writer.close()
                reader = writer = None
    finally:
        if writer is not None:
            writer.close()


async def closed_loop(
    host: str,
    port: int,
    *,
    site: str,
    path: str = "/index.html",
    concurrency: int = 16,
    total_requests: Optional[int] = None,
    duration_s: Optional[float] = None,
    keep_alive: bool = True,
) -> LoadResult:
    """Drive a closed-loop workload; stop on a request budget or deadline."""
    if (total_requests is None) == (duration_s is None):
        raise ValueError("specify exactly one of total_requests / duration_s")
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    result = LoadResult()
    loop = asyncio.get_event_loop()
    started = loop.time()
    budget = [total_requests if total_requests is not None else 0]
    deadline = started + duration_s if duration_s is not None else None

    def claim() -> bool:
        if deadline is not None:
            return loop.time() < deadline
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return True

    workers = [
        asyncio.ensure_future(
            _client_worker(host, port, site, path, keep_alive, result, claim)
        )
        for _ in range(concurrency)
    ]
    await asyncio.gather(*workers)
    result.duration_s = loop.time() - started
    return result


async def _one_shot(
    host: str, port: int, site: str, path: str, result: LoadResult
) -> None:
    """One open-loop request on its own connection."""
    from repro.proxy.http import HTTPError, read_response_head

    loop = asyncio.get_event_loop()
    started = loop.time()
    try:
        reader, writer = await asyncio.open_connection(host, port)
        result.connects += 1
        writer.write(_request_bytes(path, site, keep_alive=False))
        await writer.drain()
        head = await read_response_head(reader)
        result.bytes_received += await _read_body(reader, head.content_length)
        result._note_status(head.status)
        if head.status == 200:
            result.completed += 1
            result.latencies_s.append(loop.time() - started)
        else:
            result.errors += 1
        writer.close()
    except (OSError, HTTPError, asyncio.IncompleteReadError, ConnectionError):
        result.errors += 1


async def open_loop(
    host: str,
    port: int,
    *,
    site: str,
    path: str = "/index.html",
    rate: float,
    duration_s: float,
    drain_s: float = 2.0,
) -> LoadResult:
    """Fire requests at ``rate``/s for ``duration_s``, then drain in-flight."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    result = LoadResult()
    loop = asyncio.get_event_loop()
    started = loop.time()
    period = 1.0 / rate
    tasks: List[asyncio.Task] = []
    next_fire = started
    while next_fire - started < duration_s:
        delay = next_fire - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(_one_shot(host, port, site, path, result))
        )
        next_fire += period
    try:
        await asyncio.wait_for(
            asyncio.gather(*tasks, return_exceptions=True), timeout=drain_s
        )
    except asyncio.TimeoutError:
        for task in tasks:
            if not task.done():
                task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
    result.duration_s = loop.time() - started
    return result


class ProxyRig:
    """The full in-process localhost deployment, ready for load.

    Starts ``num_backends`` :class:`~repro.proxy.backend.BackendServer`
    instances and one :class:`~repro.proxy.frontend.GageProxy` in front,
    with a single high-reservation subscriber so the WRR credit gate
    never throttles the benchmark (the data plane is the system under
    test, not the scheduler).

    ``workers > 1`` swaps the single in-process proxy for a
    :class:`~repro.proxy.workers.WorkerSupervisor` running that many
    ``SO_REUSEPORT`` worker processes behind one shared port — the
    sharded data plane the ``BENCH_proxy_sharded`` suite measures.
    """

    def __init__(
        self,
        *,
        site: str = "bench.example",
        files: Optional[Dict[str, int]] = None,
        num_backends: int = 2,
        reservation_grps: float = 100_000.0,
        queue_capacity: int = 4096,
        time_scale: float = 0.0,
        workers: int = 1,
        config=None,
    ) -> None:
        from repro.core.config import GageConfig

        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.site = site
        self.files = dict(files) if files else {"/index.html": 2048}
        self.num_backends = num_backends
        self.reservation_grps = reservation_grps
        self.queue_capacity = queue_capacity
        self.time_scale = time_scale
        self.workers = workers
        #: A fast scheduling cycle and a wide-open dispatch window: the
        #: data plane is the system under test, so neither dispatch
        #: latency nor the cluster-saturation throttle should gate it.
        self.config = config or GageConfig(
            scheduling_cycle_s=0.002,
            accounting_cycle_s=0.05,
            dispatch_window_s=60.0,
        )
        self.backends = []
        self.proxy = None
        self.supervisor = None
        self.port: Optional[int] = None

    async def start(self) -> int:
        """Start back ends and proxy; returns the proxy's port."""
        from repro.core.subscriber import Subscriber
        from repro.proxy.backend import BackendServer
        from repro.proxy.frontend import GageProxy
        from repro.proxy.workers import WorkerSupervisor

        sites = {self.site: self.files}
        addrs = {}
        for index in range(self.num_backends):
            backend = BackendServer(sites, time_scale=self.time_scale)
            port = await backend.start()
            self.backends.append(backend)
            addrs["backend{}".format(index)] = ("127.0.0.1", port)
        subscriber = Subscriber(
            self.site, self.reservation_grps, queue_capacity=self.queue_capacity
        )
        if self.workers > 1:
            self.supervisor = WorkerSupervisor(
                [subscriber], addrs, config=self.config, workers=self.workers
            )
            self.port = await self.supervisor.start()
        else:
            self.proxy = GageProxy([subscriber], addrs, config=self.config)
            self.port = await self.proxy.start()
        return self.port

    async def stop(self) -> None:
        """Stop the proxy (or worker fleet) and every back end."""
        if self.proxy is not None:
            await self.proxy.stop()
            self.proxy = None
        if self.supervisor is not None:
            await self.supervisor.stop()
            self.supervisor = None
        for backend in self.backends:
            await backend.stop()
        self.backends = []
