"""The RDN CPU cost/utilization model (§4.3 of the paper).

The paper projects the front end's capacity from measured per-operation
costs (its Table 3) plus interrupt handling, whose per-packet cost rises
sharply when the network subsystem saturates ("the utilization leap is
due to the overloaded network subsystem, which results in an increase in
the interrupt handling time").

This model reproduces that curve analytically from the same constants:
a fixed per-request operation cost (one connection setup, two
classifications, bridged-packet forwarding) plus a per-packet interrupt
cost with an exponential escalation term near the packet-rate saturation
point.  The "intelligent NIC" projection of §4.3 corresponds to zeroing
the interrupt term, which is exactly how the paper reaches its
14,000-15,000 requests/sec estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class RDNCostModel:
    """Per-operation RDN costs; defaults are the paper's Table 3 values.

    Attributes
    ----------
    connection_setup_us:
        First-leg handshake emulation per new connection (29.3 µs).
    classification_us:
        One packet classification (3.0 µs); charged twice per request
        (the SYN and the URL packet).
    forwarding_us:
        One connection-table lookup + L2 forward (7.0 µs); charged for
        every client packet bridged to the RPN.
    bridged_packets_per_request:
        Client packets bridged after dispatch (URL + data ACKs + FIN).
    interrupt_us:
        Per-received-frame interrupt handling cost at low load.
    packets_per_request:
        Frames the RDN receives per request (handshake + ACKs + FIN).
    livelock_pps / livelock_scale_pps:
        Packet rate where interrupt costs start to escalate and how fast
        the exponential grows.
    """

    connection_setup_us: float = 29.3
    classification_us: float = 3.0
    forwarding_us: float = 7.0
    bridged_packets_per_request: float = 5.0
    interrupt_us: float = 13.0
    packets_per_request: float = 9.0
    livelock_pps: float = 44_000.0
    livelock_scale_pps: float = 1_000.0

    def operations_us_per_request(self) -> float:
        """CPU time of the Gage operations for one request, µs."""
        return (
            self.connection_setup_us
            + 2.0 * self.classification_us
            + self.forwarding_us * self.bridged_packets_per_request
        )

    def interrupt_us_per_packet(self, packet_rate_pps: float) -> float:
        """Per-frame interrupt cost at a given packet arrival rate."""
        exponent = (packet_rate_pps - self.livelock_pps) / self.livelock_scale_pps
        # Far past saturation the model is "overloaded" regardless of the
        # exact figure; clamp to keep the bisection numerically safe.
        escalation = math.exp(min(exponent, 50.0))
        return self.interrupt_us * (1.0 + escalation)

    def utilization(self, request_rate_rps: float, intelligent_nic: bool = False) -> float:
        """RDN CPU utilization at a request rate (may exceed 1 ⇒ overload).

        ``intelligent_nic=True`` models §4.3's projection of a NIC with
        its own processor absorbing interrupt handling.
        """
        if request_rate_rps < 0:
            raise ValueError("negative request rate")
        per_request_us = self.operations_us_per_request()
        if not intelligent_nic:
            packet_rate = request_rate_rps * self.packets_per_request
            per_request_us += self.packets_per_request * self.interrupt_us_per_packet(
                packet_rate
            )
        return request_rate_rps * per_request_us / 1e6

    def saturation_rate_rps(self, intelligent_nic: bool = False) -> float:
        """The request rate at which utilization reaches 1.0 (bisection)."""
        low, high = 0.0, 1e6
        for _ in range(80):
            mid = (low + high) / 2
            if self.utilization(mid, intelligent_nic=intelligent_nic) < 1.0:
                low = mid
            else:
                high = mid
        return (low + high) / 2

    def curve(
        self, rates: List[float], intelligent_nic: bool = False
    ) -> List[Tuple[float, float]]:
        """(rate, utilization) series for plotting the §4.3 figure."""
        return [
            (rate, self.utilization(rate, intelligent_nic=intelligent_nic))
            for rate in rates
        ]

    def cpu_seconds_for_ops(self, ops) -> float:
        """Modeled RDN CPU time for a run's operation counters.

        ``ops`` is a :class:`repro.core.rdn.RDNOpCounters`; the result is
        what the front end's CPU would have spent on the run, at the
        paper's per-operation costs (interrupts at the low-load rate —
        livelock analysis uses :meth:`utilization` instead).
        """
        return (
            ops.connection_setups * self.connection_setup_us
            + ops.classifications * self.classification_us
            + ops.forwards * self.forwarding_us
            + ops.packets * self.interrupt_us
        ) / 1e6
