"""Seeded black-box search over Gage's tunable registry (ROADMAP item 5).

Two optimizers — pure random search and a (µ+λ) evolutionary strategy —
propose candidate configurations from a :class:`SearchSpace` (a subset
of :mod:`repro.core.tunables`), evaluate them through a
:class:`~repro.harness.parallel.ParallelSweep` running one of two
simulation suites, and minimize a composite :class:`Objective`:

    score = w_dev · deviation_pct + w_p95 · p95_ms + w_under · underutil_pct

- ``deviation_pct`` — worst-case guarantee deviation on the Figure 3
  scenario (fidelity to the paper's reservations);
- ``p95_ms`` — client-observed p95 latency at sustainable load
  (responsiveness);
- ``underutil_pct`` — percent of admitted work left unserved
  (efficiency).

Determinism contract (tested in ``tests/harness/test_search.py``): all
randomness flows from one ``random.Random(seed)``, each evaluation's
simulation seed derives from the candidate's parameter hash
(:func:`~repro.harness.parallel.derive_seed`), and evaluations are
memoized on that same hash — so the same seed + budget reproduces the
identical trajectory, and resuming from a JSONL checkpoint (which
preloads the memo and replays the loop through instant cache hits)
matches an uninterrupted run exactly.  Candidate generation always
draws the whole batch/generation from the RNG before truncating to the
remaining budget, so the candidate sequence is budget-independent and a
resume may even *extend* the budget.

Suite evaluators are module-level (the worker pool pickles them) and
return plain-float metric dicts, which JSON round-trips exactly — the
property checkpoint fidelity rests on.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core import tunables
from repro.core.metrics import deviation_from_reservation_vectors
from repro.core.tunables import TunableValue
from repro.harness.charts import line_chart
from repro.harness.parallel import EvalMemo, ParallelSweep, WarmPool

#: One candidate configuration: registry names → values.
Params = Dict[str, TunableValue]

#: One evaluation's output: metric name → plain float.
Metrics = Dict[str, float]

#: A candidate in canonical (hashable, sweep-axis) form.
Point = Tuple[Tuple[str, TunableValue], ...]

#: Checkpoint schema identifier.
CHECKPOINT_SCHEMA = "repro.tune/1"

#: The fig3 deviation leg's averaging interval (s) — the paper's 4 s
#: column, short enough to be meaningful at tuning durations.
DEVIATION_INTERVAL_S = 4.0

#: Warmup excluded from every measurement window (s).
WARMUP_S = 2.0


def canonical_point(params: Mapping[str, TunableValue]) -> Point:
    """``params`` as a sorted, hashable tuple — the sweep-axis value."""
    return tuple(sorted(params.items()))


# ---------------------------------------------------------------------------
# Suite evaluators (module-level: the pool pickles them)
# ---------------------------------------------------------------------------


def _fig3_cluster(
    config_params: Params,
    duration_s: float,
    seed: int,
    rate_factor: float,
    spare_policy: Optional[str] = None,
) -> Tuple[Any, Any]:
    """A Figure-3-shaped cluster run: (cluster, config).

    Four subscribers reserving 150 GRPS each on eight RPNs, constant
    6 KB accesses at ``rate_factor`` × the sustainable request rate
    (one 6 KB page ≈ 3.07 generics).  ``spare_policy`` overrides the
    candidate's own (the deviation leg pins ``"none"`` so delivered
    usage should ideally equal the reservation exactly).
    """
    from repro.core import GageCluster, Subscriber
    from repro.sim import Environment
    from repro.workload import SyntheticWorkload

    merged: Params = dict(config_params)
    if spare_policy is not None:
        merged["spare_policy"] = spare_policy
    config = tunables.config_from_params(merged)

    reservation = 150.0
    names = ["site{}".format(i + 1) for i in range(4)]
    env = Environment()
    subscribers = [Subscriber(name, reservation, queue_capacity=2048) for name in names]
    workload = SyntheticWorkload(
        rates={name: reservation / 3.07 * rate_factor for name in names},
        duration_s=duration_s,
        file_bytes=6 * 1024,
        seed=seed,
    )
    cluster = GageCluster(
        env,
        subscribers,
        {name: workload.site_files(name) for name in names},
        num_rpns=8,
        config=config,
        fidelity="flow",
        rpn_cache_bytes=64 * 1024 * 1024,
    )
    cluster.load_trace(workload.generate())
    cluster.run(duration_s)
    return cluster, config


def _deviation_pct(cluster: Any, config: Any, duration_s: float) -> float:
    """Guarantee deviation (%) from the RDN's observed usage log."""
    reservation = 150.0
    names = ["site{}".format(i + 1) for i in range(4)]
    events: Dict[str, List[Tuple[float, Any]]] = {name: [] for name in names}
    for at, name, usage in cluster.rdn.accounting.usage_log:
        events[name].append((at, usage))
    return float(
        deviation_from_reservation_vectors(
            events,
            {name: reservation for name in names},
            WARMUP_S,
            duration_s,
            DEVIATION_INTERVAL_S,
            generic=config.generic_request,
        )
    )


def _tail_metrics(cluster: Any, start_s: float, duration_s: float) -> Tuple[float, float]:
    """(p95 latency in ms, percent of admitted requests unserved)."""
    from repro.harness.benchstore import percentile

    window = [
        latency for at, _host, latency in cluster.latencies if start_s <= at < duration_s
    ]
    p95_ms = percentile(window, 0.95) * 1000.0 if window else float(duration_s) * 1000.0
    admitted = sum(1 for at, _host, ok in cluster.arrivals if ok and at < duration_s)
    served = len(cluster.completions)
    unserved = 100.0 * (1.0 - served / admitted) if admitted else 0.0
    return float(p95_ms), float(max(0.0, unserved))


def evaluate_fig3(point: Point, duration_s: float, seed: int) -> Metrics:
    """The fig3 suite: guarantee fidelity plus sustainable-load latency.

    Two legs on the Figure 3 cluster shape: an *overdriven* leg (1.5×
    sustainable, spare allocation pinned off) measuring deviation from
    reservation — the paper's Figure 3 quantity — and an *offered-load*
    leg (0.85× sustainable, the candidate's own spare policy) measuring
    p95 latency and unserved work.
    """
    params = dict(point)
    overdriven, config = _fig3_cluster(
        params, duration_s, seed, rate_factor=1.5, spare_policy="none"
    )
    deviation = _deviation_pct(overdriven, config, duration_s)
    offered, _ = _fig3_cluster(params, duration_s, seed + 1, rate_factor=0.85)
    p95_ms, underutil = _tail_metrics(offered, WARMUP_S, duration_s)
    return {"deviation_pct": deviation, "p95_ms": p95_ms, "underutil_pct": underutil}


def evaluate_tail(point: Point, duration_s: float, seed: int) -> Metrics:
    """The proxy suite: post-fault tail latency plus guarantee fidelity.

    The hedging chaos scenario (one of four RPNs drops to 5% speed
    mid-run) measures the p95 the candidate's hedging and estimator
    settings deliver *after* the fault, plus unserved work; a second,
    overdriven fig3-style leg checks the same settings do not erode the
    guarantee (hedge clones spend real credits).
    """
    from repro.core import GageCluster, Subscriber
    from repro.faults import SLOW, FaultAction, FaultSchedule
    from repro.sim import Environment
    from repro.workload import SyntheticWorkload

    params = dict(point)
    config = tunables.config_from_params(params)
    slow_at_s = 1.0

    env = Environment()
    subscribers = [Subscriber("a", 120.0, queue_capacity=4096)]
    workload = SyntheticWorkload(
        rates={"a": 80.0}, duration_s=duration_s, file_bytes=2048, seed=seed
    )
    cluster = GageCluster(
        env,
        subscribers,
        {"a": workload.site_files("a")},
        num_rpns=4,
        config=config,
    )
    cluster.prewarm_caches()
    cluster.install_faults(
        FaultSchedule(
            [FaultAction(at_s=slow_at_s, kind=SLOW, target="rpn0", factor=0.05)]
        )
    )
    cluster.load_trace(workload.generate())
    cluster.run(duration_s)
    p95_ms, underutil = _tail_metrics(cluster, slow_at_s, duration_s)

    overdriven, over_config = _fig3_cluster(
        params, duration_s, seed + 1, rate_factor=1.5, spare_policy="none"
    )
    deviation = _deviation_pct(overdriven, over_config, duration_s)
    return {"deviation_pct": deviation, "p95_ms": p95_ms, "underutil_pct": underutil}


#: Suite name → evaluator.
SUITES: Dict[str, Callable[..., Metrics]] = {
    "fig3": evaluate_fig3,
    "proxy": evaluate_tail,
}


# ---------------------------------------------------------------------------
# Objective and search space
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Objective:
    """The composite score (lower is better); weights are the CLI's."""

    w_deviation: float = 1.0
    w_p95: float = 1.0
    w_underutil: float = 1.0

    def score(self, metrics: Mapping[str, float]) -> float:
        return (
            self.w_deviation * metrics["deviation_pct"]
            + self.w_p95 * metrics["p95_ms"]
            + self.w_underutil * metrics["underutil_pct"]
        )

    def weights(self) -> Tuple[float, float, float]:
        return (self.w_deviation, self.w_p95, self.w_underutil)


@dataclass(frozen=True)
class SearchSpace:
    """The registry knobs one suite's search may move."""

    knobs: Tuple[tunables.Tunable, ...]

    def names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.knobs)

    def sample(self, rng: random.Random) -> Params:
        """A fresh candidate: every knob drawn from its declaration."""
        return {t.name: t.sample(rng) for t in self.knobs}

    def mutate(self, params: Params, rng: random.Random, scale: float = 0.25) -> Params:
        """A local neighbour: each knob perturbed with probability ½.

        Missing knobs (the default candidate is ``{}``) mutate from
        their declared default.  The RNG is always drawn exactly twice
        per knob at most, so the draw sequence is a pure function of
        the space — never of which knobs a parent happened to set.
        """
        child: Params = {}
        for tunable in self.knobs:
            value = params.get(tunable.name, tunable.default)
            if rng.random() < 0.5:
                child[tunable.name] = tunable.mutate(value, rng, scale)
            else:
                child[tunable.name] = value
        return child


def _narrowed(name: str, choices: Tuple[str, ...], default: str) -> tunables.Tunable:
    """A registry declaration restricted to a subset of its choices."""
    return dataclasses.replace(tunables.get(name), choices=choices, default=default)


#: The fig3 suite's space: the QoS control loop's constants.
FIG3_SPACE = SearchSpace(
    knobs=(
        tunables.get("accounting_cycle_s"),
        tunables.get("scheduling_cycle_s"),
        tunables.get("credit_cap_cycles"),
        tunables.get("estimator_alpha"),
        tunables.get("dispatch_window_s"),
        tunables.get("estimator_policy"),
    )
)

#: The proxy suite's space: tail-latency knobs (hedging restricted to
#: the active policies — "off" is the baseline the tuned config must
#: beat, not a state worth searching).
PROXY_SPACE = SearchSpace(
    knobs=(
        _narrowed("hedge_policy", ("fixed", "p95"), "fixed"),
        tunables.get("hedge_delay_s"),
        tunables.get("hedge_max_clones"),
        tunables.get("estimator_alpha"),
        tunables.get("credit_cap_cycles"),
        tunables.get("accounting_cycle_s"),
    )
)

#: Suite name → search space.
SPACES: Dict[str, SearchSpace] = {"fig3": FIG3_SPACE, "proxy": PROXY_SPACE}


# ---------------------------------------------------------------------------
# Evaluation through ParallelSweep
# ---------------------------------------------------------------------------


class Evaluator:
    """Batch evaluation of candidates via a warm-pool ParallelSweep.

    Every batch becomes one sweep (axis ``point`` = the candidates, in
    batch order) sharing this evaluator's :class:`WarmPool` and
    :class:`EvalMemo`, so re-proposed candidates cost nothing and the
    whole search reuses one set of workers.  Each point's simulation
    seed derives from ``(base_seed, point, duration_s)`` — a pure
    function of candidate identity.
    """

    def __init__(
        self,
        suite: str,
        duration_s: float,
        base_seed: int,
        processes: Optional[int] = None,
        pool: Optional[WarmPool] = None,
        memo: Optional[EvalMemo] = None,
    ) -> None:
        if suite not in SUITES:
            raise ValueError(
                "unknown suite {!r}; known: {}".format(suite, ", ".join(sorted(SUITES)))
            )
        self.suite = suite
        self.runner = SUITES[suite]
        self.duration_s = duration_s
        self.base_seed = base_seed
        self.processes = processes
        self.pool = pool
        self.memo = memo if memo is not None else EvalMemo()

    def _sweep(self, points: Sequence[Point]) -> ParallelSweep:
        return ParallelSweep(
            self.runner,
            processes=self.processes if self.pool is None else None,
            pool=self.pool,
            base_seed=self.base_seed,
            memo=self.memo,
            point=list(points),
            duration_s=[self.duration_s],
        )

    def evaluate(self, batch: Sequence[Params]) -> List[Metrics]:
        """Metrics for each candidate, in batch order."""
        if not batch:
            return []
        sweep = self._sweep([canonical_point(params) for params in batch]).run()
        return [point.result for point in sweep.points]

    def preload(self, params: Params, metrics: Metrics) -> None:
        """Seed the memo with a known (candidate, metrics) outcome.

        Reconstructs the exact memo key ``run()`` would compute — the
        mechanism ``--resume`` uses to replay a checkpoint's completed
        evaluations without re-simulating.
        """
        sweep = self._sweep([canonical_point(params)])
        grid_params = sweep.grid()[0]
        key = EvalMemo.key_for(self.runner, grid_params, False)
        self.memo.put(key, ("ok", metrics, None))


# ---------------------------------------------------------------------------
# Search results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EvalRecord:
    """One completed evaluation in the search trajectory."""

    index: int
    params: Params
    metrics: Metrics
    objective: float


@dataclass
class SearchResult:
    """A finished (or checkpointed) search run."""

    suite: str
    algo: str
    seed: int
    budget: int
    duration_s: float
    objective: Objective
    records: List[EvalRecord]

    def best(self) -> EvalRecord:
        """The lowest-objective record (earliest index breaks ties)."""
        if not self.records:
            raise ValueError("no evaluations recorded")
        return min(self.records, key=lambda r: (r.objective, r.index))

    def default(self) -> EvalRecord:
        """Record 0 — always the default configuration."""
        return self.records[0]

    def trajectory(self) -> List[Tuple[float, float]]:
        """(evaluation index, best objective so far) pairs."""
        out: List[Tuple[float, float]] = []
        best = float("inf")
        for record in self.records:
            best = min(best, record.objective)
            out.append((float(record.index), best))
        return out

    def improvement_pct(self) -> float:
        """How much the best beats the default composite, percent."""
        base = self.default().objective
        if base <= 0:
            return 0.0
        return 100.0 * (1.0 - self.best().objective / base)


def trajectory_chart(result: SearchResult, width: int = 72, height: int = 14) -> str:
    """The best-so-far curve as an ASCII chart."""
    return line_chart(
        {"best objective": result.trajectory()},
        width=width,
        height=height,
        title="{} / {} search (seed {})".format(result.suite, result.algo, result.seed),
        y_label="composite objective",
        x_label="evaluations",
    )


# ---------------------------------------------------------------------------
# Checkpoints (JSONL: one header line, one line per evaluation)
# ---------------------------------------------------------------------------


def _header(result: SearchResult, space: SearchSpace) -> Dict[str, Any]:
    return {
        "kind": "tune-header",
        "schema": CHECKPOINT_SCHEMA,
        "suite": result.suite,
        "algo": result.algo,
        "seed": result.seed,
        "duration_s": result.duration_s,
        "weights": list(result.objective.weights()),
        "space": list(space.names()),
    }


def read_checkpoint(path: str) -> Tuple[Dict[str, Any], List[EvalRecord]]:
    """(header, records) from a checkpoint file; validates the schema."""
    with open(path) as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError("{}: empty checkpoint".format(path))
    header = json.loads(lines[0])
    if header.get("kind") != "tune-header" or header.get("schema") != CHECKPOINT_SCHEMA:
        raise ValueError("{}: not a {} checkpoint".format(path, CHECKPOINT_SCHEMA))
    records = []
    for offset, line in enumerate(lines[1:]):
        payload = json.loads(line)
        if payload.get("kind") != "eval":
            raise ValueError("{}: unexpected line kind {!r}".format(path, payload.get("kind")))
        if payload["index"] != offset:
            raise ValueError(
                "{}: record {} out of order (expected {})".format(
                    path, payload["index"], offset
                )
            )
        records.append(
            EvalRecord(
                index=payload["index"],
                params=payload["params"],
                metrics=payload["metrics"],
                objective=payload["objective"],
            )
        )
    return header, records


class _CheckpointWriter:
    """Appends eval records to a JSONL checkpoint as they complete."""

    def __init__(self, path: Optional[str], skip: int) -> None:
        self.path = path
        self.skip = skip  # records already on disk (resume)
        self._handle: Optional[IO[str]] = None

    def open(self, result: SearchResult, space: SearchSpace, fresh: bool) -> None:
        if self.path is None:
            return
        self._handle = open(self.path, "w" if fresh else "a")
        if fresh:
            self._handle.write(json.dumps(_header(result, space)) + "\n")
            self._handle.flush()

    def record(self, record: EvalRecord) -> None:
        if self._handle is None or record.index < self.skip:
            return
        payload = {
            "kind": "eval",
            "index": record.index,
            "params": record.params,
            "metrics": record.metrics,
            "objective": record.objective,
        }
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# The search loop
# ---------------------------------------------------------------------------


def _propose(
    algo: str,
    space: SearchSpace,
    rng: random.Random,
    records: List[EvalRecord],
    batch_size: int,
    mu: int,
    lam: int,
    mutation_scale: float,
) -> List[Params]:
    """The next batch of candidates — a pure function of the RNG state
    and the completed records (never of the remaining budget; callers
    truncate after the draw, keeping the sequence budget-independent).
    """
    if not records:
        # Candidate 0 is always the default config, so every run knows
        # the baseline it must beat; the rest of the first batch (or
        # first ES generation) is random exploration.
        first = mu if algo == "es" else batch_size
        return [{}] + [space.sample(rng) for _ in range(first - 1)]
    if algo == "random":
        return [space.sample(rng) for _ in range(batch_size)]
    # (µ+λ): parents are the best µ completed records; each offspring
    # mutates a uniformly drawn parent.
    parents = sorted(records, key=lambda r: (r.objective, r.index))[:mu]
    return [
        space.mutate(parents[rng.randrange(len(parents))].params, rng, mutation_scale)
        for _ in range(lam)
    ]


def run_search(
    suite: str,
    algo: str = "random",
    budget: int = 50,
    seed: int = 0,
    duration_s: float = 10.0,
    objective: Optional[Objective] = None,
    processes: Optional[int] = None,
    pool: Optional[WarmPool] = None,
    memo: Optional[EvalMemo] = None,
    batch_size: int = 8,
    mu: int = 4,
    lam: int = 8,
    mutation_scale: float = 0.25,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    on_record: Optional[Callable[[EvalRecord], None]] = None,
) -> SearchResult:
    """Run one budgeted search; deterministic given ``seed``.

    With ``resume=True`` the checkpoint's completed evaluations preload
    the evaluator's memo and the loop replays them as instant cache
    hits before continuing live — the result is exactly what an
    uninterrupted run of the same seed and budget produces.  ``budget``
    may exceed the checkpoint's original budget (candidate proposal is
    budget-independent); it counts *evaluations*, including record 0
    (the default config baseline).
    """
    if algo not in ("random", "es"):
        raise ValueError("unknown algo {!r} (random or es)".format(algo))
    if budget < 1:
        raise ValueError("budget must be at least 1")
    objective = objective if objective is not None else Objective()
    space = SPACES[suite]
    evaluator = Evaluator(
        suite, duration_s, base_seed=seed, processes=processes, pool=pool, memo=memo
    )

    prior: List[EvalRecord] = []
    if resume:
        if checkpoint_path is None:
            raise ValueError("--resume needs a checkpoint path")
        header, prior = read_checkpoint(checkpoint_path)
        expectation = {
            "suite": suite,
            "algo": algo,
            "seed": seed,
            "duration_s": duration_s,
            "weights": list(objective.weights()),
            "space": list(space.names()),
        }
        for field_name, expected in expectation.items():
            if header.get(field_name) != expected:
                raise ValueError(
                    "checkpoint {} mismatch: {!r} != {!r}".format(
                        field_name, header.get(field_name), expected
                    )
                )
        for record in prior:
            evaluator.preload(record.params, record.metrics)

    result = SearchResult(
        suite=suite,
        algo=algo,
        seed=seed,
        budget=budget,
        duration_s=duration_s,
        objective=objective,
        records=[],
    )
    writer = _CheckpointWriter(checkpoint_path, skip=len(prior))
    writer.open(result, space, fresh=not prior)
    rng = random.Random(seed)
    try:
        while len(result.records) < budget:
            batch = _propose(
                algo, space, rng, result.records, batch_size, mu, lam, mutation_scale
            )
            batch = batch[: budget - len(result.records)]
            for params, metrics in zip(batch, evaluator.evaluate(batch)):
                record = EvalRecord(
                    index=len(result.records),
                    params=dict(params),
                    metrics=metrics,
                    objective=objective.score(metrics),
                )
                if record.index < len(prior):
                    # Replayed from the checkpoint: must match exactly,
                    # or the checkpoint came from a different run.
                    stored = prior[record.index]
                    if stored.params != record.params or stored.metrics != record.metrics:
                        raise ValueError(
                            "resume diverged at evaluation {}: checkpoint {!r} "
                            "vs recomputed {!r}".format(
                                record.index, stored.params, record.params
                            )
                        )
                result.records.append(record)
                writer.record(record)
                if on_record is not None:
                    on_record(record)
    finally:
        writer.close()
    return result
