"""Adversarial traffic: the scenarios a guarantee system must survive.

The paper evaluates Gage under constant offered loads; production
traffic misbehaves.  This module composes the :mod:`flashcrowd`
primitives into a named suite of hostile workloads:

- **diurnal** — day/night waves, optionally phase-staggered per
  subscriber so the hot spot migrates;
- **flash_crowd** — one subscriber's load explodes mid-run on top of
  everyone's steady state;
- **popularity_shift** — heavy-tailed (Zipf) file popularity whose hot
  set is permuted mid-run, defeating warmed caches;
- **misbehave** — reservation-exceeding subscribers that offer a
  multiple of what they paid for, the isolation property's direct
  adversary.

Every builder is seed-deterministic; the scenario matrix derives
per-point seeds via ``ParallelSweep`` and trusts reproducibility here.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.workload.flashcrowd import LoadProfile, ProfiledWorkload
from repro.workload.request import RequestRecord

__all__ = [
    "SCENARIOS",
    "diurnal_profiles",
    "flash_crowd_profiles",
    "misbehaving_profiles",
    "PopularityShiftWorkload",
    "site_files_for",
    "build_trace",
]

#: The named adversarial scenarios ``build_trace`` understands.
SCENARIOS: Tuple[str, ...] = (
    "steady",
    "diurnal",
    "flash_crowd",
    "popularity_shift",
    "misbehave",
)


def diurnal_profiles(
    rates: Mapping[str, float],
    amplitude_fraction: float = 0.25,
    period_s: float = 20.0,
    phase_step_fraction: float = 0.0,
) -> Dict[str, LoadProfile]:
    """Day/night waves around each host's mean rate.

    ``phase_step_fraction`` staggers successive hosts by that fraction
    of the period (0 keeps everyone in phase — the worst case, since
    all peaks land together).
    """
    if not 0.0 <= amplitude_fraction <= 1.0:
        raise ValueError("amplitude fraction must be in [0, 1]")
    if period_s <= 0:
        raise ValueError("period must be positive")
    profiles: Dict[str, LoadProfile] = {}
    for index, (host, mean) in enumerate(rates.items()):
        amplitude = mean * amplitude_fraction
        phase = 2 * math.pi * phase_step_fraction * index

        def rate(
            at: float, _mean: float = mean, _amp: float = amplitude, _ph: float = phase
        ) -> float:
            return _mean + _amp * math.sin(2 * math.pi * at / period_s + _ph)

        profiles[host] = LoadProfile(rate_fn=rate, peak_rate=mean + amplitude)
    return profiles


def flash_crowd_profiles(
    rates: Mapping[str, float],
    crowd_host: str,
    peak_multiplier: float = 6.0,
    start_s: float = 5.0,
    ramp_s: float = 2.0,
    hold_s: float = 5.0,
    decay_s: float = 3.0,
) -> Dict[str, LoadProfile]:
    """Steady state everywhere, except ``crowd_host`` explodes mid-run."""
    if crowd_host not in rates:
        raise ValueError("unknown crowd host: {!r}".format(crowd_host))
    if peak_multiplier < 1.0:
        raise ValueError("peak multiplier must be at least 1")
    profiles: Dict[str, LoadProfile] = {}
    for host, rate in rates.items():
        if host == crowd_host:
            profiles[host] = LoadProfile.flash_crowd(
                base_rate=rate,
                peak_rate=rate * peak_multiplier,
                start_s=start_s,
                ramp_s=ramp_s,
                hold_s=hold_s,
                decay_s=decay_s,
            )
        else:
            profiles[host] = LoadProfile.constant(rate)
    return profiles


def misbehaving_profiles(
    rates: Mapping[str, float],
    misbehavers: Sequence[str],
    overdrive: float = 4.0,
) -> Dict[str, LoadProfile]:
    """Constant loads, with ``misbehavers`` offering ``overdrive``× theirs."""
    if overdrive < 1.0:
        raise ValueError("overdrive must be at least 1")
    for host in misbehavers:
        if host not in rates:
            raise ValueError("unknown misbehaver: {!r}".format(host))
    hostile = set(misbehavers)
    return {
        host: LoadProfile.constant(rate * overdrive if host in hostile else rate)
        for host, rate in rates.items()
    }


class PopularityShiftWorkload:
    """Zipf-popular files whose hot set is permuted mid-run.

    Requests pick files by a Zipf(``alpha``) law over popularity ranks;
    at ``shift_at_s`` the rank→file assignment rotates by half the
    document tree, so the warmed cache's hot set turns cold at once —
    the cache-adversarial counterpart of a flash crowd.
    """

    def __init__(
        self,
        rates: Mapping[str, float],
        duration_s: float,
        file_bytes: int = 2000,
        files_per_site: int = 64,
        alpha: float = 1.1,
        shift_at_s: float = -1.0,
        seed: int = 0,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if files_per_site < 1:
            raise ValueError("need at least one file per site")
        if alpha <= 0:
            raise ValueError("zipf alpha must be positive")
        self.rates = dict(rates)
        self.duration_s = duration_s
        self.file_bytes = file_bytes
        self.files_per_site = files_per_site
        self.shift_at_s = duration_s / 2.0 if shift_at_s < 0 else shift_at_s
        self._rng = random.Random(seed)
        # Cumulative Zipf weights over popularity ranks 1..N.
        weights = [1.0 / (rank**alpha) for rank in range(1, files_per_site + 1)]
        total = 0.0
        self._cumulative: List[float] = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total_weight = total

    def site_files(self, host: str) -> Dict[str, int]:
        """The document tree to install for ``host``."""
        return {
            "page{:04d}.html".format(i): self.file_bytes
            for i in range(self.files_per_site)
        }

    def _pick_file(self, at_s: float) -> int:
        draw = self._rng.random() * self._total_weight
        rank = bisect.bisect_left(self._cumulative, draw)
        if at_s >= self.shift_at_s:
            # Permute rank->file: the pre-shift tail becomes the new head.
            rank = (rank + self.files_per_site // 2) % self.files_per_site
        return rank

    def generate(self) -> List[RequestRecord]:
        """The merged, time-sorted trace across all hosts."""
        records: List[RequestRecord] = []
        for host, rate in self.rates.items():
            if rate <= 0:
                continue
            at = 0.0
            while True:
                at += self._rng.expovariate(rate)
                if at >= self.duration_s:
                    break
                records.append(
                    RequestRecord(
                        at_s=at,
                        host=host,
                        path="/page{:04d}.html".format(self._pick_file(at)),
                        size_bytes=self.file_bytes,
                    )
                )
        records.sort(key=lambda record: record.at_s)
        return records


def site_files_for(
    hosts: Sequence[str], files_per_site: int = 64, file_bytes: int = 2000
) -> Dict[str, Dict[str, int]]:
    """Identical document trees for every host (the suite's default)."""
    tree = {
        "page{:04d}.html".format(i): file_bytes for i in range(files_per_site)
    }
    return {host: dict(tree) for host in hosts}


def build_trace(
    scenario: str,
    rates: Mapping[str, float],
    duration_s: float,
    seed: int = 0,
    file_bytes: int = 2000,
    files_per_site: int = 64,
    misbehave_overdrive: float = 4.0,
    diurnal_period_s: float = 20.0,
    flash_peak_multiplier: float = 6.0,
) -> Tuple[List[RequestRecord], Tuple[str, ...]]:
    """One named scenario as a concrete trace.

    ``rates`` are each host's *conforming* offered rates; the scenario
    perturbs them.  Returns the trace plus the misbehaving hosts (empty
    for every scenario but ``misbehave``) so callers can exclude the
    offenders when judging conforming-subscriber guarantees.
    """
    if scenario not in SCENARIOS:
        raise ValueError(
            "unknown scenario {!r}; pick one of {}".format(scenario, SCENARIOS)
        )
    hosts = list(rates.keys())
    misbehavers: Tuple[str, ...] = ()
    if scenario == "popularity_shift":
        shift = PopularityShiftWorkload(
            rates,
            duration_s,
            file_bytes=file_bytes,
            files_per_site=files_per_site,
            seed=seed,
        )
        return shift.generate(), misbehavers
    if scenario == "steady":
        profiles = {
            host: LoadProfile.constant(rate) for host, rate in rates.items()
        }
    elif scenario == "diurnal":
        profiles = diurnal_profiles(rates, period_s=diurnal_period_s)
    elif scenario == "flash_crowd":
        profiles = flash_crowd_profiles(
            rates, crowd_host=hosts[-1], peak_multiplier=flash_peak_multiplier
        )
    else:  # misbehave
        misbehavers = (hosts[-1],)
        profiles = misbehaving_profiles(
            rates, misbehavers, overdrive=misbehave_overdrive
        )
    workload = ProfiledWorkload(
        profiles,
        duration_s,
        file_bytes=file_bytes,
        files_per_site=files_per_site,
        seed=seed,
    )
    return workload.generate(), misbehavers
