"""Subscriber churn: join/leave event streams for a running cluster.

The paper's experiments run a fixed subscriber population; a hosting
platform at scale does not — customers sign up and depart while the
cluster serves.  This generator produces a reproducible (seeded) stream
of join/leave events that drives the control plane's churn APIs
(:meth:`~repro.core.rdn.PrimaryRDN.register_subscriber` /
``deregister_subscriber``, and the sharded facade's equivalents), which
is what the scale benchmark and the churn tests replay.

Joins and leaves are Poisson processes; a leave removes a uniformly
chosen *churnable* live subscriber.  Subscribers present at time zero
can be pinned (``protect_initial``) so a workload's guaranteed
customers survive the run while the churning tail turns over around
them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.subscriber import Subscriber

JOIN = "join"
LEAVE = "leave"


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change, in simulation time.

    ``subscriber`` is populated for joins (the full reservation to
    admit) and None for leaves, which carry only the departing name.
    """

    at_s: float
    kind: str
    name: str
    subscriber: Optional[Subscriber] = None


@dataclass
class ChurnWorkload:
    """A seeded join/leave event stream over a subscriber population.

    Parameters
    ----------
    initial:
        Subscribers present before time zero (returned by
        :meth:`initial_subscribers`, not as events).
    joins_per_s, leaves_per_s:
        Poisson rates of the two event processes.
    duration_s:
        Length of the generated event stream.
    reservation_grps:
        Reservation assigned to every generated subscriber.
    queue_capacity:
        Queue bound for generated subscribers.
    protect_initial:
        When True (default) leaves only remove subscribers that joined
        mid-run, never the initial population.
    """

    initial: int
    joins_per_s: float
    leaves_per_s: float
    duration_s: float
    reservation_grps: float = 1.0
    queue_capacity: int = 64
    protect_initial: bool = True
    name_prefix: str = "sub"
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.initial < 0:
            raise ValueError("initial population must be non-negative")
        if self.joins_per_s < 0 or self.leaves_per_s < 0:
            raise ValueError("churn rates must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.reservation_grps < 0:
            raise ValueError("reservation must be non-negative")
        self._rng = random.Random(self.seed)

    def _subscriber(self, index: int) -> Subscriber:
        return Subscriber(
            name="{}{:06d}".format(self.name_prefix, index),
            reservation_grps=self.reservation_grps,
            queue_capacity=self.queue_capacity,
        )

    def initial_subscribers(self) -> List[Subscriber]:
        """The population registered before the event stream starts."""
        return [self._subscriber(index) for index in range(self.initial)]

    def generate(self) -> List[ChurnEvent]:
        """The merged join/leave stream, sorted by time.

        Leaves arriving while nothing is churnable are dropped (there is
        nobody to remove), so every generated event is applicable when
        replayed in order.
        """
        rng = self._rng
        events: List[ChurnEvent] = []
        join_times = self._poisson_times(self.joins_per_s)
        leave_times = self._poisson_times(self.leaves_per_s)
        merged = [(at, JOIN) for at in join_times] + [
            (at, LEAVE) for at in leave_times
        ]
        merged.sort()
        next_index = self.initial
        churnable: List[str] = (
            []
            if self.protect_initial
            else [s.name for s in self.initial_subscribers()]
        )
        for at, kind in merged:
            if kind == JOIN:
                subscriber = self._subscriber(next_index)
                next_index += 1
                churnable.append(subscriber.name)
                events.append(
                    ChurnEvent(at, JOIN, subscriber.name, subscriber=subscriber)
                )
            elif churnable:
                victim = churnable.pop(rng.randrange(len(churnable)))
                events.append(ChurnEvent(at, LEAVE, victim))
        return events

    def _poisson_times(self, rate: float) -> List[float]:
        if rate <= 0:
            return []
        rng = self._rng
        times: List[float] = []
        at = rng.expovariate(rate)
        while at < self.duration_s:
            times.append(at)
            at += rng.expovariate(rate)
        return times
