"""Web request/response models and the per-request cost model.

A :class:`WebRequest` is the application payload the client sends in its
first data packet (the URL); a :class:`WebResponse` is what the back-end
returns.  :class:`CostModel` converts a request into the CPU/disk work the
back-end performs for it — the knob that distinguishes the paper's
"generic" requests from the cheap cached accesses of the scalability
experiment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_request_ids = itertools.count(1)


@dataclass
class WebRequest:
    """One URL access request.

    Attributes
    ----------
    host:
        The Host: header — the paper classifies requests to subscribers
        "according to the host-name part of the URL" (§3.3).
    path:
        The URL path; identifies the file within the subscriber's site.
    size_bytes:
        Size of the requested page (drives disk and network usage).
    cpu_extra_s:
        Additional CPU the request demands beyond the cost model's base
        (models CGI/dynamic content).
    issued_at:
        Simulated time the client issued the request.
    """

    host: str
    path: str
    size_bytes: int
    cpu_extra_s: float = 0.0
    issued_at: float = 0.0
    rid: int = field(default_factory=lambda: next(_request_ids))

    @property
    def request_bytes(self) -> int:
        """Wire size of the HTTP request itself (GET line + headers)."""
        return min(512, 160 + len(self.path) + len(self.host))

    def __repr__(self) -> str:
        return "<WebRequest #{} {}{} {}B>".format(
            self.rid, self.host, self.path, self.size_bytes
        )


@dataclass
class WebResponse:
    """The back-end's answer to a :class:`WebRequest`."""

    request: WebRequest
    size_bytes: int
    status: int = 200

    def __repr__(self) -> str:
        return "<WebResponse #{} status={} {}B>".format(
            self.request.rid, self.status, self.size_bytes
        )


@dataclass(frozen=True)
class CostModel:
    """Maps a request to the back-end work it causes.

    CPU time is ``base_cpu_s + per_kb_cpu_s × size_KB + cpu_extra_s``;
    disk time (on a buffer-cache miss) is ``seek_s + size / transfer_Bps``.

    The defaults make a 2000-byte page access that misses the buffer cache
    cost exactly one generic request (§3.1): 10 ms CPU, 10 ms disk
    channel, 2000 bytes of network.
    """

    base_cpu_s: float = 0.00941
    per_kb_cpu_s: float = 0.0003
    seek_s: float = 0.0098
    transfer_bps: float = 20e6  # disk transfer rate, bytes/sec

    def cpu_seconds(self, request: WebRequest) -> float:
        """CPU time the back-end spends servicing ``request``."""
        return (
            self.base_cpu_s
            + self.per_kb_cpu_s * (request.size_bytes / 1024.0)
            + request.cpu_extra_s
        )

    def disk_seconds(self, request: WebRequest) -> float:
        """Disk channel time on a buffer-cache miss."""
        return self.seek_s + request.size_bytes / self.transfer_bps


@dataclass(frozen=True)
class RequestRecord:
    """One line of a workload trace: when to ask which host for what."""

    at_s: float
    host: str
    path: str
    size_bytes: int
    cpu_extra_s: float = 0.0

    def to_request(self) -> WebRequest:
        """Materialize the trace record as an issuable request."""
        return WebRequest(
            host=self.host,
            path=self.path,
            size_bytes=self.size_bytes,
            cpu_extra_s=self.cpu_extra_s,
            issued_at=self.at_s,
        )
