"""Time-varying load profiles: flash crowds, ramps, and diurnal waves.

The paper motivates Gage with "wildly fluctuating input loads" (§1); the
evaluation uses constant rates, but the isolation property is most vivid
when one subscriber's load explodes mid-run.  A :class:`LoadProfile`
maps time to an instantaneous request rate; :class:`ProfiledWorkload`
samples it into a trace by thinning a dense arrival stream.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.workload.request import RequestRecord

#: Maps simulated time (s) to an instantaneous rate (requests/s).
RateFunction = Callable[[float], float]


@dataclass(frozen=True)
class LoadProfile:
    """A named time-varying rate."""

    rate_fn: RateFunction
    peak_rate: float  # an upper bound on rate_fn, for thinning

    def rate_at(self, at_s: float) -> float:
        """The instantaneous rate at ``at_s``."""
        return max(0.0, self.rate_fn(at_s))

    @classmethod
    def constant(cls, rate: float) -> "LoadProfile":
        """A flat rate."""
        if rate < 0:
            raise ValueError("negative rate")
        return cls(rate_fn=lambda _t: rate, peak_rate=rate)

    @classmethod
    def flash_crowd(
        cls,
        base_rate: float,
        peak_rate: float,
        start_s: float,
        ramp_s: float,
        hold_s: float,
        decay_s: float,
    ) -> "LoadProfile":
        """Base load, then a linear ramp to a peak, a hold, and a decay."""
        if peak_rate < base_rate:
            raise ValueError("peak must be at least the base rate")
        if min(ramp_s, hold_s, decay_s) < 0:
            raise ValueError("negative phase duration")

        def rate(at: float) -> float:
            if at < start_s:
                return base_rate
            into = at - start_s
            if into < ramp_s:
                return base_rate + (peak_rate - base_rate) * (into / ramp_s if ramp_s else 1.0)
            into -= ramp_s
            if into < hold_s:
                return peak_rate
            into -= hold_s
            if into < decay_s:
                return peak_rate - (peak_rate - base_rate) * (into / decay_s)
            return base_rate

        return cls(rate_fn=rate, peak_rate=peak_rate)

    @classmethod
    def diurnal(cls, mean_rate: float, amplitude: float, period_s: float) -> "LoadProfile":
        """A sinusoidal day/night wave around ``mean_rate``."""
        if not 0 <= amplitude <= mean_rate:
            raise ValueError("amplitude must lie in [0, mean_rate]")
        if period_s <= 0:
            raise ValueError("period must be positive")

        def rate(at: float) -> float:
            return mean_rate + amplitude * math.sin(2 * math.pi * at / period_s)

        return cls(rate_fn=rate, peak_rate=mean_rate + amplitude)


class ProfiledWorkload:
    """Generates a trace whose arrival rate follows per-host profiles.

    Arrivals are produced by thinning a Poisson stream at each profile's
    peak rate, which yields a non-homogeneous Poisson process matching
    ``rate_fn`` exactly in expectation.
    """

    def __init__(
        self,
        profiles: Dict[str, LoadProfile],
        duration_s: float,
        file_bytes: int = 2000,
        files_per_site: int = 64,
        seed: int = 0,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if files_per_site < 1:
            raise ValueError("need at least one file per site")
        self.profiles = dict(profiles)
        self.duration_s = duration_s
        self.file_bytes = file_bytes
        self.files_per_site = files_per_site
        self._rng = random.Random(seed)

    def site_files(self, host: str) -> Dict[str, int]:
        """The document tree to install for ``host``."""
        return {
            "page{:04d}.html".format(i): self.file_bytes
            for i in range(self.files_per_site)
        }

    def generate(self) -> List[RequestRecord]:
        """The merged, time-sorted trace across all hosts."""
        records: List[RequestRecord] = []
        for host, profile in self.profiles.items():
            records.extend(self._host_records(host, profile))
        records.sort(key=lambda record: record.at_s)
        return records

    def _host_records(self, host: str, profile: LoadProfile) -> List[RequestRecord]:
        records: List[RequestRecord] = []
        if profile.peak_rate <= 0:
            return records
        at = 0.0
        index = 0
        while True:
            at += self._rng.expovariate(profile.peak_rate)
            if at >= self.duration_s:
                break
            # Thinning: keep the candidate with probability rate/peak.
            if self._rng.random() * profile.peak_rate <= profile.rate_at(at):
                records.append(
                    RequestRecord(
                        at_s=at,
                        host=host,
                        path="/page{:04d}.html".format(index % self.files_per_site),
                        size_bytes=self.file_bytes,
                    )
                )
                index += 1
        return records
