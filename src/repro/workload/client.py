"""Open-loop simulated clients (packet mode).

Implements the load-generation method of Banga & Druschel [19] that the
paper's evaluation uses: requests are issued at their trace-scheduled
times regardless of how many earlier requests are still outstanding, so
an overloaded server cannot silently throttle the offered load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.net.addresses import IPAddress
from repro.net.tcp import Connection, ConnectionError_, HostStack
from repro.sim.engine import Environment
from repro.workload.request import RequestRecord, WebResponse


@dataclass
class ClientStats:
    """Aggregate outcomes across the fleet."""

    issued: int = 0
    completed: int = 0
    failed: int = 0
    bytes_received: int = 0
    latencies_s: List[float] = field(default_factory=list)
    #: (completion_time, host) pairs for rate analysis.
    completions: List["tuple[float, str]"] = field(default_factory=list)

    @property
    def mean_latency_s(self) -> float:
        """Mean request latency over completed requests."""
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s)

    def completed_rate(self, duration_s: float) -> float:
        """Completed requests per second."""
        return self.completed / duration_s if duration_s > 0 else 0.0


class ClientFleet:
    """Drives a trace against the cluster IP from a set of client hosts."""

    def __init__(
        self,
        env: Environment,
        stacks: Sequence[HostStack],
        cluster_ip: IPAddress,
        port: int = 80,
        request_timeout_s: Optional[float] = 30.0,
    ) -> None:
        if not stacks:
            raise ValueError("need at least one client stack")
        self.env = env
        self.stacks = list(stacks)
        self.cluster_ip = cluster_ip
        self.port = port
        self.request_timeout_s = request_timeout_s
        self.stats = ClientStats()
        self._next_stack = 0

    def run_trace(self, records: Sequence[RequestRecord]) -> None:
        """Schedule every record for issue at its trace time."""
        for record in records:
            self.env.call_later(max(0.0, record.at_s - self.env.now), self._issue, record)

    def _issue(self, record: RequestRecord) -> None:
        stack = self.stacks[self._next_stack % len(self.stacks)]
        self._next_stack += 1
        self.stats.issued += 1
        self.env.process(self._one_request(stack, record))

    def _one_request(self, stack: HostStack, record: RequestRecord):
        started = self.env.now
        request = record.to_request()
        request.issued_at = started
        conn = stack.connect(self.cluster_ip, self.port)
        deadline = (
            self.env.timeout(self.request_timeout_s)
            if self.request_timeout_s is not None
            else None
        )
        try:
            if deadline is not None:
                result = yield conn.established | deadline
                if conn.established not in result:
                    conn.abort()
                    self.stats.failed += 1
                    return
            else:
                yield conn.established
            yield conn.send(request.request_bytes, payload=request)
            received = 0
            response: Optional[WebResponse] = None
            while True:
                payload, length = yield conn.receive()
                if payload is Connection.EOF:
                    break
                received += length
                if isinstance(payload, WebResponse):
                    response = payload
                    if received >= response.size_bytes:
                        break
            conn.close()
            if response is None:
                self.stats.failed += 1
                return
            self.stats.completed += 1
            self.stats.bytes_received += received
            self.stats.latencies_s.append(self.env.now - started)
            self.stats.completions.append((self.env.now, record.host))
        except ConnectionError_:
            self.stats.failed += 1

    def completions_by_host(self) -> Dict[str, List[float]]:
        """Completion timestamps grouped by host."""
        grouped: Dict[str, List[float]] = {}
        for at, host in self.stats.completions:
            grouped.setdefault(host, []).append(at)
        return grouped
