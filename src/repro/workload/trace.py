"""Trace file I/O.

Traces are tab-separated text, one request per line::

    <at_seconds>\t<host>\t<path>\t<size_bytes>\t<cpu_extra_s>

matching how the paper's clients "load the trace from a file and issue
requests to Gage at a constant rate" (§4).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Union

from repro.workload.request import RequestRecord


def save_trace(records: Iterable[RequestRecord], path: Union[str, Path]) -> int:
    """Write records to ``path``; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                "{:.6f}\t{}\t{}\t{}\t{:.6f}\n".format(
                    record.at_s,
                    record.host,
                    record.path,
                    record.size_bytes,
                    record.cpu_extra_s,
                )
            )
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[RequestRecord]:
    """Read a trace written by :func:`save_trace`."""
    records: List[RequestRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 5:
                raise ValueError(
                    "malformed trace line {}: {!r}".format(line_no, line)
                )
            records.append(
                RequestRecord(
                    at_s=float(parts[0]),
                    host=parts[1],
                    path=parts[2],
                    size_bytes=int(parts[3]),
                    cpu_extra_s=float(parts[4]),
                )
            )
    return records
