"""Seeded cluster-topology generation.

Modeled on Helix's ``FakeClusterGenerator`` (SNIPPETS.md snippets 1-2):
declare node-*class* statistics (a hardware mix by percentage or count),
per-link bandwidth/latency distributions with an optional slow-link
tier, and a fabric shape — then generate concrete
:class:`~repro.core.topology.ClusterTopology` instances from a seed.

Determinism contract: ``generate(seed)`` is a pure function of the
configured statistics and the seed, and the canonical JSON writer in
:meth:`ClusterTopology.to_json` is byte-stable, so
:meth:`TopologyGenerator.generate_to_file` reproduces a topology file
byte-for-byte from its seed — the property the scenario matrix and CI
lean on.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.topology import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_LINK_BANDWIDTH_BPS,
    DEFAULT_LINK_LATENCY_S,
    ClusterTopology,
    LinkSpec,
    NodeSpec,
    SwitchSpec,
)

__all__ = ["NodeClass", "TopologyGenerator", "DEFAULT_NODE_CLASSES"]


@dataclass(frozen=True)
class NodeClass:
    """One hardware class nodes are drawn from."""

    kind: str
    cpu_speed: float = 1.0
    cache_bytes: int = DEFAULT_CACHE_BYTES
    capacity_grps: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("node class kind must be non-empty")
        if self.cpu_speed <= 0:
            raise ValueError("cpu speed must be positive")
        if self.cache_bytes < 0:
            raise ValueError("cache size must be non-negative")
        if self.capacity_grps is not None and self.capacity_grps <= 0:
            raise ValueError("capacity override must be positive")


#: A plausible refresh-cycle mix: the paper's box, a newer generation
#: with twice the CPU and cache, and a legacy half-speed tier.
DEFAULT_NODE_CLASSES: Tuple[NodeClass, ...] = (
    NodeClass("standard", cpu_speed=1.0),
    NodeClass("fast", cpu_speed=2.0, cache_bytes=2 * DEFAULT_CACHE_BYTES),
    NodeClass("slow", cpu_speed=0.5, cache_bytes=DEFAULT_CACHE_BYTES // 2),
)


def _largest_remainder(weights: List[float], total: int) -> List[int]:
    """Apportion ``total`` units proportionally to ``weights``.

    Floors the exact quotas, then hands the leftover units to the
    largest fractional remainders (ties broken by position) — so a
    weight map that is already an exact count allocation reproduces it
    verbatim, and percentages land as close as integers allow.
    """
    weight_sum = sum(weights)
    quotas = [total * weight / weight_sum for weight in weights]
    counts = [math.floor(quota) for quota in quotas]
    leftover = total - sum(counts)
    remainders = sorted(
        range(len(weights)),
        key=lambda index: (-(quotas[index] - counts[index]), index),
    )
    for index in remainders[:leftover]:
        counts[index] += 1
    return counts


class TopologyGenerator:
    """Builder-style seeded generator of cluster topologies."""

    def __init__(self) -> None:
        self._num_rpns = 8
        self._classes: Dict[str, NodeClass] = {
            cls.kind: cls for cls in DEFAULT_NODE_CLASSES
        }
        self._mix: Dict[str, float] = {"standard": 1.0}
        self._avg_bandwidth_bps = DEFAULT_LINK_BANDWIDTH_BPS
        self._var_bandwidth_bps = 0.0
        self._avg_latency_s = DEFAULT_LINK_LATENCY_S
        self._var_latency_s = 0.0
        self._slow_link_fraction = 0.0
        self._slow_link_bandwidth_bps = 10e6
        self._slow_link_latency_s = 100e-6
        self._num_switches = 1
        self._uplink: Optional[LinkSpec] = None

    # -- statistics ----------------------------------------------------------

    def set_node_statistics(
        self,
        num_rpns: int,
        node_type_percentage: Optional[Mapping[str, float]] = None,
        classes: Optional[Mapping[str, NodeClass]] = None,
    ) -> "TopologyGenerator":
        """Declare the node count and the hardware mix.

        ``node_type_percentage`` maps class kind to a weight —
        percentages, fractions, or absolute counts all work, since only
        proportions matter (largest-remainder apportionment).  Omitting
        it keeps the all-``standard`` mix.
        """
        if num_rpns < 1:
            raise ValueError("need at least one RPN")
        if classes is not None:
            self._classes = dict(classes)
        mix = dict(node_type_percentage or {"standard": 1.0})
        if not mix:
            raise ValueError("node mix must name at least one class")
        for kind, weight in mix.items():
            if kind not in self._classes:
                raise ValueError("unknown node class: {!r}".format(kind))
            if weight <= 0:
                raise ValueError("node mix weights must be positive")
        self._num_rpns = num_rpns
        self._mix = mix
        return self

    def set_link_statistics(
        self,
        avg_bandwidth_bps: float,
        var_bandwidth_bps: float = 0.0,
        avg_latency_s: float = DEFAULT_LINK_LATENCY_S,
        var_latency_s: float = 0.0,
        slow_link_fraction: float = 0.0,
        slow_link_bandwidth_bps: float = 10e6,
        slow_link_latency_s: float = 100e-6,
    ) -> "TopologyGenerator":
        """Declare per-link distributions and the slow-link tier.

        Fast-tier links draw bandwidth/latency from normal
        distributions (``var_*`` are standard deviations, 0 = exact);
        ``slow_link_fraction`` of the nodes land on the fixed slow tier
        instead.
        """
        if avg_bandwidth_bps <= 0 or slow_link_bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")
        if var_bandwidth_bps < 0 or var_latency_s < 0:
            raise ValueError("link variances must be non-negative")
        if avg_latency_s < 0 or slow_link_latency_s < 0:
            raise ValueError("link latency must be non-negative")
        if not 0.0 <= slow_link_fraction <= 1.0:
            raise ValueError("slow-link fraction must be in [0, 1]")
        self._avg_bandwidth_bps = avg_bandwidth_bps
        self._var_bandwidth_bps = var_bandwidth_bps
        self._avg_latency_s = avg_latency_s
        self._var_latency_s = var_latency_s
        self._slow_link_fraction = slow_link_fraction
        self._slow_link_bandwidth_bps = slow_link_bandwidth_bps
        self._slow_link_latency_s = slow_link_latency_s
        return self

    def set_fabric(
        self, num_switches: int = 1, uplink: Optional[LinkSpec] = None
    ) -> "TopologyGenerator":
        """Declare the switch fabric: star of ``num_switches`` switches.

        Nodes spread round-robin across the switches; leaf switches
        trunk to the root over ``uplink`` (``None`` = the GigE default).
        """
        if num_switches < 1:
            raise ValueError("need at least one switch")
        self._num_switches = num_switches
        self._uplink = uplink
        return self

    # -- generation ----------------------------------------------------------

    def _node_kinds(self, rng: random.Random) -> List[str]:
        kinds = list(self._mix.keys())
        counts = _largest_remainder(
            [self._mix[kind] for kind in kinds], self._num_rpns
        )
        drawn: List[str] = []
        for kind, count in zip(kinds, counts):
            drawn.extend([kind] * count)
        rng.shuffle(drawn)
        return drawn

    def _draw_link(self, rng: random.Random, slow: bool) -> LinkSpec:
        if slow:
            return LinkSpec(
                bandwidth_bps=self._slow_link_bandwidth_bps,
                latency_s=self._slow_link_latency_s,
            )
        bandwidth = self._avg_bandwidth_bps
        if self._var_bandwidth_bps > 0:
            bandwidth = rng.gauss(bandwidth, self._var_bandwidth_bps)
            # Clip, then quantize to whole bits/s: tidy files, stable bytes.
            bandwidth = float(round(max(1e6, bandwidth)))
        latency = self._avg_latency_s
        if self._var_latency_s > 0:
            latency = round(max(0.0, rng.gauss(latency, self._var_latency_s)), 9)
        return LinkSpec(bandwidth_bps=bandwidth, latency_s=latency)

    def generate(self, seed: int) -> ClusterTopology:
        """One concrete topology, a pure function of statistics + seed."""
        rng = random.Random(seed)
        kinds = self._node_kinds(rng)
        slow_count = round(self._slow_link_fraction * self._num_rpns)
        slow_indices = set(rng.sample(range(self._num_rpns), slow_count))
        nodes: List[NodeSpec] = []
        for index, kind in enumerate(kinds):
            cls = self._classes[kind]
            nodes.append(
                NodeSpec(
                    kind=cls.kind,
                    cpu_speed=cls.cpu_speed,
                    cache_bytes=cls.cache_bytes,
                    link=self._draw_link(rng, index in slow_indices),
                    switch=index % self._num_switches,
                    capacity_grps=cls.capacity_grps,
                )
            )
        switches = tuple(
            SwitchSpec() if index == 0 else SwitchSpec(uplink=self._uplink)
            for index in range(self._num_switches)
        )
        return ClusterTopology(nodes=tuple(nodes), switches=switches)

    def generate_to_file(self, path: str, seed: int) -> ClusterTopology:
        """Generate and write the canonical JSON form to ``path``.

        Re-running with the same statistics and seed rewrites the file
        byte-for-byte.
        """
        topology = self.generate(seed)
        topology.save(path)
        return topology
