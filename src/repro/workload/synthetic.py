"""Synthetic constant-rate workloads.

"The clients load the trace from a file and issue requests to Gage at a
constant rate" (§4) — the synthetic experiments use fixed-size pages
(6 KBytes in the Figure 3 experiment).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.workload.request import RequestRecord

#: The fixed page size of the paper's synthetic workload (§4.1).
DEFAULT_FILE_BYTES = 6 * 1024


@dataclass
class SyntheticWorkload:
    """Constant-rate, fixed-size-page workload for a set of hosts.

    Parameters
    ----------
    rates:
        Host name → offered load in requests/second.
    duration_s:
        Length of the generated trace.
    file_bytes:
        Size of every page.
    files_per_site:
        Number of distinct pages per site; controls how well the working
        set fits in the back-end buffer caches.
    arrival:
        ``"constant"`` — evenly spaced (the paper's method) or
        ``"poisson"`` — exponential interarrivals.
    cpu_extra_s:
        Extra CPU demand per request (models dynamic content).
    """

    rates: Dict[str, float]
    duration_s: float
    file_bytes: int = DEFAULT_FILE_BYTES
    files_per_site: int = 64
    arrival: str = "constant"
    cpu_extra_s: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.file_bytes < 0:
            raise ValueError("file size must be non-negative")
        if self.files_per_site < 1:
            raise ValueError("need at least one file per site")
        if self.arrival not in ("constant", "poisson"):
            raise ValueError("unknown arrival model: {!r}".format(self.arrival))
        for host, rate in self.rates.items():
            if rate < 0:
                raise ValueError("negative rate for {!r}".format(host))
        self._rng = random.Random(self.seed)

    def site_files(self, host: str) -> Dict[str, int]:
        """The document tree to install for ``host``."""
        return {
            "page{:04d}.html".format(i): self.file_bytes
            for i in range(self.files_per_site)
        }

    def _arrival_times(self, rate: float) -> List[float]:
        if rate <= 0:
            return []
        times: List[float] = []
        if self.arrival == "constant":
            period = 1.0 / rate
            at = period  # first request one period in, like a paced client
            while at < self.duration_s:
                times.append(at)
                at += period
        else:
            at = self._rng.expovariate(rate)
            while at < self.duration_s:
                times.append(at)
                at += self._rng.expovariate(rate)
        return times

    def generate(self) -> List[RequestRecord]:
        """The full trace, merged across hosts and sorted by time."""
        records: List[RequestRecord] = []
        for host in self.rates:
            file_index = 0
            for at in self._arrival_times(self.rates[host]):
                path = "/page{:04d}.html".format(file_index % self.files_per_site)
                file_index += 1
                records.append(
                    RequestRecord(
                        at_s=at,
                        host=host,
                        path=path,
                        size_bytes=self.file_bytes,
                        cpu_extra_s=self.cpu_extra_s,
                    )
                )
        records.sort(key=lambda record: record.at_s)
        return records
