"""Workload generation: request models, synthetic and SPECWeb99-shaped
trace generators, trace file I/O, and open-loop simulated clients."""

from repro.workload.churn import ChurnEvent, ChurnWorkload
from repro.workload.client import ClientFleet, ClientStats
from repro.workload.flashcrowd import LoadProfile, ProfiledWorkload
from repro.workload.request import CostModel, RequestRecord, WebRequest, WebResponse
from repro.workload.specweb import SpecWeb99Config, SpecWeb99Workload
from repro.workload.synthetic import SyntheticWorkload
from repro.workload.trace import load_trace, save_trace

__all__ = [
    "ChurnEvent",
    "ChurnWorkload",
    "ClientFleet",
    "ClientStats",
    "CostModel",
    "LoadProfile",
    "ProfiledWorkload",
    "RequestRecord",
    "SpecWeb99Config",
    "SpecWeb99Workload",
    "SyntheticWorkload",
    "WebRequest",
    "WebResponse",
    "load_trace",
    "save_trace",
]
