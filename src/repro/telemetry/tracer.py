"""Span-based tracing keyed on sim-time or wall-time.

A :class:`Tracer` is bound to a clock — ``lambda: env.now`` for
simulated time, :func:`time.perf_counter` for wall time — and produces
:class:`Span` objects.  Closing a span records its duration into a
histogram named after the span and, when the registry has sinks, emits
one event per span so JSONL traces can be reconstructed offline.

Spans never touch the clock they are *measuring with* beyond reading
it, and reading ``env.now`` schedules nothing — tracing a simulation
cannot perturb it.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence

from repro.telemetry.metrics import Histogram
from repro.telemetry.registry import MetricRegistry, get_registry

Clock = Callable[[], float]


class Span:
    """One timed operation; use as a context manager or call :meth:`end`."""

    __slots__ = ("tracer", "name", "labels", "started_at", "ended_at")

    def __init__(
        self, tracer: "Tracer", name: str, labels: Dict[str, str], started_at: float
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.labels = labels
        self.started_at = started_at
        self.ended_at: Optional[float] = None

    @property
    def duration(self) -> float:
        """Span length; 0 while still open."""
        if self.ended_at is None:
            return 0.0
        return self.ended_at - self.started_at

    def end(self) -> float:
        """Close the span, record it, and return the duration."""
        if self.ended_at is not None:
            return self.duration
        self.ended_at = self.tracer.clock()
        self.tracer._record(self)
        return self.duration

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class Tracer:
    """Produces spans against one clock, recording into one registry."""

    def __init__(
        self,
        clock: Clock = time.perf_counter,
        registry: Optional[MetricRegistry] = None,
        bounds: Optional[Sequence[float]] = None,
        clock_name: str = "wall",
    ) -> None:
        self.clock = clock
        self.clock_name = clock_name
        self._registry = registry
        self._bounds = list(bounds) if bounds is not None else None
        self.spans_recorded = 0

    @property
    def registry(self) -> MetricRegistry:
        """The bound registry, or the process default."""
        return self._registry if self._registry is not None else get_registry()

    def span(self, name: str, **labels: str) -> Span:
        """Open a span starting now."""
        return Span(self, name, labels, self.clock())

    def histogram_for(self, name: str, **labels: str) -> Histogram:
        """The histogram a span named ``name`` records into."""
        return self.registry.histogram(name, bounds=self._bounds, **labels)

    def _record(self, span: Span) -> None:
        self.spans_recorded += 1
        self.histogram_for(span.name, **span.labels).observe(span.duration)
        registry = self.registry
        if registry.sinks:
            event = {
                "event": "span",
                "name": span.name,
                "clock": self.clock_name,
                "start": span.started_at,
                "end": span.ended_at,
                "duration": span.duration,
            }
            if span.labels:
                event["labels"] = dict(span.labels)
            registry.emit(event)


def sim_tracer(
    env, registry: Optional[MetricRegistry] = None, bounds: Optional[Sequence[float]] = None
) -> Tracer:
    """A tracer keyed on a simulation environment's virtual clock."""
    return Tracer(
        clock=lambda: env.now, registry=registry, bounds=bounds, clock_name="sim"
    )


def wall_tracer(
    registry: Optional[MetricRegistry] = None, bounds: Optional[Sequence[float]] = None
) -> Tracer:
    """A tracer keyed on the process's monotonic wall clock."""
    return Tracer(
        clock=time.perf_counter, registry=registry, bounds=bounds, clock_name="wall"
    )
