"""Metric primitives: counters, gauges, and fixed-bucket histograms.

Every metric is a plain in-process object — recording is a couple of
attribute updates, never an allocation of simulation events, a read of
the random stream, or any other interaction with the system under
observation.  That property is load-bearing: the determinism tests
assert that a fixed-seed simulation produces byte-identical accounting
output with telemetry sinks on and off.

Names follow the ``repro.<layer>.<name>`` convention (see
docs/architecture.md §Telemetry); an optional label set distinguishes
instances of the same metric (e.g. one queue-occupancy gauge per
subscriber).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, str]) -> LabelPairs:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def exponential_buckets(start: float, factor: float, count: int) -> List[float]:
    """``count`` bucket upper bounds growing geometrically from ``start``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds = []
    edge = float(start)
    for _ in range(count):
        bounds.append(edge)
        edge *= factor
    return bounds


#: Default span/latency bucket bounds: 1 us .. ~16 s, powers of four.
DEFAULT_LATENCY_BUCKETS_S = exponential_buckets(1e-6, 4.0, 13)


class Metric:
    """Common identity of every metric instance."""

    kind = "metric"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})

    def __repr__(self) -> str:
        return "<{} {}{}>".format(
            type(self).__name__, self.name, self.labels or ""
        )

    @property
    def full_name(self) -> str:
        """Name plus rendered labels, e.g. ``repro.q.depth{site=s1}``."""
        if not self.labels:
            return self.name
        rendered = ",".join(
            "{}={}".format(k, v) for k, v in sorted(self.labels.items())
        )
        return "{}{{{}}}".format(self.name, rendered)

    def value_dict(self) -> Dict[str, object]:
        """The metric's current value(s) as plain JSON-able data."""
        raise NotImplementedError

    def reset(self) -> None:
        """Zero the metric in place (registered instances stay valid)."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up (amount={})".format(amount))
        self.value += amount

    def value_dict(self) -> Dict[str, object]:
        return {"value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Gauge(Metric):
    """A value that can go up and down; remembers its extremes."""

    kind = "gauge"

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, labels)
        self.value = 0.0
        self.max_seen = float("-inf")
        self.min_seen = float("inf")

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value
        if value > self.max_seen:
            self.max_seen = value
        if value < self.min_seen:
            self.min_seen = value

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta``."""
        self.set(self.value + delta)

    def value_dict(self) -> Dict[str, object]:
        observed = self.max_seen >= self.min_seen
        return {
            "value": self.value,
            "max": self.max_seen if observed else None,
            "min": self.min_seen if observed else None,
        }

    def reset(self) -> None:
        self.value = 0.0
        self.max_seen = float("-inf")
        self.min_seen = float("inf")


class Histogram(Metric):
    """Fixed-boundary histogram with sum/count/min/max.

    ``bounds`` are upper bucket edges; an observation lands in the first
    bucket whose bound is >= the value, or in the implicit overflow
    bucket past the last bound.  Bucket boundaries are frozen at
    construction so snapshots from different runs are always comparable.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(name, labels)
        chosen = list(bounds) if bounds is not None else list(DEFAULT_LATENCY_BUCKETS_S)
        if not chosen:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(chosen) != chosen:
            raise ValueError("bucket bounds must be sorted ascending")
        if len(set(chosen)) != len(chosen):
            raise ValueError("bucket bounds must be distinct")
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in chosen)
        #: One slot per bound plus the overflow bucket.
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min_seen = float("inf")
        self.max_seen = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket counts.

        Returns the upper bound of the bucket containing the q-th
        observation (the last finite bound for the overflow bucket);
        0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max_seen
        return self.max_seen

    def value_dict(self) -> Dict[str, object]:
        observed = self.count > 0
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min_seen if observed else None,
            "max": self.max_seen if observed else None,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    def reset(self) -> None:
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min_seen = float("inf")
        self.max_seen = float("-inf")
