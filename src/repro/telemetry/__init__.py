"""``repro.telemetry`` — dependency-free metrics, tracing, and sinks.

The observability layer every paper metric is derived from: counters,
gauges, fixed-bucket histograms, and a span tracer, all registered in a
process-wide :class:`MetricRegistry` with pluggable sinks (in-memory,
JSONL, one-line console reporter).

Metric names follow ``repro.<layer>.<name>`` (see docs/architecture.md
§Telemetry).  Recording is always on and near-free; *exporting* only
happens through explicitly attached sinks, and attaching sinks never
changes simulation results — determinism is tested, not promised.

Quick use::

    from repro import telemetry

    telemetry.counter("repro.demo.widgets").inc()
    telemetry.get_registry().add_sink(telemetry.JSONLSink("run.jsonl"))
    telemetry.get_registry().flush(now=env.now)
    telemetry.reset()  # between tests
"""

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    Metric,
    exponential_buckets,
    label_key,
)
from repro.telemetry.registry import (
    MetricRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    reset,
    set_registry,
)
from repro.telemetry.sinks import (
    ConsoleReporter,
    InMemorySink,
    JSONLSink,
    Sink,
    read_jsonl,
)
from repro.telemetry.tracer import Span, Tracer, sim_tracer, wall_tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "ConsoleReporter",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JSONLSink",
    "Metric",
    "MetricRegistry",
    "Sink",
    "Span",
    "Tracer",
    "counter",
    "exponential_buckets",
    "gauge",
    "get_registry",
    "histogram",
    "label_key",
    "read_jsonl",
    "reset",
    "set_registry",
    "sim_tracer",
    "wall_tracer",
]
