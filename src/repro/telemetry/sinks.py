"""Telemetry sinks: where snapshots and span events go.

Three implementations cover the use cases named in the design:

- :class:`InMemorySink` — tests inspect what was recorded;
- :class:`JSONLSink` — one JSON object per line, machine-readable;
- :class:`ConsoleReporter` — a single periodic status line for humans.

Sinks are pure observers.  They may write files or stdout, but they
never feed anything back into the code being measured — a registry with
sinks attached must behave byte-for-byte like one without.
"""

from __future__ import annotations

import io
import json
import time
from typing import Dict, List, Optional, Sequence, TextIO, Union


class Sink:
    """Base class; every hook is a no-op."""

    def on_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Receive one registry snapshot (see ``MetricRegistry.flush``)."""

    def on_event(self, event: Dict[str, object]) -> None:
        """Receive one discrete event (a closed span, a mark)."""

    def tick(self, registry: "MetricRegistry") -> None:  # noqa: F821
        """Called opportunistically from instrumented loops."""

    def close(self) -> None:
        """Release any resources (files); further writes are errors."""


class InMemorySink(Sink):
    """Keeps everything in lists; the test-suite sink."""

    def __init__(self) -> None:
        self.snapshots: List[Dict[str, object]] = []
        self.events: List[Dict[str, object]] = []

    def on_snapshot(self, snapshot: Dict[str, object]) -> None:
        self.snapshots.append(snapshot)

    def on_event(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def last_snapshot(self) -> Optional[Dict[str, object]]:
        """The most recent snapshot, or None."""
        return self.snapshots[-1] if self.snapshots else None


class JSONLSink(Sink):
    """Writes snapshots and events as JSON Lines.

    Accepts a path (opened lazily, closed by :meth:`close`) or any
    text-mode writable object.  Each line is self-describing:
    ``{"type": "snapshot"|"event", ...}``.
    """

    def __init__(self, target: Union[str, TextIO]) -> None:
        self._path: Optional[str] = None
        self._stream: Optional[TextIO] = None
        if isinstance(target, str):
            self._path = target
        else:
            self._stream = target
        self.lines_written = 0

    def _ensure_stream(self) -> TextIO:
        if self._stream is None:
            self._stream = io.open(self._path, "a", encoding="utf-8")
        return self._stream

    def _write(self, record: Dict[str, object]) -> None:
        stream = self._ensure_stream()
        stream.write(json.dumps(record, sort_keys=True, default=str))
        stream.write("\n")
        self.lines_written += 1

    def on_snapshot(self, snapshot: Dict[str, object]) -> None:
        record = {"type": "snapshot"}
        record.update(snapshot)
        self._write(record)

    def on_event(self, event: Dict[str, object]) -> None:
        record = {"type": "event"}
        record.update(event)
        self._write(record)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.flush()
            if self._path is not None:  # only close streams we opened
                self._stream.close()
            self._stream = None


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL telemetry file back into records."""
    records = []
    with io.open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class ConsoleReporter(Sink):
    """One status line per wall-clock interval.

    ``tick`` is invoked from instrumented loops (the engine's event
    loop, the RDN scheduler, the proxy); it rate-limits itself against
    the wall clock so enabling it never changes how often simulation
    code runs.
    """

    def __init__(
        self,
        interval_s: float = 1.0,
        prefixes: Optional[Sequence[str]] = None,
        max_fields: int = 8,
        stream: Optional[TextIO] = None,
        clock=time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("report interval must be positive")
        self.interval_s = float(interval_s)
        self.prefixes = tuple(prefixes) if prefixes else ()
        self.max_fields = max_fields
        self.stream = stream
        self.clock = clock
        self.reports = 0
        self._last = clock()

    def _selected(self, registry: "MetricRegistry") -> List[str]:  # noqa: F821
        fields = []
        for metric in registry.metrics():
            if self.prefixes and not metric.name.startswith(self.prefixes):
                continue
            values = metric.value_dict()
            value = values.get("value", values.get("count"))
            if isinstance(value, float) and value == int(value):
                value = int(value)
            fields.append("{}={}".format(metric.full_name, value))
            if len(fields) >= self.max_fields:
                break
        return fields

    def tick(self, registry: "MetricRegistry") -> None:  # noqa: F821
        now = self.clock()
        if now - self._last < self.interval_s:
            return
        self._last = now
        self.reports += 1
        line = "[telemetry] " + " ".join(self._selected(registry))
        if self.stream is not None:
            self.stream.write(line + "\n")
        else:
            print(line)
