"""The process-wide metric registry.

One :class:`MetricRegistry` holds every metric instance by
(name, labels) and fans snapshots/events out to its sinks.  A default
registry exists per process; tests swap or reset it between cases.

The registry is intentionally permissive about double registration:
``counter("x")`` always returns *the* counter named ``x``, creating it
on first use — instrumentation points scattered across modules never
need to coordinate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelPairs,
    Metric,
    label_key,
)
from repro.telemetry.sinks import Sink

_MetricKey = Tuple[str, LabelPairs]


class MetricRegistry:
    """All metrics of one process, plus the attached sinks."""

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._metrics: Dict[_MetricKey, Metric] = {}
        self._sinks: List[Sink] = []
        #: Monotonic count of flush() calls, stamped into snapshots.
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return "<MetricRegistry {} metrics={} sinks={}>".format(
            self.name, len(self._metrics), len(self._sinks)
        )

    # -- metric accessors (get-or-create) ----------------------------------

    def _get_or_create(
        self, cls, name: str, labels: Dict[str, str], **kwargs: object
    ) -> Metric:
        key = (name, label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels=labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                "metric {!r} already registered as {}".format(
                    name, type(metric).__name__
                )
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        """The histogram called ``name``.

        ``bounds`` only applies at creation; later calls return the
        existing instance with its original bucket boundaries.
        """
        key = (name, label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, bounds=bounds, labels=labels)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                "metric {!r} already registered as {}".format(
                    name, type(metric).__name__
                )
            )
        return metric

    def get(self, name: str, **labels: str) -> Optional[Metric]:
        """Look up an existing metric without creating it."""
        return self._metrics.get((name, label_key(labels)))

    def metrics(self, prefix: str = "") -> List[Metric]:
        """Registered metrics (optionally filtered), sorted by full name."""
        found = [
            metric
            for metric in self._metrics.values()
            if metric.name.startswith(prefix)
        ]
        return sorted(found, key=lambda metric: metric.full_name)

    # -- sinks --------------------------------------------------------------

    def add_sink(self, sink: Sink) -> Sink:
        """Attach a sink; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        """Detach a sink (no error if absent)."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    @property
    def sinks(self) -> List[Sink]:
        """The attached sinks (copy)."""
        return list(self._sinks)

    def emit(self, event: Dict[str, object]) -> None:
        """Push one discrete event (closed span, mark) to every sink."""
        for sink in self._sinks:
            sink.on_event(event)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """All metric values as one JSON-able document."""
        metrics = {}
        for metric in self.metrics():
            entry = {"kind": metric.kind}
            entry.update(metric.value_dict())
            metrics[metric.full_name] = entry
        return {"registry": self.name, "at": now, "metrics": metrics}

    def flush(self, now: Optional[float] = None) -> Dict[str, object]:
        """Snapshot and fan out to every sink; returns the snapshot."""
        self.flushes += 1
        snapshot = self.snapshot(now)
        for sink in self._sinks:
            sink.on_snapshot(snapshot)
        return snapshot

    def tick(self) -> None:
        """Give rate-limited sinks (console reporter) a chance to report.

        Cheap no-op without sinks, so instrumented loops can call it
        unconditionally.
        """
        for sink in self._sinks:
            sink.tick(self)

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Drop every metric and detach (closing) every sink.

        Existing metric handles cached by instrumented objects keep
        working but are no longer visible in snapshots — exactly what a
        test wants between cases.
        """
        self._metrics.clear()
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()
        self.flushes = 0

    def reset_values(self) -> None:
        """Zero every metric in place, keeping registrations and sinks."""
        for metric in self._metrics.values():
            metric.reset()


#: The process-wide default registry.
_default_registry = MetricRegistry()


def get_registry() -> MetricRegistry:
    """The process-wide registry instrumented code records into."""
    return _default_registry


def set_registry(registry: MetricRegistry) -> MetricRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def reset() -> None:
    """Reset the process-wide registry (metrics and sinks)."""
    _default_registry.reset()


# -- module-level conveniences bound to the default registry ---------------

def counter(name: str, **labels: str) -> Counter:
    """``get_registry().counter(...)``."""
    return _default_registry.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    """``get_registry().gauge(...)``."""
    return _default_registry.gauge(name, **labels)


def histogram(
    name: str, bounds: Optional[Sequence[float]] = None, **labels: str
) -> Histogram:
    """``get_registry().histogram(...)``."""
    return _default_registry.histogram(name, bounds=bounds, **labels)
