"""Merging metric snapshots from multiple processes into one view.

Each proxy worker process has its own process-wide
:class:`~repro.telemetry.registry.MetricRegistry`; the supervisor
receives their snapshots over the control channel and merges them here
so ``repro.proxy.*`` and scheduler metrics stay one coherent,
cluster-wide view regardless of how many workers the data plane runs.

Merge rules per metric kind:

- **counter** — values sum (events counted anywhere are events);
- **gauge** — values sum (per-worker occupancies/balances are shard
  slices of one whole), extremes take the min/max across workers;
- **histogram** — counts, sums, and per-bucket tallies sum when bucket
  bounds agree; a snapshot with different bounds for the same name is
  skipped rather than silently mis-bucketed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


def _opt_min(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _opt_max(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _merge_counter(into: Dict[str, object], entry: Dict[str, object]) -> None:
    into["value"] = float(into.get("value", 0.0)) + float(entry.get("value", 0.0))


def _merge_gauge(into: Dict[str, object], entry: Dict[str, object]) -> None:
    into["value"] = float(into.get("value", 0.0)) + float(entry.get("value", 0.0))
    into["max"] = _opt_max(into.get("max"), entry.get("max"))
    into["min"] = _opt_min(into.get("min"), entry.get("min"))


def _merge_histogram(into: Dict[str, object], entry: Dict[str, object]) -> bool:
    if list(into.get("bounds", [])) != list(entry.get("bounds", [])):
        return False
    into["count"] = int(into.get("count", 0)) + int(entry.get("count", 0))
    into["sum"] = float(into.get("sum", 0.0)) + float(entry.get("sum", 0.0))
    count = int(into["count"])
    into["mean"] = (float(into["sum"]) / count) if count else 0.0
    merged_buckets: List[int] = [
        int(a) + int(b)
        for a, b in zip(list(into.get("buckets", [])), list(entry.get("buckets", [])))
    ]
    into["buckets"] = merged_buckets
    into["min"] = _opt_min(into.get("min"), entry.get("min"))
    into["max"] = _opt_max(into.get("max"), entry.get("max"))
    return True


def merge_snapshots(
    snapshots: Iterable[Dict[str, object]], name: str = "aggregate"
) -> Dict[str, object]:
    """Merge registry snapshots into one snapshot-shaped document.

    Input documents are the output of
    :meth:`~repro.telemetry.registry.MetricRegistry.snapshot`; the
    result has the same shape (so sinks, dashboards, and tests consume
    aggregated and single-process views identically).
    """
    merged: Dict[str, Dict[str, object]] = {}
    skipped: List[str] = []
    latest_at: Optional[float] = None
    for snapshot in snapshots:
        at = snapshot.get("at")
        if isinstance(at, (int, float)):
            latest_at = at if latest_at is None else max(latest_at, float(at))
        metrics = snapshot.get("metrics")
        if not isinstance(metrics, dict):
            continue
        for full_name, entry in metrics.items():
            if not isinstance(entry, dict):
                continue
            kind = entry.get("kind")
            existing = merged.get(full_name)
            if existing is None:
                merged[full_name] = dict(entry)
                continue
            if existing.get("kind") != kind:
                skipped.append(full_name)
                continue
            if kind == "counter":
                _merge_counter(existing, entry)
            elif kind == "gauge":
                _merge_gauge(existing, entry)
            elif kind == "histogram":
                if not _merge_histogram(existing, entry):
                    skipped.append(full_name)
            else:  # unknown kind: first snapshot wins
                skipped.append(full_name)
    return {
        "registry": name,
        "at": latest_at,
        "metrics": merged,
        "skipped": sorted(set(skipped)),
    }
