"""Timed fault plans (what fails, when, and for how long)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence

#: A node process dies: it services nothing and reports nothing.
CRASH = "crash"
#: A crashed node comes back with clean state.
RESTART = "restart"
#: A node wedges: dispatched work piles up unserviced, reports stop.
HANG = "hang"
#: A hung node un-wedges.
RESUME = "resume"
#: A node's CPU degrades to ``factor`` of nominal speed (1.0 restores).
SLOW = "slow"
#: A node's network link goes down (packet mode only).
PARTITION = "partition"
#: A partitioned link comes back (packet mode only).
HEAL = "heal"

FAULT_KINDS = frozenset(
    {CRASH, RESTART, HANG, RESUME, SLOW, PARTITION, HEAL}
)


@dataclass(frozen=True)
class FaultAction:
    """One fault applied to one target at one simulated instant."""

    at_s: float
    kind: str
    #: Cluster target name: ``rpnN`` or ``secondaryN``.
    target: str
    #: SLOW only: the CPU-speed multiplier (0 < factor; 1.0 = nominal).
    factor: float = 1.0

    def validate(self) -> None:
        if self.at_s < 0:
            raise ValueError("fault time must be non-negative: {!r}".format(self))
        if self.kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind: {!r}".format(self.kind))
        if not self.target:
            raise ValueError("fault needs a target: {!r}".format(self))
        if self.kind == SLOW and self.factor <= 0:
            raise ValueError("slow factor must be positive: {!r}".format(self))


class FaultSchedule:
    """A validated, time-ordered sequence of fault actions."""

    def __init__(self, actions: Iterable[FaultAction] = ()) -> None:
        self._actions: List[FaultAction] = []
        for action in actions:
            self.add(action)

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self):
        return iter(self.actions())

    def __repr__(self) -> str:
        return "<FaultSchedule {} actions>".format(len(self._actions))

    def add(self, action: FaultAction) -> "FaultSchedule":
        """Validate and append one action; returns self for chaining."""
        action.validate()
        self._actions.append(action)
        return self

    def extend(self, other: "FaultSchedule") -> "FaultSchedule":
        """Merge another schedule's actions into this one."""
        for action in other:
            self.add(action)
        return self

    def actions(self) -> List[FaultAction]:
        """All actions in firing order.

        The sort is stable, so same-instant actions keep insertion
        order — a crash/restart pair at the same time stays a crash
        first.
        """
        return sorted(self._actions, key=lambda a: a.at_s)

    # -- common plan shapes --------------------------------------------------

    @classmethod
    def crash_restart(
        cls, target: str, at_s: float, down_s: float
    ) -> "FaultSchedule":
        """Crash ``target`` at ``at_s``, restart it ``down_s`` later."""
        if down_s <= 0:
            raise ValueError("outage duration must be positive")
        return cls(
            [
                FaultAction(at_s, CRASH, target),
                FaultAction(at_s + down_s, RESTART, target),
            ]
        )

    @classmethod
    def hang_resume(cls, target: str, at_s: float, hung_s: float) -> "FaultSchedule":
        """Wedge ``target`` at ``at_s`` for ``hung_s`` seconds."""
        if hung_s <= 0:
            raise ValueError("hang duration must be positive")
        return cls(
            [
                FaultAction(at_s, HANG, target),
                FaultAction(at_s + hung_s, RESUME, target),
            ]
        )

    @classmethod
    def degrade(
        cls, target: str, at_s: float, factor: float, for_s: float
    ) -> "FaultSchedule":
        """Run ``target`` at ``factor`` CPU speed for ``for_s`` seconds."""
        if for_s <= 0:
            raise ValueError("degradation duration must be positive")
        return cls(
            [
                FaultAction(at_s, SLOW, target, factor=factor),
                FaultAction(at_s + for_s, SLOW, target, factor=1.0),
            ]
        )

    @classmethod
    def partition_heal(
        cls, target: str, at_s: float, for_s: float
    ) -> "FaultSchedule":
        """Cut ``target``'s link at ``at_s``, heal it ``for_s`` later."""
        if for_s <= 0:
            raise ValueError("partition duration must be positive")
        return cls(
            [
                FaultAction(at_s, PARTITION, target),
                FaultAction(at_s + for_s, HEAL, target),
            ]
        )

    @classmethod
    def random_plan(
        cls,
        rng: random.Random,
        targets: Sequence[str],
        duration_s: float,
        outages: int = 3,
        mean_outage_s: float = 2.0,
    ) -> "FaultSchedule":
        """A seeded random crash/restart plan over ``targets``.

        Drawing from a :class:`~repro.sim.rng.RandomStreams` stream
        (e.g. ``streams.stream("faults")``) makes the whole chaos run
        reproducible from the experiment seed.  Outages never overlap on
        the same target: each target's next crash is drawn after its
        previous restart.
        """
        if not targets:
            raise ValueError("need at least one fault target")
        if duration_s <= 0:
            raise ValueError("plan duration must be positive")
        schedule = cls()
        busy_until = {target: 0.0 for target in targets}
        for _ in range(outages):
            target = rng.choice(list(targets))
            start = busy_until[target] + rng.uniform(0.0, duration_s / max(1, outages))
            down = rng.expovariate(1.0 / mean_outage_s)
            down = max(0.1, min(down, duration_s / 2))
            if start + down >= duration_s:
                continue
            schedule.extend(cls.crash_restart(target, start, down))
            busy_until[target] = start + down
        return schedule
