"""Deterministic fault injection for Gage clusters.

Failures in the paper's setting are mundane — a back-end node crashes,
an operator restarts it, a handshake-offload node wedges, a switch port
flaps — but their *timing* relative to accounting and scheduling cycles
decides whether the QoS guarantees hold through them.  This package
makes those timings first-class and reproducible:

- :class:`FaultAction` — one timed fault (crash / restart / hang /
  resume / slow / partition / heal) against one named target;
- :class:`FaultSchedule` — a validated, time-ordered plan of actions,
  composable and buildable from seeded randomness
  (:meth:`FaultSchedule.random_plan` with a
  :class:`~repro.sim.rng.RandomStreams` stream);
- :class:`FaultInjector` — arms a schedule against a cluster on the
  simulator clock and records what actually fired.

The injector is duck-typed against the cluster (it only calls
``crash``/``restore``/``hang``/``resume``/``slow``/``partition``/
``heal``), so this package never imports ``repro.core`` and anything
exposing those methods can be fault-tested.
"""

from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    CRASH,
    FAULT_KINDS,
    HANG,
    HEAL,
    PARTITION,
    RESTART,
    RESUME,
    SLOW,
    FaultAction,
    FaultSchedule,
)

__all__ = [
    "CRASH",
    "RESTART",
    "HANG",
    "RESUME",
    "SLOW",
    "PARTITION",
    "HEAL",
    "FAULT_KINDS",
    "FaultAction",
    "FaultSchedule",
    "FaultInjector",
]
