"""Arming a fault schedule against a live cluster."""

from __future__ import annotations

from typing import List, Tuple

from repro.faults.schedule import (
    CRASH,
    HANG,
    HEAL,
    PARTITION,
    RESTART,
    RESUME,
    SLOW,
    FaultAction,
    FaultSchedule,
)


class FaultInjector:
    """Fires a :class:`FaultSchedule` on the simulator clock.

    ``cluster`` is duck-typed: it needs ``crash(target)``,
    ``restore(target)``, ``hang(target)``, ``resume(target)``,
    ``slow(target, factor)``, ``partition(target)`` and
    ``heal(target)`` — :class:`~repro.core.simulation.GageCluster`
    provides all seven.  Every action that fires is appended to
    :attr:`applied` as ``(fired_at_s, action)``.
    """

    def __init__(self, env, cluster, schedule: FaultSchedule) -> None:
        self.env = env
        self.cluster = cluster
        self.schedule = schedule
        self.applied: List[Tuple[float, FaultAction]] = []
        for action in schedule:
            if action.at_s < env.now:
                raise ValueError(
                    "fault at {:.3f}s is already in the past (now={:.3f}s)".format(
                        action.at_s, env.now
                    )
                )
            env.call_later(action.at_s - env.now, self._fire, action)

    def __repr__(self) -> str:
        return "<FaultInjector {}/{} fired>".format(
            len(self.applied), len(self.schedule)
        )

    def _fire(self, action: FaultAction) -> None:
        if action.kind == CRASH:
            self.cluster.crash(action.target)
        elif action.kind == RESTART:
            self.cluster.restore(action.target)
        elif action.kind == HANG:
            self.cluster.hang(action.target)
        elif action.kind == RESUME:
            self.cluster.resume(action.target)
        elif action.kind == SLOW:
            self.cluster.slow(action.target, action.factor)
        elif action.kind == PARTITION:
            self.cluster.partition(action.target)
        elif action.kind == HEAL:
            self.cluster.heal(action.target)
        else:  # pragma: no cover - schedule validation forbids this
            raise RuntimeError("unreachable fault kind: {!r}".format(action.kind))
        self.applied.append((self.env.now, action))
