"""A best-effort (no-QoS) request dispatcher.

This is the comparator the paper measures Gage's throughput penalty
against (§4.3: "we also measured the throughput each RPN can support
without Gage ... 550.5 requests/sec, compared to 540 requests/sec when
Gage is in place").  Requests are forwarded immediately — no
classification against reservations, no credit scheduling, no usage
accounting — to the back-end with the fewest requests in flight.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.webserver import WebServer
from repro.sim.engine import Environment
from repro.workload.request import RequestRecord, WebRequest


class BestEffortDispatcher:
    """Least-in-flight immediate dispatch across back-end web servers."""

    def __init__(
        self,
        env: Environment,
        webservers: List[WebServer],
        dispatch_latency_s: float = 0.0002,
        max_in_flight_per_server: int = 256,
    ) -> None:
        if not webservers:
            raise ValueError("need at least one back-end server")
        self.env = env
        self.webservers = list(webservers)
        self.dispatch_latency_s = dispatch_latency_s
        self.max_in_flight = max_in_flight_per_server
        self._in_flight: Dict[int, int] = {i: 0 for i in range(len(webservers))}
        self._rotation = 0  # rotating tie-break for equal in-flight counts
        self.submitted = 0
        self.dropped = 0
        #: (time, host) per completion.
        self.completions: List[Tuple[float, str]] = []
        for server in self.webservers:
            server.on_complete.append(self._on_complete)

    def _on_complete(self, host: str, _request: WebRequest, _usage, at: float) -> None:
        self.completions.append((at, host))

    def submit(self, request: WebRequest) -> bool:
        """Dispatch one request immediately; False if every server is full."""
        self.submitted += 1
        count = len(self.webservers)
        self._rotation += 1
        index = min(
            self._in_flight,
            key=lambda i: (self._in_flight[i], (i - self._rotation) % count),
        )
        if self._in_flight[index] >= self.max_in_flight:
            self.dropped += 1
            return False
        self._in_flight[index] += 1
        server = self.webservers[index]
        self.env.call_later(
            self.dispatch_latency_s,
            lambda: self.env.process(self._service(server, index, request)),
        )
        return True

    def _service(self, server: WebServer, index: int, request: WebRequest):
        try:
            yield self.env.process(server.service_request(request))
        finally:
            self._in_flight[index] -= 1

    def load_trace(self, records: List[RequestRecord]) -> None:
        """Schedule a trace for immediate-dispatch issue."""
        for record in records:
            self.env.call_later(
                max(0.0, record.at_s - self.env.now),
                lambda r=record: self.submit(r.to_request()),
            )

    def completed_rate(self, start_s: float, end_s: float, host: Optional[str] = None) -> float:
        """Completions per second in a window (optionally one host)."""
        count = sum(
            1
            for at, h in self.completions
            if start_s <= at < end_s and (host is None or h == host)
        )
        duration = end_s - start_s
        return count / duration if duration > 0 else 0.0
