"""A request-count weighted-fair dispatcher (no resource accounting).

§2 of the paper criticizes user-level QoS systems because they "cannot
have an accurate system resource usage information, and consequently the
QoS support is mostly qualitative rather than quantitative."  This
baseline makes that failure measurable: it runs the same weighted
round-robin queueing as Gage but meters *request counts* against the
reservations instead of measured CPU/disk/network usage.

When every request costs the same it behaves exactly like Gage.  When
subscribers' requests differ in cost — one serves 1 KB pages, another
64 KB pages — count-fairness hands the expensive-page subscriber several
times its paid-for resources, and its neighbours' guarantees quietly
evaporate.  Benchmark: ``benchmarks/test_ablation_count_fairness.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

from repro.cluster.webserver import WebServer
from repro.sim.engine import Environment
from repro.workload.request import RequestRecord, WebRequest


@dataclass
class CountFairQueue:
    """One subscriber's queue with a requests-per-second reservation."""

    name: str
    reserved_rps: float
    queue_capacity: int = 2048
    queue: Deque[WebRequest] = field(default_factory=deque, repr=False)
    balance: float = 0.0
    arrived: int = 0
    dropped: int = 0
    dispatched: int = 0


class CountFairDispatcher:
    """WRR over request *counts*: Gage minus the accounting feedback."""

    #: A queue may bank at most this many cycles of unused count credit.
    CREDIT_CAP_CYCLES = 4.0

    def __init__(
        self,
        env: Environment,
        webservers: List[WebServer],
        cycle_s: float = 0.010,
        max_in_flight_per_server: int = 64,
    ) -> None:
        if not webservers:
            raise ValueError("need at least one back-end server")
        if cycle_s <= 0:
            raise ValueError("cycle must be positive")
        self.env = env
        self.webservers = list(webservers)
        self.cycle_s = cycle_s
        self.max_in_flight = max_in_flight_per_server
        self._in_flight: Dict[int, int] = {i: 0 for i in range(len(webservers))}
        self._queues: Dict[str, CountFairQueue] = {}
        #: (time, host) per completion.
        self.completions: List[Tuple[float, str]] = []
        for server in self.webservers:
            server.on_complete.append(
                lambda host, _req, _usage, at: self.completions.append((at, host))
            )
        env.process(self._loop())

    def add_subscriber(
        self, name: str, reserved_rps: float, queue_capacity: int = 2048
    ) -> CountFairQueue:
        """Register one subscriber with a requests/second reservation."""
        if name in self._queues:
            raise RuntimeError("subscriber {!r} already exists".format(name))
        if reserved_rps < 0:
            raise ValueError("negative reservation")
        queue = CountFairQueue(name, reserved_rps, queue_capacity)
        self._queues[name] = queue
        return queue

    def submit(self, request: WebRequest) -> bool:
        """Queue one request under its host's subscriber."""
        queue = self._queues.get(request.host)
        if queue is None:
            return False
        queue.arrived += 1
        if len(queue.queue) >= queue.queue_capacity:
            queue.dropped += 1
            return False
        queue.queue.append(request)
        return True

    def load_trace(self, records: List[RequestRecord]) -> None:
        """Schedule a trace for issue."""
        for record in records:
            self.env.call_later(
                max(0.0, record.at_s - self.env.now),
                lambda r=record: self.submit(r.to_request()),
            )

    def completed_rate(self, host: str, start_s: float, end_s: float) -> float:
        """Completions per second for one host in a window."""
        count = sum(1 for at, h in self.completions if h == host and start_s <= at < end_s)
        duration = end_s - start_s
        return count / duration if duration > 0 else 0.0

    def _loop(self):
        while True:
            yield self.env.timeout(self.cycle_s)
            # Reserved pass: counts, not resources.
            for queue in self._queues.values():
                credit = queue.reserved_rps * self.cycle_s
                cap = credit * self.CREDIT_CAP_CYCLES
                queue.balance = min(queue.balance + credit, max(cap, 1.0))
                while queue.queue and queue.balance >= 1.0:
                    if not self._dispatch(queue):
                        break
                    queue.balance -= 1.0
            # Spare pass: leftover dispatch slots by reservation weight.
            backlogged = [q for q in self._queues.values() if q.queue]
            total = sum(q.reserved_rps for q in backlogged) or len(backlogged)
            for queue in backlogged:
                weight = (queue.reserved_rps or 1.0) / total
                share = self._spare_slots() * weight
                while queue.queue and share >= 1.0:
                    if not self._dispatch(queue):
                        break
                    share -= 1.0

    def _spare_slots(self) -> float:
        free = sum(
            max(0, self.max_in_flight - self._in_flight[i])
            for i in range(len(self.webservers))
        )
        return float(free)

    def _dispatch(self, queue: CountFairQueue) -> bool:
        index = min(self._in_flight, key=lambda i: self._in_flight[i])
        if self._in_flight[index] >= self.max_in_flight:
            return False
        request = queue.queue.popleft()
        queue.dispatched += 1
        self._in_flight[index] += 1
        self.env.process(self._service(index, request))
        return True

    def _service(self, index: int, request: WebRequest):
        try:
            yield self.env.process(self.webservers[index].service_request(request))
        finally:
            self._in_flight[index] -= 1
