"""Comparison systems.

- :class:`BestEffortDispatcher` — the "without Gage" configuration of
  §4.3: no queues, no reservations, no accounting; every request goes
  straight to the least-loaded back-end.
- :class:`PriorityDispatcher` — the related-work strawman (§2): strict
  priority classes give *qualitative* differentiation but no quantitative
  guarantee, so a flood of high-priority traffic starves everyone else.
"""

from repro.baselines.besteffort import BestEffortDispatcher
from repro.baselines.countfair import CountFairDispatcher, CountFairQueue
from repro.baselines.priority import PriorityClass, PriorityDispatcher

__all__ = [
    "BestEffortDispatcher",
    "CountFairDispatcher",
    "CountFairQueue",
    "PriorityClass",
    "PriorityDispatcher",
]
