"""A strict-priority class dispatcher (the related-work strawman).

§2 of the paper: "Most other efforts at providing quality of service in
web hosting clusters are priority-based, i.e., they do not provide
guaranteed QoS ... these approaches allow one service class to receive
qualitatively better service than the other, but do not provide a
quantitative bound."

This dispatcher demonstrates exactly that failure mode: higher classes
always drain first, so an overloaded premium class starves basic-class
subscribers entirely — the behaviour Gage's credit scheduler eliminates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

from repro.cluster.webserver import WebServer
from repro.sim.engine import Environment
from repro.workload.request import RequestRecord, WebRequest


@dataclass
class PriorityClass:
    """One service class: lower ``level`` drains first."""

    name: str
    level: int
    queue_capacity: int = 2048
    queue: Deque[WebRequest] = field(default_factory=deque, repr=False)
    arrived: int = 0
    dropped: int = 0
    dispatched: int = 0


class PriorityDispatcher:
    """Strict-priority queueing over the same back-end substrate."""

    def __init__(
        self,
        env: Environment,
        webservers: List[WebServer],
        cycle_s: float = 0.010,
        dispatches_per_cycle: int = 16,
        max_in_flight_per_server: int = 64,
    ) -> None:
        if not webservers:
            raise ValueError("need at least one back-end server")
        self.env = env
        self.webservers = list(webservers)
        self.cycle_s = cycle_s
        self.dispatches_per_cycle = dispatches_per_cycle
        self.max_in_flight = max_in_flight_per_server
        self._in_flight: Dict[int, int] = {i: 0 for i in range(len(webservers))}
        self._classes: Dict[str, PriorityClass] = {}
        self._host_class: Dict[str, str] = {}
        #: (time, host) per completion.
        self.completions: List[Tuple[float, str]] = []
        for server in self.webservers:
            server.on_complete.append(
                lambda host, _req, _usage, at: self.completions.append((at, host))
            )
        env.process(self._loop())

    def add_class(self, name: str, level: int, hosts: List[str], queue_capacity: int = 2048) -> PriorityClass:
        """Register a priority class and the hosts it covers."""
        if name in self._classes:
            raise RuntimeError("class {!r} already exists".format(name))
        cls = PriorityClass(name=name, level=level, queue_capacity=queue_capacity)
        self._classes[name] = cls
        for host in hosts:
            self._host_class[host] = name
        return cls

    def submit(self, request: WebRequest) -> bool:
        """Queue a request under its host's class."""
        class_name = self._host_class.get(request.host)
        if class_name is None:
            return False
        cls = self._classes[class_name]
        cls.arrived += 1
        if len(cls.queue) >= cls.queue_capacity:
            cls.dropped += 1
            return False
        cls.queue.append(request)
        return True

    def load_trace(self, records: List[RequestRecord]) -> None:
        """Schedule a trace for issue."""
        for record in records:
            self.env.call_later(
                max(0.0, record.at_s - self.env.now),
                lambda r=record: self.submit(r.to_request()),
            )

    def _loop(self):
        while True:
            yield self.env.timeout(self.cycle_s)
            budget = self.dispatches_per_cycle
            for cls in sorted(self._classes.values(), key=lambda c: c.level):
                while budget > 0 and cls.queue:
                    index = min(self._in_flight, key=lambda i: self._in_flight[i])
                    if self._in_flight[index] >= self.max_in_flight:
                        budget = 0
                        break
                    request = cls.queue.popleft()
                    cls.dispatched += 1
                    budget -= 1
                    self._in_flight[index] += 1
                    self.env.process(self._service(index, request))

    def _service(self, index: int, request: WebRequest):
        try:
            yield self.env.process(self.webservers[index].service_request(request))
        finally:
            self._in_flight[index] -= 1

    def completed_rate(self, host: str, start_s: float, end_s: float) -> float:
        """Completions per second for one host in a window."""
        count = sum(1 for at, h in self.completions if h == host and start_s <= at < end_s)
        duration = end_s - start_s
        return count / duration if duration > 0 else 0.0

    def class_of(self, name: str) -> PriorityClass:
        """Look up a registered class."""
        return self._classes[name]
