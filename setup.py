"""Setup shim, plus the opt-in mypyc build of the engine hot path.

The default install is pure Python (``pip install -e . --no-build-isolation
--no-use-pep517`` works offline — the sandbox this reproduction was
developed in has no ``wheel`` package and no network access).  All real
metadata lives in ``pyproject.toml``.

Setting ``REPRO_MYPYC=1`` compiles the five hot modules
(:mod:`repro.sim.events`, :mod:`repro.sim.process`, :mod:`repro.sim.engine`,
:mod:`repro.net.packet`, :mod:`repro.net.tcp`) to C extensions with mypyc.
That requires mypy to be installed; use ``scripts/build_compiled.py`` for
the full in-place build (it also writes the ``_compiled_stamp.json`` the
loader in :mod:`repro._compiled` demands before trusting the extensions).
"""

import importlib.util
import os

from setuptools import setup


def _compiled_module_list():
    """COMPILED_MODULES from repro/_compiled.py without importing repro.

    The loader module is self-contained by design; loading it standalone
    keeps ``setup.py`` from executing the whole package at build time.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    path = os.path.join(here, "src", "repro", "_compiled.py")
    spec = importlib.util.spec_from_file_location("_repro_compiled_meta", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.COMPILED_MODULES


ext_modules = []
if os.environ.get("REPRO_MYPYC", "") not in ("", "0"):
    from mypyc.build import mypycify

    sources = [
        os.path.join("src", "repro", rel) for _name, rel in _compiled_module_list()
    ]
    ext_modules = mypycify(sources, strip_asserts=False)

setup(ext_modules=ext_modules)
