"""Legacy setup shim.

The sandbox this reproduction was developed in has no ``wheel`` package and
no network access, so PEP-517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
