#!/usr/bin/env python
"""Build (or clean) the mypyc-compiled engine core, in place.

Usage::

    python scripts/build_compiled.py            # build extensions + stamp
    python scripts/build_compiled.py --clean    # remove extensions + stamp
    python scripts/build_compiled.py --status   # print the loader decision

Building runs ``setup.py build_ext --inplace`` with ``REPRO_MYPYC=1`` so
the five hot modules (see ``repro._compiled.COMPILED_MODULES``) are
compiled next to their sources, then writes ``_compiled_stamp.json`` —
without the stamp the loader refuses the extensions, so a build that
dies halfway can never be picked up silently.  Requires mypy (for
mypyc) and a C compiler; the pure-Python tree keeps working regardless.

Exit status: 0 on success, 1 on build failure or (for ``--status``)
when the compiled build is not active.
"""

import argparse
import glob
import importlib.util
import json
import os
import platform
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PACKAGE_DIR = os.path.join(REPO_ROOT, "src", "repro")


def load_loader():
    """The repro._compiled module, loaded standalone (no package import)."""
    path = os.path.join(PACKAGE_DIR, "_compiled.py")
    spec = importlib.util.spec_from_file_location("_repro_compiled_meta", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def extension_paths(loader):
    """Every built extension sitting next to the five hot modules."""
    paths = []
    for _name, rel_source in loader.COMPILED_MODULES:
        root, _ = os.path.splitext(os.path.join(PACKAGE_DIR, rel_source))
        paths.extend(sorted(glob.glob(root + ".*.so")))
        paths.extend(sorted(glob.glob(root + ".*.pyd")))
    return paths


def clean(loader):
    removed = list(extension_paths(loader))
    for path in removed:
        os.remove(path)
    stamp = os.path.join(PACKAGE_DIR, loader.STAMP_FILENAME)
    if os.path.exists(stamp):
        os.remove(stamp)
        removed.append(stamp)
    for path in removed:
        print("removed {}".format(os.path.relpath(path, REPO_ROOT)))
    if not removed:
        print("nothing to clean")
    return 0


def build(loader):
    env = dict(os.environ)
    env["REPRO_MYPYC"] = "1"
    proc = subprocess.run(
        [sys.executable, "setup.py", "build_ext", "--inplace"],
        cwd=REPO_ROOT,
        env=env,
    )
    if proc.returncode != 0:
        print("build_ext failed (exit {})".format(proc.returncode), file=sys.stderr)
        return 1
    built = extension_paths(loader)
    missing = [
        name
        for name, rel in loader.COMPILED_MODULES
        if not any(
            os.path.basename(path).split(".")[0]
            == os.path.splitext(os.path.basename(rel))[0]
            and os.path.dirname(path) == os.path.dirname(os.path.join(PACKAGE_DIR, rel))
            for path in built
        )
    ]
    if missing:
        print("build produced no extension for: {}".format(", ".join(missing)), file=sys.stderr)
        return 1
    stamp = {
        "api_version": loader.API_VERSION,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "modules": [name for name, _rel in loader.COMPILED_MODULES],
    }
    stamp_path = os.path.join(PACKAGE_DIR, loader.STAMP_FILENAME)
    with open(stamp_path, "w") as handle:
        json.dump(stamp, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for path in built:
        print("built {}".format(os.path.relpath(path, REPO_ROOT)))
    print("stamped {} (api_version={})".format(
        os.path.relpath(stamp_path, REPO_ROOT), loader.API_VERSION))
    return 0


def status(loader):
    decision = loader.probe()
    print(repr(decision))
    for name, path in sorted(decision.extensions.items()):
        print("  {} -> {}".format(name, os.path.relpath(path, REPO_ROOT)))
    return 0 if decision.active else 1


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--clean", action="store_true", help="remove built extensions and stamp")
    group.add_argument("--status", action="store_true", help="print the loader decision")
    args = parser.parse_args(argv)
    loader = load_loader()
    if args.clean:
        return clean(loader)
    if args.status:
        return status(loader)
    return build(loader)


if __name__ == "__main__":
    sys.exit(main())
