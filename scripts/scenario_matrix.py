#!/usr/bin/env python
"""Run the scenario matrix: topology × workload × faults in one command.

Examples:

    # The full matrix, 4 worker processes:
    PYTHONPATH=src python scripts/scenario_matrix.py --processes 4

    # One topology against two workloads, inline (no pool):
    PYTHONPATH=src python scripts/scenario_matrix.py \
        --topologies mixed_2tier --workloads steady,misbehave --faults none

Each scenario reports the conforming subscribers' guarantee deviation
(the Figure 3 metric) and whether it stays within the paper's 8% bound;
--json dumps the raw per-scenario dicts for downstream tooling.  The
exit status is non-zero when any scenario violates the bound, so the CI
smoke leg doubles as an assertion.
"""

import argparse
import json
import sys

sys.path.insert(0, "src")

from repro.harness.scenarios import (  # noqa: E402
    FAULTS,
    TOPOLOGIES,
    WORKLOADS,
    format_report,
    run_matrix,
)


def _csv(values: str) -> list:
    return [item for item in values.split(",") if item]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--topologies",
        type=_csv,
        default=sorted(TOPOLOGIES),
        help="comma-separated topology names (default: all: %(default)s)",
    )
    parser.add_argument(
        "--workloads",
        type=_csv,
        default=list(WORKLOADS),
        help="comma-separated workload scenarios (default: all: %(default)s)",
    )
    parser.add_argument(
        "--faults",
        type=_csv,
        default=list(FAULTS),
        help="comma-separated fault modes (default: all: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--duration", type=float, default=20.0, help="seconds simulated per scenario"
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=0,
        help="worker processes (0 = inline in this process)",
    )
    parser.add_argument(
        "--json", metavar="FILE", help="also dump raw per-scenario dicts to FILE"
    )
    args = parser.parse_args(argv)

    total = len(args.topologies) * len(args.workloads) * len(args.faults)
    print(
        "running {} scenarios ({} topologies x {} workloads x {} faults)".format(
            total, len(args.topologies), len(args.workloads), len(args.faults)
        )
    )

    def progress(result):
        print(
            "  done: {topology} / {workload} / {fault} -> {dev:.2f}%".format(
                dev=result["max_conforming_deviation_pct"], **{
                    k: result[k] for k in ("topology", "workload", "fault")
                }
            )
        )

    results = run_matrix(
        topologies=args.topologies,
        workloads=args.workloads,
        faults=args.faults,
        base_seed=args.seed,
        duration_s=args.duration,
        processes=args.processes,
        progress=progress,
    )
    print()
    print(format_report(results))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print("\nraw results written to {}".format(args.json))
    violations = [r for r in results if not r["within_bound"]]
    if violations:
        print(
            "\n{} scenario(s) violated the {}% bound".format(
                len(violations), results[0]["bound_pct"]
            )
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
