#!/usr/bin/env python
"""Diff two benchstore documents (or directories of them) for CI gating.

Usage::

    python scripts/bench_compare.py OLD NEW [--tolerance 0.5]
                                    [--figure-tolerance 0.05]

``OLD`` and ``NEW`` are either two ``BENCH_*.json`` files or two
directories containing them (matched by filename).  Exit status:

- 0 — every common benchmark is within tolerance;
- 1 — a timing regressed or a reported figure drifted past tolerance,
  or a baseline benchmark/suite vanished from NEW;
- 2 — usage or unreadable/invalid input.

Gating rules, per benchmark — the two tolerances are deliberately
separate because the two signals have very different noise floors:

- **timing** (``--tolerance``): ``median_s`` in NEW may not exceed OLD
  by more than the tolerance fraction (faster is always fine).  Shared
  CI runners jitter tens of percent, so this gate is forgiving: it
  exists to catch a 2× cliff, not a 10% wobble.
- **figures** (``--figure-tolerance``): every numeric ``extra_info``
  value (the paper-figure numbers the benchmarks export, e.g. deviation
  percentages) may not drift — in either direction — by more than the
  tolerance fraction of the old magnitude.  Figures come from
  fixed-seed simulations and are machine-independent, so this gate is
  tight.
- **perf figures**: ``extra_info`` keys prefixed ``perf_`` are
  machine-*dependent* measurements (RPS, latency quantiles, hit rates
  from real-socket benchmarks); they are gated at the forgiving timing
  tolerance instead of the figure tolerance.
- **configuration keys**: ``extra_info`` keys that name the run's
  configuration (``workers``, ``min_cores``) must match *exactly* — a
  4-worker baseline diffed against a 1-worker run is meaningless at any
  tolerance, so the mismatch itself is the failure.
- **core-gated records**: a record whose ``extra_info`` carries a
  numeric ``min_cores`` needs that much real parallelism for its
  machine-dependent numbers to mean anything.  When the candidate run's
  environment has fewer cores, timing and ``perf_`` drifts are reported
  as *advisory* instead of failing — a 1-core runner time-slicing four
  worker processes cannot exhibit (or refute) process-level speedup,
  and committing its numbers as hard truth would gate on noise.
  Fixed-seed figure keys still gate normally.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

# The script must run from a checkout without installation.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.harness.benchstore import load_suite  # noqa: E402

#: extra_info keys with this prefix are machine-dependent performance
#: numbers, gated at the timing tolerance rather than the figure one.
PERF_PREFIX = "perf_"

#: extra_info keys that describe the benchmark *configuration* rather
#: than a measurement (e.g. ``workers`` for the sharded-proxy suite):
#: OLD and NEW must match exactly — numbers measured under different
#: configurations are not comparable at any tolerance, so a mismatched
#: baseline fails loudly instead of silently passing the drift gate.
CONFIG_KEYS = frozenset({"workers", "min_cores"})


def available_cores(new_doc):
    """Cores on the machine that produced NEW.

    Prefers the document's own environment stamp (``cpus``, recorded at
    measurement time); falls back to this process's view for documents
    written before the stamp existed.
    """
    environment = new_doc.get("environment", {})
    try:
        cores = int(environment.get("cpus", ""))
    except (TypeError, ValueError):
        cores = 0
    if cores <= 0:
        cores = os.cpu_count() or 1
    return cores


def _load(path):
    try:
        return load_suite(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print("error: cannot read {}: {}".format(path, exc), file=sys.stderr)
        raise SystemExit(2) from exc


def _pair_paths(old, new):
    """Resolve (old, new) into a list of (label, old_path, new_path)."""
    if os.path.isdir(old) != os.path.isdir(new):
        print("error: OLD and NEW must both be files or both be directories",
              file=sys.stderr)
        raise SystemExit(2)
    if not os.path.isdir(old):
        return [(os.path.basename(old), old, new)], []
    pairs, missing = [], []
    for old_path in sorted(glob.glob(os.path.join(old, "BENCH_*.json"))):
        name = os.path.basename(old_path)
        new_path = os.path.join(new, name)
        if os.path.exists(new_path):
            pairs.append((name, old_path, new_path))
        else:
            missing.append(name)
    if not pairs and not missing:
        print("error: no BENCH_*.json files under {}".format(old), file=sys.stderr)
        raise SystemExit(2)
    return pairs, missing


def compare_suites(old_doc, new_doc, tolerance, figure_tolerance=None):
    """Compare two suite documents; returns a list of problem strings."""
    if figure_tolerance is None:
        figure_tolerance = tolerance
    problems = []
    cores = available_cores(new_doc)
    old_benches = old_doc["benchmarks"]
    new_benches = new_doc["benchmarks"]
    for name in sorted(old_benches):
        old_rec = old_benches[name]
        new_rec = new_benches.get(name)
        if new_rec is None:
            problems.append("{}: missing from NEW".format(name))
            continue
        old_extra = old_rec.get("extra_info", {})
        new_extra = new_rec.get("extra_info", {})
        # Machine-dependent numbers from a record that needs more cores
        # than this runner has are advisory, not gating.
        min_cores = new_extra.get("min_cores", old_extra.get("min_cores"))
        advisory = (
            isinstance(min_cores, (int, float))
            and not isinstance(min_cores, bool)
            and cores < float(min_cores)
        )
        old_median = float(old_rec["median_s"])
        new_median = float(new_rec["median_s"])
        limit = old_median * (1.0 + tolerance)
        status = "ok"
        if new_median > limit and old_median > 0:
            message = (
                "{}: median {:.6f}s -> {:.6f}s (+{:.1f}%, limit +{:.0f}%)".format(
                    name,
                    old_median,
                    new_median,
                    100.0 * (new_median - old_median) / old_median,
                    100.0 * tolerance,
                )
            )
            if advisory:
                status = "advisory ({} cores < min_cores {})".format(
                    cores, min_cores
                )
                print("  advisory (not gating): " + message)
            else:
                status = "REGRESSED"
                problems.append(message)
        print(
            "  {:<40} median {:>10.6f}s -> {:>10.6f}s  {}".format(
                name, old_median, new_median, status
            )
        )
        for key in sorted(old_extra):
            old_value = old_extra[key]
            if isinstance(old_value, bool) or not isinstance(old_value, (int, float)):
                continue
            new_value = new_extra.get(key)
            if not isinstance(new_value, (int, float)) or isinstance(new_value, bool):
                problems.append("{}: extra_info {!r} missing from NEW".format(name, key))
                continue
            if key in CONFIG_KEYS:
                if float(new_value) != float(old_value):
                    problems.append(
                        "{}: configuration {!r} differs: {} (baseline) vs {} "
                        "(candidate) -- runs are not comparable".format(
                            name, key, old_value, new_value
                        )
                    )
                continue
            drift = abs(float(new_value) - float(old_value))
            is_perf = key.startswith(PERF_PREFIX)
            key_tolerance = tolerance if is_perf else figure_tolerance
            allowed = key_tolerance * max(abs(float(old_value)), 1e-9)
            if drift > allowed:
                message = (
                    "{}: extra_info {!r} drifted {} -> {} (allowed ±{:.4g})".format(
                        name, key, old_value, new_value, allowed
                    )
                )
                if is_perf and advisory:
                    print("  advisory (not gating): " + message)
                else:
                    problems.append(message)
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json file or directory")
    parser.add_argument("new", help="candidate BENCH_*.json file or directory")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional timing regression (default 0.5 = 50%%; "
        "forgiving — shared runners jitter)",
    )
    parser.add_argument(
        "--figure-tolerance",
        type=float,
        default=None,
        help="allowed fractional drift in extra_info figures (default: "
        "same as --tolerance; set tight — figures are fixed-seed)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("tolerance must be non-negative")
    if args.figure_tolerance is not None and args.figure_tolerance < 0:
        parser.error("figure tolerance must be non-negative")

    pairs, missing_files = _pair_paths(args.old, args.new)
    problems = ["{}: missing from NEW".format(name) for name in missing_files]
    figure_tolerance = (
        args.tolerance if args.figure_tolerance is None else args.figure_tolerance
    )
    for label, old_path, new_path in pairs:
        print(
            "{} (timing tolerance {:.0f}%, figure tolerance {:.0f}%):".format(
                label, 100.0 * args.tolerance, 100.0 * figure_tolerance
            )
        )
        problems.extend(
            compare_suites(
                _load(old_path),
                _load(new_path),
                args.tolerance,
                figure_tolerance,
            )
        )

    if problems:
        print()
        print("bench_compare: {} problem(s):".format(len(problems)))
        for problem in problems:
            print("  - " + problem)
        return 1
    print("bench_compare: all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
