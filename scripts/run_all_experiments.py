#!/usr/bin/env python
"""Regenerate every table and figure without pytest.

Runs the same harness the benchmarks wrap and prints a compact report —
useful for a quick look or for embedding in EXPERIMENTS.md.

Usage::

    python scripts/run_all_experiments.py [--fast]

``--fast`` shortens every run (quick smoke; numbers are noisier).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import (
    RDNCostModel,
    format_table,
    line_chart,
    run_deviation_experiment,
    run_isolation,
    run_scalability,
    run_spare_allocation,
)


def banner(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="short runs")
    args = parser.parse_args(argv)
    duration = 6.0 if args.fast else 12.0
    fig3_duration = 22.0 if args.fast else 42.0
    started = time.time()

    banner("Table 1: QoS under excessive input loads")
    reports = run_isolation(duration_s=duration)
    print(format_table(
        ["Subscriber", "Reservation", "Input", "Served", "Dropped"],
        [r.row() for r in reports],
    ))

    banner("Table 2: spare resource allocation")
    reports = run_spare_allocation(duration_s=duration)
    print(format_table(
        ["Subscriber", "Reservation", "Input", "Served", "Spare"],
        [
            (r.subscriber, r.reservation_grps, r.input_rate, r.served_rate, r.spare_rate)
            for r in reports
        ],
    ))
    print("spare ratio: {:.3f} (reservation ratio 1.25)".format(
        reports[0].spare_rate / reports[1].spare_rate
    ))

    banner("Figure 3: deviation from ideal reservation")
    cycles = [0.05, 0.5, 2.0] if args.fast else [0.05, 0.1, 0.5, 2.0]
    curves = {
        cycle: run_deviation_experiment(cycle, duration_s=fig3_duration)
        for cycle in cycles
    }
    print(line_chart(
        {"{:.0f}ms".format(c * 1000): curves[c].series() for c in cycles},
        x_label="averaging interval (s)",
        y_label="deviation (%)",
        height=12,
    ))

    banner("§4.3: scalability (Gage vs no-Gage)")
    counts = [1, 2, 4, 8] if args.fast else [1, 2, 3, 4, 5, 6, 7, 8]
    points = run_scalability(rpn_counts=counts, duration_s=4.0 if args.fast else 6.0)
    print(format_table(
        ["RPNs", "Gage r/s", "no-Gage r/s", "penalty %"],
        [
            (p.num_rpns, p.with_gage_rps, p.without_gage_rps, p.penalty_percent)
            for p in points
        ],
    ))

    banner("§4.3: RDN CPU model")
    model = RDNCostModel()
    rates = [500.0 * i for i in range(1, 10)]
    print(line_chart(
        {
            "with interrupts": model.curve(rates),
            "intelligent NIC": model.curve(rates, intelligent_nic=True),
        },
        x_label="req/s",
        y_label="utilization",
        height=12,
    ))
    print("saturation: {:.0f} r/s; with intelligent NIC: {:.0f} r/s".format(
        model.saturation_rate_rps(), model.saturation_rate_rps(intelligent_nic=True)
    ))

    print()
    print("done in {:.0f}s".format(time.time() - started))
    return 0


if __name__ == "__main__":
    sys.exit(main())
