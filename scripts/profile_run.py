#!/usr/bin/env python
"""Profile a named benchmark scenario and print its hot spots.

Usage::

    python scripts/profile_run.py SCENARIO [--top 25] [--sort cumulative]
                                  [--out profile.pstats]

Runs one of the named scenarios below under :mod:`cProfile` and prints
the top-N entries, so a performance PR starts from data rather than
guesses.  ``--out`` additionally saves the raw stats for later digging
with ``pstats`` or ``snakeviz``.

Scenarios mirror the benchmark suites: ``fig3-synthetic`` and
``fig3-specweb`` are the Figure 3 deviation runs, ``golden`` is the
committed golden-digest configuration, ``engine`` is a pure
event-loop stress (no cluster) isolating the simulator core, and
``proxy`` drives a closed-loop keep-alive workload through the real
localhost deployment (the data-plane hot path), and ``proxy-sharded``
drives the same workload through the multi-worker ``SO_REUSEPORT``
deployment (note: worker processes profile their own time — this
profiles the supervisor + load-generator side).  ``tune-smoke`` runs a
small config search twice — fork-per-sweep, then warm-pool — so the
search harness's own overhead (pool churn vs reuse, memo bookkeeping)
is profileable like the other hot paths.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import os

# The script must run from a checkout without installation.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

SORT_KEYS = ("cumulative", "tottime", "ncalls")


def scenario_fig3_synthetic():
    from repro.harness import run_deviation_experiment

    run_deviation_experiment(
        accounting_cycle_s=2.0, workload="synthetic", duration_s=20.0
    )


def scenario_fig3_specweb():
    from repro.harness import run_deviation_experiment

    run_deviation_experiment(
        accounting_cycle_s=2.0, workload="specweb", duration_s=20.0
    )


def scenario_golden():
    from repro.harness import golden_fig3_digest

    golden_fig3_digest()


def scenario_engine():
    from repro.sim import Environment

    env = Environment()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < 400_000:
            env.call_later(0.001, tick)

    env.call_later(0.0, tick)
    env.run()


def scenario_proxy():
    import asyncio

    from repro.harness.loadgen import ProxyRig, closed_loop

    async def run():
        rig = ProxyRig()
        port = await rig.start()
        try:
            result = await closed_loop(
                "127.0.0.1",
                port,
                site=rig.site,
                concurrency=16,
                total_requests=4000,
                keep_alive=True,
            )
        finally:
            await rig.stop()
        print(
            "proxy scenario: {} completed, {:.1f} rps, p95 {:.2f} ms".format(
                result.completed,
                result.rps,
                result.latency_s(0.95) * 1000.0,
            )
        )

    asyncio.run(run())


def scenario_proxy_sharded():
    import asyncio
    import os as _os

    from repro.harness.loadgen import ProxyRig, closed_loop

    workers = min(4, _os.cpu_count() or 1)

    async def run():
        rig = ProxyRig(workers=max(2, workers))
        port = await rig.start()
        supervisor = rig.supervisor
        try:
            result = await closed_loop(
                "127.0.0.1",
                port,
                site=rig.site,
                concurrency=16,
                total_requests=4000,
                keep_alive=True,
            )
        finally:
            await rig.stop()
        print(
            "proxy-sharded scenario: {} workers, {} completed, {:.1f} rps, "
            "p95 {:.2f} ms, {} rebalances".format(
                rig.workers,
                result.completed,
                result.rps,
                result.latency_s(0.95) * 1000.0,
                supervisor.allocator.rebalances,
            )
        )

    asyncio.run(run())


def scenario_tune_smoke():
    from repro.harness.parallel import WarmPool
    from repro.harness.search import run_search

    # Same tiny search twice; the profile shows what pool reuse saves
    # (fork/teardown under the first run, none under the second).
    kwargs = dict(algo="random", budget=8, seed=0, duration_s=3.0, batch_size=4)
    run_search("fig3", processes=1, **kwargs)
    with WarmPool(processes=1) as pool:
        result = run_search("fig3", pool=pool, **kwargs)
    print(
        "tune-smoke scenario: {} evaluations, best objective {:.3f} "
        "({:.1f}% better than defaults)".format(
            len(result.records), result.best().objective, result.improvement_pct()
        )
    )


SCENARIOS = {
    "fig3-synthetic": scenario_fig3_synthetic,
    "fig3-specweb": scenario_fig3_specweb,
    "golden": scenario_golden,
    "engine": scenario_engine,
    "proxy": scenario_proxy,
    "proxy-sharded": scenario_proxy_sharded,
    "tune-smoke": scenario_tune_smoke,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenario", choices=sorted(SCENARIOS))
    parser.add_argument(
        "--top", type=int, default=25, help="entries to print (default 25)"
    )
    parser.add_argument(
        "--sort",
        choices=SORT_KEYS,
        default="cumulative",
        help="stat column to rank by (default cumulative)",
    )
    parser.add_argument(
        "--out", help="also dump raw pstats data to this path"
    )
    args = parser.parse_args(argv)

    profiler = cProfile.Profile()
    profiler.enable()
    SCENARIOS[args.scenario]()
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    if args.out:
        stats.dump_stats(args.out)
        print("raw stats written to {}".format(args.out))
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
