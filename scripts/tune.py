#!/usr/bin/env python
"""Tune Gage's knobs: a budgeted, resumable, deterministic search.

Usage::

    python scripts/tune.py SUITE [--algo random|es] [--budget N]
                           [--seed S] [--duration SECONDS]
                           [--processes P] [--weights DEV,P95,UNDER]
                           [--checkpoint PATH] [--resume]
                           [--best-out PATH] [--trajectory-out PATH]
                           [--batch N] [--mu N] [--lam N]
                           [--mutation-scale F]

``SUITE`` is ``fig3`` (guarantee deviation + sustainable-load latency)
or ``proxy`` (post-fault tail latency + guarantee fidelity).  The run
is a pure function of ``--seed``: re-running reproduces the identical
trajectory, and ``--resume`` continues an interrupted checkpoint to an
exactly identical result (see docs §Self-tuning).  Evaluations fan out
over a persistent warm worker pool; ``--processes 0`` runs serial
(bit-identical, useful under debuggers).

``--best-out`` writes the winning configuration as JSON next to the
default config's metrics — the format committed under ``configs/`` and
re-checked by ``benchmarks/test_tuned_config.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# The script must run from a checkout without installation.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

#: Schema of the --best-out export.
TUNED_SCHEMA = "repro.tuned/1"


def tuned_export(result) -> dict:
    """The --best-out payload: winner + baseline, self-describing."""
    best = result.best()
    default = result.default()
    return {
        "schema": TUNED_SCHEMA,
        "suite": result.suite,
        "algo": result.algo,
        "seed": result.seed,
        "budget": result.budget,
        "duration_s": result.duration_s,
        "weights": list(result.objective.weights()),
        "params": best.params,
        "metrics": best.metrics,
        "objective": best.objective,
        "default_metrics": default.metrics,
        "default_objective": default.objective,
        "improvement_pct": result.improvement_pct(),
    }


def main(argv=None) -> int:
    from repro.harness.parallel import WarmPool
    from repro.harness.search import (
        Objective,
        SPACES,
        run_search,
        trajectory_chart,
    )

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("suite", choices=sorted(SPACES))
    parser.add_argument("--algo", choices=("random", "es"), default="es")
    parser.add_argument("--budget", type=int, default=50, help="total evaluations")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--duration", type=float, default=10.0, help="simulated seconds per leg"
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker pool size (default: CPU count; 0 = serial)",
    )
    parser.add_argument(
        "--weights",
        default="1,1,1",
        help="objective weights DEVIATION,P95,UNDERUTIL (default 1,1,1)",
    )
    parser.add_argument("--checkpoint", help="JSONL trajectory checkpoint path")
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint's completed evaluations",
    )
    parser.add_argument("--best-out", help="write the winning config as JSON here")
    parser.add_argument("--trajectory-out", help="write the trajectory chart here")
    parser.add_argument("--batch", type=int, default=8, help="random-search batch size")
    parser.add_argument("--mu", type=int, default=4, help="ES parents kept")
    parser.add_argument("--lam", type=int, default=8, help="ES offspring per generation")
    parser.add_argument("--mutation-scale", type=float, default=0.25)
    args = parser.parse_args(argv)

    try:
        weights = tuple(float(part) for part in args.weights.split(","))
        if len(weights) != 3:
            raise ValueError
    except ValueError:
        parser.error("--weights must be three comma-separated numbers")
    objective = Objective(*weights)

    def report(record):
        print(
            "  eval {:>4}  objective {:>10.3f}  (dev {:.2f}%  p95 {:.1f} ms  "
            "under {:.2f}%)".format(
                record.index,
                record.objective,
                record.metrics["deviation_pct"],
                record.metrics["p95_ms"],
                record.metrics["underutil_pct"],
            )
        )

    print(
        "tuning {} with {} (budget {}, seed {}, {}s legs)".format(
            args.suite, args.algo, args.budget, args.seed, args.duration
        )
    )
    if args.processes == 0:
        pool = None
    else:
        pool = WarmPool(processes=args.processes)
    try:
        result = run_search(
            args.suite,
            algo=args.algo,
            budget=args.budget,
            seed=args.seed,
            duration_s=args.duration,
            objective=objective,
            processes=0 if pool is None else None,
            pool=pool,
            batch_size=args.batch,
            mu=args.mu,
            lam=args.lam,
            mutation_scale=args.mutation_scale,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            on_record=report,
        )
    finally:
        if pool is not None:
            pool.close()

    chart = trajectory_chart(result)
    print()
    print(chart)
    best = result.best()
    print("best (evaluation {}):".format(best.index))
    for name, value in sorted(best.params.items()):
        print("  {} = {!r}".format(name, value))
    if not best.params:
        print("  (the default configuration)")
    print(
        "objective {:.3f} vs default {:.3f} — {:.1f}% better".format(
            best.objective, result.default().objective, result.improvement_pct()
        )
    )

    if args.trajectory_out:
        with open(args.trajectory_out, "w") as handle:
            handle.write(chart + "\n")
        print("trajectory chart written to {}".format(args.trajectory_out))
    if args.best_out:
        with open(args.best_out, "w") as handle:
            json.dump(tuned_export(result), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("best config written to {}".format(args.best_out))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
