#!/usr/bin/env python
"""Gate the compiled core's speedup over the pure build (CI).

Usage::

    python scripts/bench_speedup.py PURE_JSON COMPILED_JSON
        [--min-speedup 2.0] [--benchmark NAME ...]

``PURE_JSON`` and ``COMPILED_JSON`` are two benchstore documents for the
*same* suite measured on the *same* runner in the same CI job — one with
the mypyc extensions inactive, one with them active.  Same-runner ratios
are robust where absolute medians are not, so unlike ``bench_compare``
this gate has no advisory mode: a compiled build that fails to clear the
floor on the very machine that just measured the pure build is a real
regression, not hardware noise.

Exit status: 0 when every gated benchmark clears ``--min-speedup``;
1 when one falls short, a gated benchmark is missing, or the documents'
build stamps show the two runs did not actually measure different
builds; 2 on usage or unreadable input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# The script must run from a checkout without installation.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.harness.benchstore import load_suite  # noqa: E402

#: Benchmarks gated by default: the two hot paths the compiled build
#: exists to accelerate.  ``test_scheduler_cycle`` spends most of its
#: time in uncompiled scheduler code, so it is reported but not gated.
DEFAULT_BENCHMARKS = ("test_event_dispatch", "test_packet_forward")


def _load(path):
    try:
        return load_suite(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print("error: cannot read {}: {}".format(path, exc), file=sys.stderr)
        raise SystemExit(2) from exc


def _build_of(document):
    """The build stamp of a document, from env or any record's extra_info."""
    environment = document.get("environment", {})
    build = environment.get("repro_build")
    if isinstance(build, str) and build:
        return build
    for record in document.get("benchmarks", {}).values():
        value = record.get("extra_info", {}).get("build")
        if isinstance(value, str) and value:
            return value
    return "unknown"


def compare(pure_doc, compiled_doc, names, min_speedup):
    """Returns a list of problem strings (empty = gate passes)."""
    problems = []
    pure_build = _build_of(pure_doc)
    compiled_build = _build_of(compiled_doc)
    if compiled_build != "compiled":
        problems.append(
            "COMPILED document's build stamp is {!r}, not 'compiled' — the "
            "extensions were not active, so this would compare pure against "
            "pure".format(compiled_build)
        )
    if pure_build == "compiled":
        problems.append(
            "PURE document's build stamp is 'compiled' — the baseline leg ran "
            "with the extensions active, so the ratio is meaningless"
        )
    pure_benches = pure_doc["benchmarks"]
    compiled_benches = compiled_doc["benchmarks"]
    for name in sorted(set(pure_benches) | set(compiled_benches)):
        pure_rec = pure_benches.get(name)
        compiled_rec = compiled_benches.get(name)
        gated = name in names
        if pure_rec is None or compiled_rec is None:
            if gated:
                problems.append(
                    "{}: missing from the {} document".format(
                        name, "PURE" if pure_rec is None else "COMPILED"
                    )
                )
            continue
        pure_median = float(pure_rec["median_s"])
        compiled_median = float(compiled_rec["median_s"])
        if compiled_median <= 0:
            if gated:
                problems.append("{}: non-positive compiled median".format(name))
            continue
        speedup = pure_median / compiled_median
        status = "ok" if speedup >= min_speedup else "BELOW FLOOR"
        if not gated:
            status = "reported only"
        print(
            "  {:<28} pure {:>12.6f}s  compiled {:>12.6f}s  speedup {:>5.2f}x  {}".format(
                name, pure_median, compiled_median, speedup, status
            )
        )
        if gated and speedup < min_speedup:
            problems.append(
                "{}: compiled speedup {:.2f}x is below the {:.2f}x floor".format(
                    name, speedup, min_speedup
                )
            )
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("pure", help="benchstore JSON from the pure-Python leg")
    parser.add_argument("compiled", help="benchstore JSON from the compiled leg")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="required pure/compiled median ratio (default 2.0)",
    )
    parser.add_argument(
        "--benchmark",
        action="append",
        metavar="NAME",
        help="benchmark to gate (repeatable; default: {})".format(
            ", ".join(DEFAULT_BENCHMARKS)
        ),
    )
    args = parser.parse_args(argv)
    if args.min_speedup <= 0:
        parser.error("min speedup must be positive")
    names = frozenset(args.benchmark or DEFAULT_BENCHMARKS)

    print(
        "bench_speedup: {} vs {} (floor {:.2f}x):".format(
            args.pure, args.compiled, args.min_speedup
        )
    )
    problems = compare(_load(args.pure), _load(args.compiled), names, args.min_speedup)
    if problems:
        print()
        print("bench_speedup: {} problem(s):".format(len(problems)))
        for problem in problems:
            print("  - " + problem)
        return 1
    print("bench_speedup: compiled core clears the {:.2f}x floor".format(args.min_speedup))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
