"""Tests for CGI process accounting (§3.5's dynamic-content claim)."""

import pytest

from repro.cluster import Machine, WebServer
from repro.sim import Environment
from repro.workload import WebRequest


def build(env):
    machine = Machine(env, "rpn0")
    server = WebServer(machine)
    server.host_site("a", files={"index.html": 2000})
    return machine, server


def cgi_request(cpu_extra=0.050, size=3000):
    return WebRequest("a", "/cgi/report", size_bytes=size, cpu_extra_s=cpu_extra)


def test_cgi_request_served_without_a_file():
    env = Environment()
    _machine, server = build(env)
    response = env.run(until=env.process(server.service_request(cgi_request())))
    assert response.status == 200
    assert response.size_bytes == 3000


def test_cgi_cpu_charged_to_forked_child_in_site_subtree():
    env = Environment()
    machine, server = build(env)
    site = server.sites["a"]
    before = site.master.subtree_usage().cpu_s
    env.run(until=env.process(server.service_request(cgi_request(cpu_extra=0.200))))
    after = site.master.subtree_usage()
    # Every CPU cycle, including the CGI program's 200ms, lands in the
    # charging entity's subtree without any extra mechanism.
    assert after.cpu_s - before >= 0.200
    # The CGI process itself has been reaped (dead) but retains usage.
    cgi_procs = [
        proc
        for proc in machine.procs._procs.values()
        if proc.name.startswith("cgi[")
    ]
    assert len(cgi_procs) == 1
    assert not cgi_procs[0].alive
    assert cgi_procs[0].cpu_s == pytest.approx(0.200)


def test_cgi_usage_reported_through_accounting_agent():
    from repro.core import RPNAccountingAgent

    env = Environment()
    _machine, server = build(env)
    messages = []
    RPNAccountingAgent(env, "rpn0", server, cycle_s=0.1, send_fn=messages.append)

    def run(env):
        yield env.process(server.service_request(cgi_request(cpu_extra=0.150)))

    env.process(run(env))
    env.run(until=0.5)
    total_cpu = sum(
        m.per_subscriber["a"].usage.cpu_s
        for m in messages
        if "a" in m.per_subscriber
    )
    assert total_cpu >= 0.150


def test_cgi_usage_hook_includes_program_cpu():
    env = Environment()
    _machine, server = build(env)
    usages = []
    server.on_complete.append(lambda host, req, usage, at: usages.append(usage))
    env.run(until=env.process(server.service_request(cgi_request(cpu_extra=0.080))))
    assert usages[0].cpu_s >= 0.080
    assert usages[0].disk_s == 0.0  # generated content reads no file


def test_static_requests_unaffected_by_cgi_path_logic():
    env = Environment()
    machine, server = build(env)
    response = env.run(
        until=env.process(
            server.service_request(WebRequest("a", "/index.html", 2000))
        )
    )
    assert response.status == 200
    assert machine.disk.io_count == 1  # static path still hits the disk


def test_concurrent_cgi_processes_grow_and_shrink_table():
    env = Environment()
    machine, server = build(env)
    start_procs = len(machine.procs)

    def run(env):
        procs = [
            env.process(server.service_request(cgi_request(cpu_extra=0.030)))
            for _ in range(4)
        ]
        for proc in procs:
            yield proc

    env.run(until=env.process(run(env)))
    assert len(machine.procs) == start_procs + 4  # reaped but retained
    alive_cgi = [
        p for p in machine.procs._procs.values()
        if p.name.startswith("cgi[") and p.alive
    ]
    assert alive_cgi == []
