"""Tests for the simulated process table and usage accounting."""

import pytest

from repro.cluster import ProcessTable
from repro.core.grps import ResourceVector


def test_init_process_exists():
    table = ProcessTable()
    assert table.init.pid == 1
    assert table.init.parent is None
    assert len(table) == 1


def test_spawn_defaults_to_init_child():
    table = ProcessTable()
    proc = table.spawn("httpd")
    assert proc.parent is table.init
    assert proc in table.init.children
    assert table.get(proc.pid) is proc


def test_spawn_with_explicit_parent():
    table = ProcessTable()
    master = table.spawn("master")
    worker = table.spawn("worker", parent=master)
    assert worker.parent is master
    assert worker in master.children


def test_charging():
    table = ProcessTable()
    proc = table.spawn("p")
    proc.charge_cpu(0.010)
    proc.charge_disk(0.005)
    proc.charge_net(2000)
    assert proc.usage == ResourceVector(0.010, 0.005, 2000)


def test_negative_charges_rejected():
    table = ProcessTable()
    proc = table.spawn("p")
    with pytest.raises(ValueError):
        proc.charge_cpu(-1)
    with pytest.raises(ValueError):
        proc.charge_disk(-1)
    with pytest.raises(ValueError):
        proc.charge_net(-1)


def test_subtree_usage_sums_descendants():
    table = ProcessTable()
    master = table.spawn("master")
    w1 = table.spawn("w1", parent=master)
    w2 = table.spawn("w2", parent=master)
    grandchild = table.spawn("cgi", parent=w1)
    master.charge_cpu(0.001)
    w1.charge_cpu(0.002)
    w2.charge_cpu(0.003)
    grandchild.charge_cpu(0.004)
    usage = master.subtree_usage()
    assert usage.cpu_s == pytest.approx(0.010)


def test_subtree_excludes_other_entities():
    """The accounting walk for one charging entity must not see another's."""
    table = ProcessTable()
    site_a = table.spawn("site-a")
    site_b = table.spawn("site-b")
    table.spawn("wa", parent=site_a).charge_cpu(0.5)
    table.spawn("wb", parent=site_b).charge_cpu(0.9)
    assert site_a.subtree_usage().cpu_s == pytest.approx(0.5)
    assert site_b.subtree_usage().cpu_s == pytest.approx(0.9)


def test_dynamic_worker_addition_is_visible():
    """The model allows the number of processes to vary dynamically (§3.5)."""
    table = ProcessTable()
    master = table.spawn("master")
    assert master.subtree_usage().cpu_s == 0
    late_worker = table.spawn("late", parent=master)
    late_worker.charge_cpu(0.7)
    assert master.subtree_usage().cpu_s == pytest.approx(0.7)


def test_kill_marks_subtree_dead_but_keeps_usage():
    table = ProcessTable()
    master = table.spawn("master")
    worker = table.spawn("w", parent=master)
    worker.charge_cpu(0.2)
    table.kill(master)
    assert not master.alive
    assert not worker.alive
    # Usage is retained and still visible to the accounting walk — a CGI
    # program that exits between cycles must not lose its final usage.
    assert table.get(worker.pid).cpu_s == pytest.approx(0.2)
    assert master.subtree_usage().cpu_s == pytest.approx(0.2)
    # The live view excludes the dead subtree.
    assert master not in list(table.init.live_subtree())
    assert worker not in list(table.init.live_subtree())


def test_total_usage():
    table = ProcessTable()
    table.spawn("a").charge_cpu(1.0)
    table.spawn("b").charge_disk(2.0)
    total = table.total_usage()
    assert total.cpu_s == pytest.approx(1.0)
    assert total.disk_s == pytest.approx(2.0)
