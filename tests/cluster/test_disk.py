"""Tests for the disk-channel model."""

import pytest

from repro.cluster import Disk, ProcessTable
from repro.sim import Environment


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Disk(env, seek_s=-1)
    with pytest.raises(ValueError):
        Disk(env, transfer_bps=0)


def test_io_time_model():
    env = Environment()
    disk = Disk(env, seek_s=0.008, transfer_bps=20e6)
    assert disk.io_time(0) == pytest.approx(0.008)
    assert disk.io_time(20_000_000) == pytest.approx(1.008)


def test_read_charges_issuing_process():
    env = Environment()
    disk = Disk(env, seek_s=0.010, transfer_bps=10e6)
    proc = ProcessTable().spawn("p")
    done_at = []

    def runner(env):
        yield disk.read(proc, 1_000_000)  # 10ms seek + 100ms transfer
        done_at.append(env.now)

    env.process(runner(env))
    env.run()
    assert done_at == [pytest.approx(0.110)]
    assert proc.disk_s == pytest.approx(0.110)
    assert disk.io_count == 1
    assert disk.busy_s == pytest.approx(0.110)


def test_channel_is_fifo_serial():
    env = Environment()
    disk = Disk(env, seek_s=0.010, transfer_bps=1e9)
    table = ProcessTable()
    order = []

    def runner(env, name, proc):
        yield disk.read(proc, 1000)
        order.append((name, env.now))

    env.process(runner(env, "a", table.spawn("a")))
    env.process(runner(env, "b", table.spawn("b")))
    env.run()
    assert order[0][0] == "a"
    assert order[1][0] == "b"
    # Second I/O waits for the first: ~2x one I/O time.
    assert order[1][1] == pytest.approx(2 * disk.io_time(1000))


def test_queue_length_visible(env=None):
    env = Environment()
    disk = Disk(env, seek_s=0.010, transfer_bps=1e9)
    table = ProcessTable()
    lengths = []

    def runner(env, proc):
        yield disk.read(proc, 1000)

    def observer(env):
        yield env.timeout(0.005)  # mid-first-I/O
        lengths.append(disk.queue_length)

    for i in range(3):
        env.process(runner(env, table.spawn(str(i))))
    env.process(observer(env))
    env.run()
    assert lengths == [2]


def test_negative_size_rejected():
    env = Environment()
    disk = Disk(env)
    proc = ProcessTable().spawn("p")
    with pytest.raises(ValueError):
        disk.read(proc, -1)
