"""Tests for the back-end web-server application (flow-mode servicing)."""

import pytest

from repro.cluster import Machine, WebServer
from repro.sim import Environment
from repro.workload import CostModel, WebRequest


def make_server(env, **kwargs):
    machine = Machine(env, "rpn1")
    server = WebServer(machine, **kwargs)
    server.host_site("site1.example.com", files={"index.html": 6000, "big.bin": 3_000_000})
    return machine, server


def request(path="/index.html", host="site1.example.com", size=6000):
    return WebRequest(host=host, path=path, size_bytes=size)


def test_host_site_creates_charging_entity():
    env = Environment()
    machine, server = make_server(env)
    site = server.sites["site1.example.com"]
    assert site.master.parent is machine.procs.init
    assert all(w.parent is site.master for w in site.worker_procs)
    assert machine.fs.size_of("/sites/site1.example.com/index.html") == 6000


def test_duplicate_site_rejected():
    env = Environment()
    _machine, server = make_server(env)
    with pytest.raises(RuntimeError):
        server.host_site("site1.example.com")


def test_service_request_produces_response_and_usage():
    env = Environment()
    machine, server = make_server(env)
    completions = []
    server.on_complete.append(lambda host, req, usage, at: completions.append((host, usage, at)))

    result = env.run(until=env.process(server.service_request(request())))
    assert result.status == 200
    assert result.size_bytes == 6000
    host, usage, _at = completions[0]
    assert host == "site1.example.com"
    cost = CostModel()
    assert usage.cpu_s == pytest.approx(cost.cpu_seconds(request()))
    assert usage.disk_s == pytest.approx(machine.disk.io_time(6000))
    assert usage.net_bytes == 6000


def test_cache_hit_skips_disk():
    env = Environment()
    machine, server = make_server(env)
    usages = []
    server.on_complete.append(lambda host, req, usage, at: usages.append(usage))

    def run_two(env):
        yield env.process(server.service_request(request()))
        yield env.process(server.service_request(request()))

    env.run(until=env.process(run_two(env)))
    assert usages[0].disk_s > 0  # cold: disk read
    assert usages[1].disk_s == 0  # warm: buffer cache hit
    assert machine.disk.io_count == 1


def test_unknown_host_is_404():
    env = Environment()
    _machine, server = make_server(env)
    result = env.run(
        until=env.process(server.service_request(request(host="nosuch.example.com")))
    )
    assert result.status == 404


def test_unknown_path_is_404_and_counted():
    env = Environment()
    _machine, server = make_server(env)
    result = env.run(
        until=env.process(server.service_request(request(path="/missing.html")))
    )
    assert result.status == 404
    assert server.sites["site1.example.com"].errors == 1


def test_worker_pool_limits_concurrency():
    env = Environment()
    machine = Machine(env, "rpn1")
    server = WebServer(machine, workers_per_site=2)
    server.host_site("s.example.com", files={"f.html": 1000})
    peak = []

    def issue(env):
        procs = [
            env.process(
                server.service_request(WebRequest("s.example.com", "/f.html", 1000))
            )
            for _ in range(6)
        ]
        while any(p.is_alive for p in procs):
            peak.append(server.sites["s.example.com"].busy)
            yield env.timeout(0.001)

    env.run(until=env.process(issue(env)))
    env.run()
    # busy counts queued+active; worker Resource limits actual concurrency.
    assert server.sites["s.example.com"].completed == 6
    assert max(peak) <= 6


def test_worker_charges_accumulate_in_site_subtree():
    env = Environment()
    machine, server = make_server(env)
    env.run(until=env.process(server.service_request(request())))
    site = server.sites["site1.example.com"]
    subtree = site.master.subtree_usage()
    assert subtree.cpu_s > 0
    assert subtree.disk_s > 0
    assert subtree.net_bytes == 6000


def test_validation():
    env = Environment()
    machine = Machine(env, "m")
    with pytest.raises(ValueError):
        WebServer(machine, workers_per_site=0)
