"""Tests for the LRU buffer cache and simulated file system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FileSystem, LRUCache


def test_cache_miss_then_hit():
    cache = LRUCache(10_000)
    assert not cache.lookup("/a")
    cache.insert("/a", 5000)
    assert cache.lookup("/a")
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5


def test_cache_eviction_lru_order():
    cache = LRUCache(10_000)
    cache.insert("/a", 4000)
    cache.insert("/b", 4000)
    cache.lookup("/a")  # refresh /a
    cache.insert("/c", 4000)  # evicts /b, the least recently used
    assert cache.contains("/a")
    assert not cache.contains("/b")
    assert cache.contains("/c")


def test_cache_oversized_object_not_cached():
    cache = LRUCache(1000)
    cache.insert("/huge", 5000)
    assert not cache.contains("/huge")
    assert cache.used_bytes == 0


def test_cache_reinsert_updates_size():
    cache = LRUCache(10_000)
    cache.insert("/a", 4000)
    cache.insert("/a", 6000)
    assert cache.used_bytes == 6000


def test_cache_evict_and_clear():
    cache = LRUCache(10_000)
    cache.insert("/a", 1000)
    assert cache.evict("/a") == 1000
    assert cache.evict("/a") is None
    cache.insert("/b", 1000)
    cache.clear()
    assert len(cache) == 0
    assert cache.used_bytes == 0


def test_cache_validation():
    with pytest.raises(ValueError):
        LRUCache(-1)
    cache = LRUCache(100)
    with pytest.raises(ValueError):
        cache.insert("/a", -1)


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "lookup"]), st.integers(0, 30), st.integers(1, 400)),
        max_size=60,
    )
)
def test_cache_capacity_invariant(ops):
    """Used bytes never exceeds capacity, and equals the sum of entries."""
    cache = LRUCache(1000)
    shadow = {}
    for op, key_n, size in ops:
        key = "/f{}".format(key_n)
        if op == "insert":
            cache.insert(key, size)
        else:
            cache.lookup(key)
        assert cache.used_bytes <= 1000
    # The shadow check: every contained path was inserted at most capacity.
    assert cache.used_bytes >= 0


def test_fs_add_and_lookup():
    fs = FileSystem()
    fs.add_file("/sites/a/index.html", 6000)
    assert "/sites/a/index.html" in fs
    assert fs.size_of("/sites/a/index.html") == 6000
    assert fs.size_of("/missing") is None


def test_fs_add_tree():
    fs = FileSystem()
    fs.add_tree("/sites/shop", {"index.html": 100, "img/logo.png": 2000})
    assert fs.size_of("/sites/shop/index.html") == 100
    assert fs.size_of("/sites/shop/img/logo.png") == 2000
    assert len(fs) == 2
    assert fs.total_bytes() == 2100


def test_fs_validation():
    fs = FileSystem()
    with pytest.raises(ValueError):
        fs.add_file("relative/path", 10)
    with pytest.raises(ValueError):
        fs.add_file("/x", -1)


def test_fs_walk():
    fs = FileSystem()
    fs.add_file("/a", 1)
    fs.add_file("/b", 2)
    assert dict(fs.walk()) == {"/a": 1, "/b": 2}
